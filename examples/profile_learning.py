"""Closed-loop profile learning: no profiles, just the request log.

The paper's conclusion sketches "a simple learning algorithm that
monitors the system request log" in place of user-submitted profiles.
This example runs that loop:

1. start with a uniform profile (knowing nothing),
2. each period: plan with the current estimate, simulate the period,
   feed the observed accesses to the :class:`ProfileLearner`,
3. watch perceived freshness climb from the GF baseline toward the
   known-profile optimum.

Run:  python examples/profile_learning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PerceivedFreshener,
    ProfileLearner,
    Simulation,
    build_catalog,
    perceived_freshness,
)
from repro.workloads import ExperimentSetup

SETUP = ExperimentSetup(n_objects=300, updates_per_period=600.0,
                        syncs_per_period=150.0, theta=1.2,
                        update_std_dev=1.0)
N_ROUNDS = 12
REQUESTS_PER_PERIOD = 3000.0


def main() -> None:
    rng = np.random.default_rng(21)
    catalog = build_catalog(SETUP, alignment="shuffled", seed=5)
    planner = PerceivedFreshener()
    learner = ProfileLearner(SETUP.n_objects, decay=0.8, smoothing=0.5)

    oracle = planner.plan(catalog, SETUP.syncs_per_period)
    print(f"known-profile optimum: {oracle.perceived_freshness:.4f}")
    blind = planner.plan(catalog.with_uniform_profile(),
                         SETUP.syncs_per_period)
    blind_score = perceived_freshness(catalog, blind.frequencies)
    print(f"uniform-profile (GF) baseline: {blind_score:.4f}")
    print()
    print("round  learned-profile PF   divergence-from-truth")

    believed = catalog.with_uniform_profile()
    for round_number in range(1, N_ROUNDS + 1):
        plan = planner.plan(believed, SETUP.syncs_per_period)
        achieved = perceived_freshness(catalog, plan.frequencies)

        # Simulate one period against the TRUE workload and log it.
        sim = Simulation(catalog, plan.frequencies,
                         request_rate=REQUESTS_PER_PERIOD, rng=rng)
        result = sim.run(n_periods=1)
        accesses = rng.choice(SETUP.n_objects,
                              size=max(result.n_accesses, 1),
                              p=catalog.access_probabilities)
        learner.observe(accesses)
        learner.end_period()

        estimate = learner.estimate()
        divergence = 0.5 * np.abs(
            estimate.probabilities
            - catalog.access_probabilities).sum()
        print(f"{round_number:5d}  {achieved:18.4f}   {divergence:12.4f}")
        believed = catalog.with_profile(estimate.probabilities)

    final = perceived_freshness(
        catalog, planner.plan(believed,
                              SETUP.syncs_per_period).frequencies)
    recovered = (final - blind_score) / (oracle.perceived_freshness
                                         - blind_score)
    print()
    print(f"final learned-profile PF: {final:.4f} — recovered "
          f"{recovered:.0%} of the gap between profile-blind and "
          "oracle scheduling from the request log alone")


if __name__ == "__main__":
    main()
