"""Other half of the cycle: imports alpha back, relatively."""

from . import alpha

__all__ = ["identity"]


def identity(value: float) -> float:
    """``value`` unchanged (dimensionless)."""
    del alpha
    return value
