"""The Freshness Evaluator (Figure 4) and simulation results.

The paper's evaluator "operates in two modes": it can *analytically
calculate* freshness metrics from the workload parameters, or *track
system activity* by monitoring updates and user requests.  Here:

* the **monitored** mode is :class:`FreshnessMonitor`, an online
  accumulator the simulation feeds — it scores each access
  (Definition 3) and time-integrates each copy's fresh/stale state
  (Definitions 2 and 4);
* the **analytic** mode is :meth:`SimulationResult.analytic`, the
  closed forms from :mod:`repro.core.metrics` for the same schedule.

The paper verifies its results with both modes; the integration tests
do the same by asserting the two agree within sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.freshness import FreshnessModel
from repro.core.metrics import general_freshness, perceived_freshness
from repro.errors import SimulationError
from repro.obs import registry as obs
from repro.workloads.catalog import Catalog

__all__ = ["FreshnessMonitor", "SimulationResult"]


class FreshnessMonitor:
    """Online accumulator of observed freshness.

    Args:
        n_elements: Number of mirrored elements.
        horizon: Total simulated clock time, > 0.
    """

    def __init__(self, n_elements: int, horizon: float) -> None:
        if n_elements < 1:
            raise SimulationError(
                f"n_elements must be >= 1, got {n_elements}")
        if horizon <= 0.0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        self._horizon = horizon
        self._fresh = np.ones(n_elements, dtype=bool)
        self._last_time = np.zeros(n_elements)
        self._fresh_time = np.zeros(n_elements)
        # Age accounting: while stale, age(t) = t − stale_since grows
        # linearly, so its integral over [a, b] is the trapezoid
        # ((b−s)² − (a−s)²)/2.
        self._stale_since = np.zeros(n_elements)
        self._age_integral = np.zeros(n_elements)
        self._fresh_accesses = np.zeros(n_elements, dtype=np.int64)
        self._total_accesses = np.zeros(n_elements, dtype=np.int64)
        self._closed = False

    def _advance(self, element: int, time: float) -> None:
        elapsed = time - self._last_time[element]
        if elapsed < 0.0:
            raise SimulationError(
                f"time went backwards for element {element}: "
                f"{self._last_time[element]} -> {time}")
        if self._fresh[element]:
            self._fresh_time[element] += elapsed
        else:
            since = self._stale_since[element]
            start = self._last_time[element]
            self._age_integral[element] += 0.5 * (
                (time - since) ** 2 - (start - since) ** 2)
        self._last_time[element] = time

    def note_update(self, element: int, time: float) -> None:
        """The source updated an element: its copy is now stale."""
        self._advance(element, time)
        if self._fresh[element]:
            # The *first* unseen update starts the age clock; later
            # updates extend staleness without resetting it.
            self._stale_since[element] = time
        self._fresh[element] = False

    def note_sync(self, element: int, time: float) -> None:
        """The mirror synced an element: its copy is now fresh."""
        self._advance(element, time)
        self._fresh[element] = True

    def note_access(self, element: int, time: float, fresh: bool) -> None:
        """A user accessed an element and saw a fresh or stale copy."""
        self._advance(element, time)
        self._total_accesses[element] += 1
        if fresh:
            self._fresh_accesses[element] += 1

    def close(self) -> None:
        """Flush the open intervals out to the horizon."""
        if self._closed:
            return
        remaining = self._horizon - self._last_time
        if (remaining < -1e-9).any():
            raise SimulationError("events were recorded beyond the horizon")
        self._fresh_time += np.maximum(remaining, 0.0) * self._fresh
        stale = ~self._fresh & (remaining > 0.0)
        if stale.any():
            since = self._stale_since[stale]
            start = self._last_time[stale]
            self._age_integral[stale] += 0.5 * (
                (self._horizon - since) ** 2 - (start - since) ** 2)
        self._closed = True
        if obs.telemetry_enabled():
            total = int(self._total_accesses.sum())
            fresh = int(self._fresh_accesses.sum())
            obs.gauge_set("monitor.mean_time_freshness",
                          float((self._fresh_time / self._horizon).mean()))
            obs.gauge_set("monitor.mean_time_age",
                          float((self._age_integral / self._horizon).mean()))
            obs.event("monitor.close", horizon=self._horizon,
                      accesses=total, fresh_accesses=fresh,
                      fresh_fraction=(fresh / total if total else 1.0))

    def element_time_freshness(self) -> np.ndarray:
        """Observed time-averaged freshness per element."""
        self.close()
        return self._fresh_time / self._horizon

    def element_time_age(self) -> np.ndarray:
        """Observed time-averaged age per element (Ā, empirically)."""
        self.close()
        return self._age_integral / self._horizon

    def access_counts(self) -> np.ndarray:
        """Total accesses observed per element."""
        return self._total_accesses.copy()

    def fresh_access_counts(self) -> np.ndarray:
        """Accesses that saw fresh data, per element."""
        return self._fresh_accesses.copy()


@dataclass(frozen=True)
class SimulationResult:
    """Everything a simulation run measured.

    Attributes:
        catalog: The simulated workload.
        frequencies: The schedule's per-element sync frequencies
            (per period).
        horizon: Simulated clock time.
        period_length: Clock length of one period.
        n_updates: Update events applied.
        n_syncs: Sync operations performed.
        n_accesses: User accesses served.
        useful_syncs: Syncs that actually found a changed object.
        bandwidth_used: Total sync bandwidth spent.
        monitored_perceived_freshness: Fraction of accesses that saw
            fresh data (Definition 3/4, the user-visible score).
        monitored_time_perceived: Profile-weighted time-averaged
            freshness observed (Σ pᵢ·observed F̄ᵢ).
        monitored_general_freshness: Unweighted mean of observed
            per-element time-averaged freshness.
        element_time_freshness: Observed F̄ᵢ per element.
        element_time_age: Observed time-averaged age Āᵢ per element.
        monitored_perceived_age: Profile-weighted observed age,
            ``Σ pᵢ·Āᵢ`` — the empirical counterpart of
            :func:`repro.core.age.perceived_age`.
        access_counts: Accesses served per element — the raw material
            for profile learning.
        poll_counts: Sync polls performed per element.
        changed_poll_counts: Polls that found a new version per
            element — together with ``poll_counts``, the censored
            observations change-rate estimators consume.
        attempted_polls: Poll attempts made on the wire, including
            retries (equals ``n_syncs`` on a fault-free run).
        failed_polls: Attempts that failed (timeout, error, or
            unreachable); 0 on a fault-free run.
        unreachable_polls: Failed attempts that never reached the
            wire (``unreachable`` fast-fails, free of bandwidth) —
            exclude them from transfer-loss estimates.
        retries: Attempts beyond each scheduled sync's first; 0
            without a retry policy.
        breaker_skips: Scheduled syncs fast-failed by an open
            circuit breaker without touching the wire.
        denied_polls: Scheduled syncs denied outright because the
            period's bandwidth budget was already spent.
        hop_denied: Attempts denied by a saturated per-hop ledger on
            the element's relay path; 0 without a topology.
        suppressed_retries: Retries refused by the shared herding
            admission gate; 0 without a gated retry policy.
        attempted_bandwidth: Bandwidth burned across every attempt,
            in size units (equals ``bandwidth_used`` on a fault-free
            run — failed transfers burn budget without refreshing).
        attempted_poll_counts: Attempts per element, or None on a
            fault-free run.
        failed_poll_counts: Failed attempts per element, or None on
            a fault-free run.
        unreachable_poll_counts: Unreachable fast-fails per element,
            or None on a fault-free run.  ``failed − unreachable``
            per element is the wire-level loss that actually burned
            bandwidth.
        unreachable_elements: Boolean mask of elements whose breaker
            shard ended the run OPEN, or None without a breaker.
        fault_trace: Per-attempt ``(time, element, outcome)`` tape
            when the run was asked to record one, else None — the
            byte-comparable artifact determinism tests diff.
    """

    catalog: Catalog
    frequencies: np.ndarray
    horizon: float
    period_length: float
    n_updates: int
    n_syncs: int
    n_accesses: int
    useful_syncs: int
    bandwidth_used: float
    monitored_perceived_freshness: float
    monitored_time_perceived: float
    monitored_general_freshness: float
    element_time_freshness: np.ndarray
    element_time_age: np.ndarray
    monitored_perceived_age: float
    access_counts: np.ndarray
    poll_counts: np.ndarray
    changed_poll_counts: np.ndarray
    attempted_polls: int = 0
    failed_polls: int = 0
    unreachable_polls: int = 0
    retries: int = 0
    breaker_skips: int = 0
    denied_polls: int = 0
    hop_denied: int = 0
    suppressed_retries: int = 0
    attempted_bandwidth: float = 0.0
    attempted_poll_counts: np.ndarray | None = None
    failed_poll_counts: np.ndarray | None = None
    unreachable_poll_counts: np.ndarray | None = None
    unreachable_elements: np.ndarray | None = None
    fault_trace: tuple[tuple[float, int, str], ...] | None = None

    def analytic(self, *, model: FreshnessModel | None = None
                 ) -> tuple[float, float]:
        """The evaluator's analytic mode for the same schedule.

        Args:
            model: Freshness model (Fixed-Order by default).

        Returns:
            ``(perceived, general)`` closed-form freshness.
        """
        return (perceived_freshness(self.catalog, self.frequencies,
                                    model=model),
                general_freshness(self.catalog, self.frequencies,
                                  model=model))

    @property
    def wasted_sync_fraction(self) -> float:
        """Fraction of syncs that found nothing new (wasted polls)."""
        if self.n_syncs == 0:
            return 0.0
        return 1.0 - self.useful_syncs / self.n_syncs

    @property
    def poll_failure_fraction(self) -> float:
        """Fraction of wire attempts that failed (0 when fault-free)."""
        if self.attempted_polls == 0:
            return 0.0
        return self.failed_polls / self.attempted_polls
