"""Structural laws of the heuristic pipeline.

Partitioning, representatives, refinement and allocation must satisfy
exact relationships (lossless cases, bounds, conservation) for any
workload — these are the properties that make the heuristic *safe*
to deploy, not merely usually-good.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationPolicy, expand_partition_frequencies
from repro.core.clustering import refine_partitions
from repro.core.freshener import PartitionedFreshener
from repro.core.metrics import perceived_freshness
from repro.core.partitioning import PartitioningStrategy, partition_catalog
from repro.core.representatives import (
    build_representatives,
    solve_transformed_problem,
)
from repro.core.solver import solve_core_problem
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)
strategies = st.sampled_from(list(PartitioningStrategy))


class TestHeuristicBounds:
    @given(seeds, strategies, st.integers(min_value=1, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_heuristic_bounded_by_optimum(self, seed, strategy, k):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 25, sized=True)
        bandwidth = 10.0
        optimum = solve_core_problem(catalog, bandwidth).objective
        plan = PartitionedFreshener(k, strategy=strategy).plan(
            catalog, bandwidth)
        assert plan.perceived_freshness <= optimum + 1e-8

    @given(seeds, strategies)
    @settings(max_examples=40, deadline=None)
    def test_singleton_partitions_are_lossless(self, seed, strategy):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 12, sized=True)
        bandwidth = 6.0
        optimum = solve_core_problem(catalog, bandwidth).objective
        plan = PartitionedFreshener(12, strategy=strategy).plan(
            catalog, bandwidth)
        assert plan.perceived_freshness == pytest.approx(optimum,
                                                         abs=1e-6)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_identical_elements_lossless_at_any_k(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        rate = float(rng.uniform(0.5, 4.0))
        catalog = Catalog(access_probabilities=np.full(n, 1.0 / n),
                          change_rates=np.full(n, rate))
        bandwidth = 6.0
        optimum = solve_core_problem(catalog, bandwidth).objective
        for k in (1, 3, 6):
            plan = PartitionedFreshener(k).plan(catalog, bandwidth)
            assert plan.perceived_freshness == pytest.approx(
                optimum, abs=1e-8)


class TestBudgetConservation:
    @given(seeds, strategies, st.integers(min_value=1, max_value=15),
           st.sampled_from(list(AllocationPolicy)))
    @settings(max_examples=50, deadline=None)
    def test_full_pipeline_spends_exactly_the_budget(self, seed,
                                                     strategy, k,
                                                     policy):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 20, sized=True)
        bandwidth = 8.0
        assignment = partition_catalog(catalog, k, strategy)
        problem = build_representatives(catalog, assignment)
        solution = solve_transformed_problem(problem, bandwidth)
        frequencies = expand_partition_frequencies(
            catalog, problem, solution.frequencies, policy)
        assert float(catalog.sizes @ frequencies) == pytest.approx(
            bandwidth, rel=1e-6)

    @given(seeds, st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_refinement_preserves_budget(self, seed, k, iterations):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 24)
        bandwidth = 10.0
        initial = partition_catalog(catalog, k, PartitioningStrategy.PF)
        steps = refine_partitions(catalog, bandwidth, initial,
                                  iterations=iterations)
        for step in steps:
            assert float(catalog.sizes @ step.frequencies) == \
                pytest.approx(bandwidth, rel=1e-6)


class TestInterestConservation:
    @given(seeds, strategies, st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_representatives_preserve_total_interest_and_count(
            self, seed, strategy, k):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 18, sized=True)
        assignment = partition_catalog(catalog, k, strategy)
        problem = build_representatives(catalog, assignment)
        assert problem.counts.sum() == pytest.approx(18.0)
        # Σ nₖ·p̄ₖ = Σ pᵢ = 1: the transformed objective sees all the
        # interest.
        assert problem.weights.sum() == pytest.approx(1.0)
        # Σ nₖ·λ̄ₖ = Σ λᵢ with plain-mean representatives.
        assert float((problem.counts
                      * problem.mean_change_rates).sum()) == \
            pytest.approx(float(catalog.change_rates.sum()))

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_transformed_objective_bounds_expanded_objective(self, seed):
        """The transformed problem's objective (identical elements
        assumption) is an estimate; the expanded schedule's true PF
        can differ, but both are bounded by the true optimum."""
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 20)
        bandwidth = 8.0
        optimum = solve_core_problem(catalog, bandwidth).objective
        assignment = partition_catalog(catalog, 4,
                                       PartitioningStrategy.PF)
        problem = build_representatives(catalog, assignment)
        solution = solve_transformed_problem(problem, bandwidth)
        frequencies = expand_partition_frequencies(
            catalog, problem, solution.frequencies,
            AllocationPolicy.FIXED_FREQUENCY)
        true_pf = perceived_freshness(catalog, frequencies)
        assert true_pf <= optimum + 1e-8
