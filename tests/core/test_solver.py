"""Tests for repro.core.solver — the exact Core-Problem solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshness import PoissonSyncPolicy
from repro.core.solver import (
    kkt_residual,
    solve_core_problem,
    solve_weighted_problem,
)
from repro.errors import InfeasibleProblemError, ValidationError
from repro.workloads.catalog import Catalog
from repro.workloads.presets import TOY_BANDWIDTH, toy_example_catalog

from tests.conftest import random_catalog


class TestTable1Reproduction:
    """The paper's Table 1, digit for digit (to its 2-decimal print)."""

    def test_uniform_profile_p1(self):
        solution = solve_core_problem(toy_example_catalog("P1"),
                                      TOY_BANDWIDTH)
        assert np.round(solution.frequencies, 2).tolist() == [
            1.15, 1.36, 1.35, 1.14, 0.00]

    def test_hottest_change_most_p2(self):
        solution = solve_core_problem(toy_example_catalog("P2"),
                                      TOY_BANDWIDTH)
        assert np.round(solution.frequencies, 2).tolist() == [
            0.33, 0.67, 1.00, 1.33, 1.67]

    def test_hottest_change_least_p3(self):
        solution = solve_core_problem(toy_example_catalog("P3"),
                                      TOY_BANDWIDTH)
        # Paper prints 1.68 1.83 1.49 0.00 0.00; first entry rounds to
        # 1.69 at our tighter convergence — match to the paper's
        # precision.
        assert solution.frequencies == pytest.approx(
            [1.685, 1.83, 1.49, 0.0, 0.0], abs=0.01)

    def test_p2_gives_volatile_element_the_most_bandwidth(self):
        solution = solve_core_problem(toy_example_catalog("P2"),
                                      TOY_BANDWIDTH)
        assert solution.frequencies.argmax() == 4

    def test_budget_exactly_spent(self):
        for profile in ("P1", "P2", "P3"):
            solution = solve_core_problem(toy_example_catalog(profile),
                                          TOY_BANDWIDTH)
            assert solution.bandwidth == pytest.approx(TOY_BANDWIDTH,
                                                       rel=1e-9)


class TestSolverStructure:
    def test_zero_weight_element_gets_nothing(self):
        solution = solve_weighted_problem(
            np.array([0.0, 1.0]), np.array([1.0, 1.0]), np.ones(2), 2.0)
        assert solution.frequencies[0] == 0.0
        assert solution.frequencies[1] == pytest.approx(2.0)

    def test_static_element_gets_nothing(self):
        solution = solve_weighted_problem(
            np.array([0.5, 0.5]), np.array([0.0, 1.0]), np.ones(2), 2.0)
        assert solution.frequencies[0] == 0.0

    def test_all_static_catalog_returns_zero_schedule(self):
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.zeros(2))
        solution = solve_core_problem(catalog, 5.0)
        assert (solution.frequencies == 0.0).all()
        assert solution.objective == pytest.approx(1.0)  # always fresh
        assert solution.bandwidth == 0.0

    def test_identical_elements_get_identical_frequencies(self):
        solution = solve_weighted_problem(
            np.full(4, 0.25), np.full(4, 2.0), np.ones(4), 8.0)
        assert np.allclose(solution.frequencies,
                           solution.frequencies[0])

    def test_higher_interest_gets_more_bandwidth_at_equal_rate(self):
        solution = solve_weighted_problem(
            np.array([0.7, 0.3]), np.array([2.0, 2.0]), np.ones(2), 2.0)
        assert solution.frequencies[0] > solution.frequencies[1]

    def test_objective_monotone_in_bandwidth(self, small_catalog):
        low = solve_core_problem(small_catalog, 1.0)
        high = solve_core_problem(small_catalog, 4.0)
        assert high.objective > low.objective

    def test_equation6_locus(self, small_catalog):
        """Paper Equation 6: active elements share one marginal value."""
        solution = solve_core_problem(small_catalog, 3.0)
        residual = kkt_residual(solution,
                                small_catalog.access_probabilities,
                                small_catalog.change_rates,
                                small_catalog.sizes)
        assert residual < 1e-6

    def test_rejects_nonpositive_bandwidth(self, small_catalog):
        with pytest.raises(InfeasibleProblemError):
            solve_core_problem(small_catalog, 0.0)
        with pytest.raises(InfeasibleProblemError):
            solve_core_problem(small_catalog, -1.0)

    def test_rejects_malformed_inputs(self):
        with pytest.raises(ValidationError):
            solve_weighted_problem(np.array([1.0]), np.array([1.0, 2.0]),
                                   np.ones(2), 1.0)
        with pytest.raises(ValidationError):
            solve_weighted_problem(np.array([-1.0]), np.array([1.0]),
                                   np.ones(1), 1.0)
        with pytest.raises(ValidationError):
            solve_weighted_problem(np.array([1.0]), np.array([-1.0]),
                                   np.ones(1), 1.0)
        with pytest.raises(ValidationError):
            solve_weighted_problem(np.array([1.0]), np.array([1.0]),
                                   np.zeros(1), 1.0)

    def test_solution_scale_invariant_in_weights(self, small_catalog):
        p = small_catalog.access_probabilities
        lam = small_catalog.change_rates
        one = solve_weighted_problem(p, lam, np.ones(5), 3.0)
        scaled = solve_weighted_problem(10.0 * p, lam, np.ones(5), 3.0)
        assert np.allclose(one.frequencies, scaled.frequencies,
                           atol=1e-8)


class TestSolverProperties:
    @given(st.integers(min_value=1, max_value=40),
           st.floats(min_value=0.5, max_value=200.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_kkt_residual_small_on_random_catalogs(self, n, bandwidth,
                                                   seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        solution = solve_core_problem(catalog, bandwidth)
        assert solution.bandwidth == pytest.approx(bandwidth, rel=1e-6)
        assert (solution.frequencies >= 0.0).all()
        residual = kkt_residual(solution, catalog.access_probabilities,
                                catalog.change_rates, catalog.sizes)
        scale = (catalog.access_probabilities
                 / catalog.change_rates).max()
        assert residual < 1e-5 * scale + 1e-9

    @given(st.integers(min_value=2, max_value=30),
           st.floats(min_value=1.0, max_value=50.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_sized_problem_kkt(self, n, bandwidth, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n, sized=True)
        solution = solve_core_problem(catalog, bandwidth)
        assert float(catalog.sizes @ solution.frequencies) == \
            pytest.approx(bandwidth, rel=1e-6)
        residual = kkt_residual(solution, catalog.access_probabilities,
                                catalog.change_rates, catalog.sizes)
        scale = (catalog.access_probabilities
                 / (catalog.change_rates * catalog.sizes)).max()
        assert residual < 1e-5 * scale + 1e-9

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_optimal_beats_uniform_allocation(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 20)
        bandwidth = 10.0
        solution = solve_core_problem(catalog, bandwidth)
        from repro.core.metrics import perceived_freshness
        uniform = np.full(20, bandwidth / 20.0)
        assert solution.objective >= perceived_freshness(
            catalog, uniform) - 1e-9

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_poisson_policy_solutions_feasible_and_stationary(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 15)
        model = PoissonSyncPolicy()
        solution = solve_core_problem(catalog, 7.5, model=model)
        assert solution.bandwidth == pytest.approx(7.5, rel=1e-6)
        residual = kkt_residual(solution, catalog.access_probabilities,
                                catalog.change_rates, catalog.sizes,
                                model=model)
        assert residual < 1e-6
