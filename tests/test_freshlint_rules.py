"""Unit tests for the freshlint rules, pragmas, and CLI.

Each rule is exercised against deliberate good/bad fixtures under
``tests/fixtures/freshlint/``.  Fixtures are linted with a widened
:class:`LintConfig` that treats every file as library + solver-path
code (and nothing as a test or entry point) so the path-scoped rules
fire regardless of where the checkout lives on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from freshlint import LintConfig, lint_file, run_paths
from freshlint.cli import main as freshlint_main
from freshlint.rules import ALL_RULES, rule_by_code

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "freshlint"

#: Everything is in scope; nothing is excused as a test/entry point.
STRICT = LintConfig(entry_point_globs=(), test_globs=(),
                    library_globs=("*",), solver_globs=("*",),
                    clock_globs=("*",))


def codes_in(path: Path, config: LintConfig = STRICT) -> list[str]:
    return [v.code for v in lint_file(path, config, root=REPO_ROOT)]


# ---------------------------------------------------------------------------
# rule registry sanity


def test_registry_codes_are_unique_and_sorted() -> None:
    codes = [rule.code for rule in ALL_RULES]
    assert codes == sorted(set(codes))
    assert codes == ["FL001", "FL002", "FL003", "FL004", "FL005",
                     "FL006", "FL007", "FL008", "FL009", "FL010"]


def test_rule_by_code_round_trips() -> None:
    for rule in ALL_RULES:
        assert rule_by_code(rule.code) is rule
    with pytest.raises(KeyError):
        rule_by_code("FL998")


# ---------------------------------------------------------------------------
# FL001 — randomness discipline


def test_fl001_flags_legacy_and_unseeded_rng() -> None:
    codes = codes_in(FIXTURES / "bad_fl001_legacy_rng.py")
    assert codes.count("FL001") == 4
    assert set(codes) == {"FL001"}


def test_fl001_clean_on_seeded_generator_style() -> None:
    assert "FL001" not in codes_in(FIXTURES / "good_fl001_seeded_rng.py")


def test_fl001_allows_argless_default_rng_in_entry_points() -> None:
    entry = LintConfig(entry_point_globs=("*",), test_globs=(),
                       library_globs=("*",), solver_globs=("*",))
    codes = codes_in(FIXTURES / "bad_fl001_legacy_rng.py", entry)
    # np.random.seed / rand stay banned; argless default_rng is allowed.
    assert codes.count("FL001") == 3


# ---------------------------------------------------------------------------
# FL002 — float equality


def test_fl002_flags_nonzero_float_equality() -> None:
    codes = codes_in(FIXTURES / "bad_fl002_float_eq.py")
    assert codes.count("FL002") == 3


def test_fl002_permits_zero_sentinels_and_isclose() -> None:
    assert "FL002" not in codes_in(FIXTURES / "good_fl002_tolerant.py")


def test_fl002_exempts_test_files() -> None:
    as_test = LintConfig(entry_point_globs=(), test_globs=("*",),
                         library_globs=("*",), solver_globs=("*",))
    assert "FL002" not in codes_in(FIXTURES / "bad_fl002_float_eq.py",
                                   as_test)


# ---------------------------------------------------------------------------
# FL003 — __all__ vs re-exports


def test_fl003_flags_drifted_all() -> None:
    codes = codes_in(FIXTURES / "bad_fl003_pkg" / "__init__.py")
    # duplicate entry + phantom export + missing "join"
    assert codes.count("FL003") == 3


def test_fl003_clean_when_all_matches() -> None:
    path = FIXTURES / "good_fl003_pkg" / "__init__.py"
    assert codes_in(path) == []


def test_fl003_only_applies_to_package_inits() -> None:
    # The same drifted content in a plain module is out of scope.
    assert "FL003" not in codes_in(FIXTURES / "bad_fl001_legacy_rng.py")


# ---------------------------------------------------------------------------
# FL004 — units in docstrings


def test_fl004_flags_missing_units_and_missing_docstring() -> None:
    codes = codes_in(FIXTURES / "bad_fl004_units.py")
    # schedule(): docstring never states units; rescale(): no
    # docstring at all.  One finding per offending function.
    assert codes.count("FL004") == 2


def test_fl004_clean_with_units_and_private_helpers() -> None:
    assert codes_in(FIXTURES / "good_fl004_units.py") == []


def test_fl004_scoped_to_library_code() -> None:
    outside = LintConfig(entry_point_globs=(), test_globs=(),
                         library_globs=(), solver_globs=("*",))
    assert "FL004" not in codes_in(FIXTURES / "bad_fl004_units.py",
                                   outside)


# ---------------------------------------------------------------------------
# FL005 — ndarray parameter mutation


def test_fl005_flags_inplace_mutation_including_asarray_alias() -> None:
    codes = codes_in(FIXTURES / "bad_fl005_mutation.py")
    assert codes.count("FL005") == 5


def test_fl005_clean_when_copies_launder() -> None:
    assert codes_in(FIXTURES / "good_fl005_copies.py") == []


def test_fl005_scoped_to_solver_paths() -> None:
    outside = LintConfig(entry_point_globs=(), test_globs=(),
                         library_globs=("*",), solver_globs=())
    codes = codes_in(FIXTURES / "bad_fl005_mutation.py", outside)
    assert "FL005" not in codes


# ---------------------------------------------------------------------------
# FL006 — exception discipline


def test_fl006_flags_bare_broad_and_swallowed() -> None:
    codes = codes_in(FIXTURES / "bad_fl006_exceptions.py")
    assert codes.count("FL006") == 3


def test_fl006_clean_on_typed_observable_handlers() -> None:
    assert codes_in(FIXTURES / "good_fl006_exceptions.py") == []


def test_fl006_bare_except_flagged_even_outside_solver_paths() -> None:
    outside = LintConfig(entry_point_globs=(), test_globs=(),
                         library_globs=("*",), solver_globs=())
    codes = codes_in(FIXTURES / "bad_fl006_exceptions.py", outside)
    # Only the bare except survives; broad/swallowed are solver-scoped.
    assert codes.count("FL006") == 1


# ---------------------------------------------------------------------------
# FL007 — print in library code


def test_fl007_flags_library_print() -> None:
    assert codes_in(FIXTURES / "bad_fl007_print.py") == ["FL007"]


def test_fl007_allows_entry_point_print() -> None:
    entry = LintConfig(entry_point_globs=("*",), test_globs=(),
                       library_globs=("*",), solver_globs=("*",))
    assert codes_in(FIXTURES / "bad_fl007_print.py", entry) == []


# ---------------------------------------------------------------------------
# FL008 — import cycles


def test_fl008_flags_both_halves_of_a_cycle() -> None:
    alpha = codes_in(FIXTURES / "bad_fl008_pkg" / "alpha.py")
    beta = codes_in(FIXTURES / "bad_fl008_pkg" / "beta.py")
    assert alpha.count("FL008") == 1
    assert beta.count("FL008") == 1


def test_fl008_names_the_cycle_in_the_message() -> None:
    path = FIXTURES / "bad_fl008_pkg" / "alpha.py"
    violations = [v for v in lint_file(path, STRICT, root=REPO_ROOT)
                  if v.code == "FL008"]
    assert "bad_fl008_pkg.alpha -> bad_fl008_pkg.beta" \
        in violations[0].message


def test_fl008_clean_with_deferred_and_type_checking_imports() -> None:
    for name in ("alpha.py", "beta.py", "__init__.py"):
        assert codes_in(FIXTURES / "good_fl008_pkg" / name) == []


def test_fl008_ignores_loose_modules() -> None:
    # Not in a package: no graph to build, even with imports present.
    assert "FL008" not in codes_in(FIXTURES / "bad_fl001_legacy_rng.py")


# ---------------------------------------------------------------------------
# FL009 — wall-clock reads


def test_fl009_flags_every_wall_clock_spelling() -> None:
    codes = codes_in(FIXTURES / "bad_fl009_wall_clock.py")
    # time.time(), aliased time(), argless datetime.now(), date.today()
    assert codes.count("FL009") == 4


def test_fl009_clean_on_monotonic_and_injected_time() -> None:
    assert codes_in(FIXTURES / "good_fl009_monotonic.py") == []


def test_fl009_scoped_to_clock_paths() -> None:
    outside = LintConfig(entry_point_globs=(), test_globs=(),
                         library_globs=("*",), solver_globs=("*",),
                         clock_globs=())
    assert "FL009" not in codes_in(FIXTURES / "bad_fl009_wall_clock.py",
                                   outside)


# ---------------------------------------------------------------------------
# FL010 — retry/backoff discipline


def test_fl010_flags_sleeps_and_rngless_retry_loop() -> None:
    codes = codes_in(FIXTURES / "bad_fl010_sleep_loop.py")
    # two time.sleep() calls + the rng-less retry function
    assert codes.count("FL010") == 3
    assert set(codes) == {"FL010"}


def test_fl010_clean_on_injected_backoff() -> None:
    assert codes_in(FIXTURES / "good_fl010_injected_backoff.py") == []


def test_fl010_exempts_tests_and_entry_points() -> None:
    exempt = LintConfig(entry_point_globs=("*",), test_globs=(),
                        library_globs=("*",), solver_globs=("*",))
    assert "FL010" not in codes_in(FIXTURES / "bad_fl010_sleep_loop.py",
                                   exempt)


# ---------------------------------------------------------------------------
# pragmas, select/ignore, syntax errors


def test_pragmas_suppress_line_and_file_scoped_findings() -> None:
    assert codes_in(FIXTURES / "pragma_suppressed.py") == []


def test_select_and_ignore_narrow_the_rule_set() -> None:
    bad = FIXTURES / "bad_fl001_legacy_rng.py"
    only_fl002 = LintConfig(entry_point_globs=(), test_globs=(),
                            library_globs=("*",), solver_globs=("*",),
                            select=("FL002",))
    assert codes_in(bad, only_fl002) == []
    no_fl001 = LintConfig(entry_point_globs=(), test_globs=(),
                          library_globs=("*",), solver_globs=("*",),
                          ignore=("FL001",))
    assert codes_in(bad, no_fl001) == []


def test_syntax_error_reports_fl999(tmp_path: Path) -> None:
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    codes = [v.code for v in lint_file(broken)]
    assert codes == ["FL999"]


def test_run_paths_walks_directories() -> None:
    violations = run_paths([FIXTURES], STRICT, root=REPO_ROOT)
    assert {v.code for v in violations} >= {"FL001", "FL002", "FL003",
                                            "FL004", "FL005", "FL006",
                                            "FL007", "FL008", "FL009",
                                            "FL010"}


# ---------------------------------------------------------------------------
# CLI


def test_cli_exit_codes_and_output(capsys: pytest.CaptureFixture) -> None:
    clean = str(FIXTURES / "good_fl002_tolerant.py")
    assert freshlint_main([clean, "--quiet"]) == 0

    bad = str(FIXTURES / "bad_fl007_print.py")
    # Default config: fixture path matches tests/** so FL007 is exempt
    # and the file is clean under the shipped scoping.
    assert freshlint_main([bad, "--quiet"]) == 0
    capsys.readouterr()

    broken = str(FIXTURES / "bad_fl001_legacy_rng.py")
    assert freshlint_main([broken, "--quiet"]) == 1
    out = capsys.readouterr().out
    assert "FL001" in out


def test_cli_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert freshlint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out


def test_cli_rejects_unknown_codes() -> None:
    with pytest.raises(SystemExit) as excinfo:
        freshlint_main(["--select", "FL998", str(FIXTURES)])
    assert excinfo.value.code == 2
