"""Representative elements and the Transformed Problem (paper §3.2).

After partitioning, every partition is treated as nₖ identical copies
of one *representative element* whose access probability and change
rate (and size) are the partition means:

    p̄ₖ = Σ_{i∈k} pᵢ / nₖ,   λ̄ₖ = Σ_{i∈k} λᵢ / nₖ,   s̄ₖ = Σ_{i∈k} sᵢ / nₖ.

The Core Problem then shrinks to k variables — the Transformed
Problem —

    max Σₖ nₖ·p̄ₖ·F̄(λ̄ₖ, fₖ)   s.t.  Σₖ nₖ·s̄ₖ·fₖ = B,

whose solution assigns bandwidth to partitions; the allocation
policies in :mod:`repro.core.allocation` then spread each partition's
share over its members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.freshness import FreshnessModel
from repro.core.partitioning import PartitionAssignment
from repro.core.solver import ScheduleSolution, solve_weighted_problem
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

__all__ = ["RepresentativeProblem", "build_representatives",
           "solve_transformed_problem"]


@dataclass(frozen=True)
class RepresentativeProblem:
    """The k-variable Transformed Problem for a partitioning.

    Attributes:
        assignment: The partitioning it was built from.
        counts: Elements per partition nₖ, shape ``(k,)``.
        mean_probabilities: Representative access probabilities p̄ₖ.
        mean_change_rates: Representative change rates λ̄ₖ.
        mean_sizes: Representative sizes s̄ₖ.
    """

    assignment: PartitionAssignment
    counts: np.ndarray
    mean_probabilities: np.ndarray
    mean_change_rates: np.ndarray
    mean_sizes: np.ndarray

    @property
    def n_partitions(self) -> int:
        """Number of partitions k."""
        return int(self.counts.shape[0])

    @property
    def weights(self) -> np.ndarray:
        """Objective weights of the Transformed Problem, ``nₖ·p̄ₖ``."""
        return self.counts * self.mean_probabilities

    @property
    def costs(self) -> np.ndarray:
        """Bandwidth costs of the Transformed Problem, ``nₖ·s̄ₖ``."""
        return self.counts * self.mean_sizes


#: Valid representative statistics for :func:`build_representatives`.
REPRESENTATIVE_STATISTICS = ("mean", "median", "interest-weighted")


def build_representatives(catalog: Catalog,
                          assignment: PartitionAssignment, *,
                          statistic: str = "mean",
                          ) -> RepresentativeProblem:
    """Compute partition representatives for the Transformed Problem.

    Args:
        catalog: Workload description.
        assignment: A partitioning of the catalog's elements.
        statistic: How the representative is summarized from the
            partition's members — ``"mean"`` (the paper's choice),
            ``"median"`` (robust to outliers inside a partition), or
            ``"interest-weighted"`` (λ̄ and s̄ weighted by access
            probability, so the representative reflects the members
            users actually hit).  The DESIGN.md ablation compares
            these.

    Returns:
        The :class:`RepresentativeProblem`.  Empty partitions (which
        k-means refinement can produce) get zero count and harmless
        placeholder values; they receive no bandwidth.
    """
    if statistic not in REPRESENTATIVE_STATISTICS:
        raise ValidationError(
            f"unknown representative statistic {statistic!r}; expected "
            f"one of {REPRESENTATIVE_STATISTICS}")
    labels = assignment.labels
    if labels.shape != (catalog.n_elements,):
        raise ValidationError(
            f"assignment covers {labels.shape[0]} elements but the catalog "
            f"has {catalog.n_elements}")
    k = assignment.n_partitions
    counts = np.bincount(labels, minlength=k).astype(float)
    occupied = counts > 0

    def partition_mean(values: np.ndarray, fill: float,
                       weights: np.ndarray | None = None) -> np.ndarray:
        if weights is None:
            sums = np.bincount(labels, weights=values, minlength=k)
            out = np.full(k, fill)
            out[occupied] = sums[occupied] / counts[occupied]
            return out
        weighted = np.bincount(labels, weights=values * weights,
                               minlength=k)
        weight_sums = np.bincount(labels, weights=weights, minlength=k)
        out = np.full(k, fill)
        positive = weight_sums > 0
        out[positive] = weighted[positive] / weight_sums[positive]
        return out

    def partition_median(values: np.ndarray, fill: float) -> np.ndarray:
        out = np.full(k, fill)
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        sorted_values = values[order]
        boundaries = np.searchsorted(sorted_labels, np.arange(k + 1))
        for partition in range(k):
            lo, hi = boundaries[partition], boundaries[partition + 1]
            if hi > lo:
                out[partition] = float(np.median(sorted_values[lo:hi]))
        return out

    p = catalog.access_probabilities
    if statistic == "median":
        probabilities = partition_median(p, 0.0)
        rates = partition_median(catalog.change_rates, 0.0)
        sizes = partition_median(catalog.sizes, 1.0)
    elif statistic == "interest-weighted":
        # p̄ stays the plain mean so Σ nₖ·p̄ₖ preserves total interest;
        # λ̄ and s̄ reflect what interested users actually touch.
        probabilities = partition_mean(p, 0.0)
        rates = partition_mean(catalog.change_rates, 0.0, weights=p)
        sizes = partition_mean(catalog.sizes, 1.0, weights=p)
        # Partitions with zero total interest fall back to the mean.
        fallback_rates = partition_mean(catalog.change_rates, 0.0)
        fallback_sizes = partition_mean(catalog.sizes, 1.0)
        interest = np.bincount(labels, weights=p, minlength=k)
        dead = interest <= 0.0
        rates[dead] = fallback_rates[dead]
        sizes[dead] = fallback_sizes[dead]
    else:
        probabilities = partition_mean(p, 0.0)
        rates = partition_mean(catalog.change_rates, 0.0)
        sizes = partition_mean(catalog.sizes, 1.0)

    return RepresentativeProblem(
        assignment=assignment,
        counts=counts,
        mean_probabilities=probabilities,
        mean_change_rates=rates,
        mean_sizes=sizes,
    )


def solve_transformed_problem(problem: RepresentativeProblem,
                              bandwidth: float, *,
                              model: FreshnessModel | None = None,
                              ) -> ScheduleSolution:
    """Solve the k-variable Transformed Problem exactly.

    Args:
        problem: Representatives from :func:`build_representatives`.
        bandwidth: The full bandwidth budget B, in size units per
            period.
        model: Freshness model (Fixed-Order by default).

    Returns:
        A :class:`ScheduleSolution` over *partitions*: its
        ``frequencies`` entry k is the per-element sync frequency fₖ
        for partition k (so partition k consumes ``nₖ·s̄ₖ·fₖ``).
    """
    return solve_weighted_problem(problem.weights,
                                  problem.mean_change_rates,
                                  np.maximum(problem.costs, 1e-300),
                                  bandwidth, model=model)
