"""Span-based autofix engine for freshlint rules.

A rule that knows how to remediate a finding attaches a :class:`Fix`
to the :class:`~freshlint.engine.Violation` it yields.  A fix is a
set of :class:`TextEdit` spans over the original source — *positions,
not patterns* — so applying it is exact and order-independent:

* edits are applied bottom-up (later spans first), so earlier spans'
  coordinates stay valid;
* two fixes whose spans overlap cannot both be applied in one pass;
  the engine applies the first and re-lints, so the survivor (if the
  rule still fires) is picked up on the next iteration;
* the loop runs until a pass applies nothing, which makes
  ``freshlint --fix`` **idempotent**: a second invocation finds no
  fixable violations and rewrites nothing (asserted by the test
  suite).

``fix_file`` is the programmatic entry; the CLI maps ``--fix`` onto
it and ``--diff`` onto its dry-run mode (report the unified diff,
write nothing).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from freshlint.engine import LintConfig, Violation, lint_file

__all__ = [
    "Fix",
    "FixReport",
    "TextEdit",
    "apply_edits",
    "fix_file",
    "unified_diff",
]

#: Safety valve: a fix loop that has not converged after this many
#: passes is cycling (two rules rewriting each other's output) and
#: aborts rather than ping-ponging forever.
MAX_PASSES = 10


@dataclass(frozen=True)
class TextEdit:
    """Replace one source span with new text.

    Coordinates follow the AST convention: 1-based lines, 0-based
    columns.  An *insertion* is an empty span (``line == end_line``
    and ``col == end_col``).
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str

    def span(self, line_offsets: Sequence[int]) -> tuple[int, int]:
        """The edit's absolute ``(start, end)`` character offsets."""
        start = line_offsets[self.line - 1] + self.col
        end = line_offsets[self.end_line - 1] + self.end_col
        return start, end


@dataclass(frozen=True)
class Fix:
    """A machine-applicable remediation for one violation."""

    description: str
    edits: tuple[TextEdit, ...]


@dataclass(frozen=True)
class FixReport:
    """Outcome of one ``fix_file`` run."""

    path: Path
    applied: int
    passes: int
    changed: bool
    new_source: str
    remaining: tuple[Violation, ...]

    def diff(self, original: str) -> str:
        """Unified diff from ``original`` to the fixed source."""
        return unified_diff(original, self.new_source, self.path)


def _line_offsets(source: str) -> list[int]:
    """Absolute offset of the start of every line (1-based index −1)."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def apply_edits(source: str, edits: Sequence[TextEdit]) -> tuple[str, int]:
    """Apply non-overlapping edits to ``source``.

    Edits are sorted by span and applied bottom-up; an edit whose span
    overlaps an already-accepted one is skipped (the fix loop retries
    it on the next pass against the rewritten source).

    Returns:
        ``(new_source, n_applied)``.
    """
    offsets = _line_offsets(source)
    spanned = sorted((edit.span(offsets), edit) for edit in edits)
    accepted: list[tuple[tuple[int, int], TextEdit]] = []
    last_end = -1
    for (start, end), edit in spanned:
        if start < last_end or end < start:
            continue
        accepted.append(((start, end), edit))
        # Two pure insertions at the same offset would commute, but
        # their combined order is ambiguous - keep one per pass.
        last_end = max(end, start + 1)
    for (start, end), edit in reversed(accepted):
        source = source[:start] + edit.replacement + source[end:]
    return source, len(accepted)


def unified_diff(original: str, fixed: str, path: Path | str) -> str:
    """A ``--diff``-style unified diff (empty string when identical)."""
    if original == fixed:
        return ""
    return "".join(difflib.unified_diff(
        original.splitlines(keepends=True),
        fixed.splitlines(keepends=True),
        fromfile=str(path), tofile=f"{path} (fixed)"))


def fix_file(path: str | Path, config: LintConfig | None = None, *,
             root: Path | None = None,
             write: bool = True) -> FixReport:
    """Apply every available fix in ``path`` until a pass is clean.

    Args:
        path: The file to fix.
        config: Lint scope knobs (defaults to the repository config).
        root: Repository root for path-glob matching.
        write: When False (the ``--diff`` dry run), the rewritten
            source is computed and reported but never written back.

    Returns:
        A :class:`FixReport`; ``remaining`` holds the violations that
        survive because no rule offers a fix for them.
    """
    path = Path(path)
    config = config or LintConfig()
    source = path.read_text(encoding="utf-8")
    current = source
    applied = 0
    passes = 0
    while passes < MAX_PASSES:
        passes += 1
        violations = lint_file(path, config, root=root, source=current)
        edits = [edit for violation in violations
                 if violation.fix is not None
                 for edit in violation.fix.edits]
        if not edits:
            break
        current, n_applied = apply_edits(current, edits)
        applied += n_applied
        if n_applied == 0:
            break
    remaining = tuple(lint_file(path, config, root=root, source=current))
    changed = current != source
    if write and changed:
        path.write_text(current, encoding="utf-8")
    return FixReport(path=path, applied=applied, passes=passes,
                     changed=changed, new_source=current,
                     remaining=remaining)
