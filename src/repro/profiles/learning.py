"""Learning the master profile from the request log (paper §7).

The paper's conclusion proposes "a simple learning algorithm that
monitors the system request log" instead of requiring users to submit
profiles.  This module implements that algorithm:

* :class:`ProfileLearner` maintains exponentially decayed access
  counts with Laplace smoothing.  Decay lets the estimate track
  drifting interest; smoothing keeps never-yet-accessed elements from
  being starved forever (they may become interesting).
* :func:`estimate_profile` is the one-shot batch variant for a
  recorded :class:`~repro.workloads.accesses.AccessSet`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.profiles.profile import UserProfile
from repro.workloads.accesses import AccessSet

__all__ = ["ProfileLearner", "estimate_profile"]


def estimate_profile(accesses: AccessSet, n_elements: int, *,
                     smoothing: float = 1.0) -> UserProfile:
    """Batch-estimate a profile from one recorded access set.

    Args:
        accesses: Observed accesses.
        n_elements: Mirror size.
        smoothing: Laplace pseudo-count added to every element
            (``0`` disables smoothing but then requires at least one
            observed access).

    Returns:
        The smoothed empirical profile
        ``pᵢ = (mᵢ + smoothing) / (M + N·smoothing)``.
    """
    if smoothing < 0.0:
        raise ValidationError(f"smoothing must be >= 0, got {smoothing}")
    counts = accesses.access_counts(n_elements).astype(float)
    counts += smoothing
    total = counts.sum()
    if total <= 0.0:
        raise ValidationError(
            "no accesses and no smoothing: profile is undefined")
    return UserProfile(probabilities=counts / total, name="learned")


class ProfileLearner:
    """Online profile estimation with exponential decay.

    Counts are decayed by ``decay`` once per period boundary, so an
    element's influence on the estimate halves every
    ``ln 2 / ln(1/decay)`` periods.

    Args:
        n_elements: Mirror size.
        decay: Multiplicative decay per period, in ``(0, 1]`` (1.0
            never forgets).
        smoothing: Laplace pseudo-count applied when reading the
            estimate.
    """

    def __init__(self, n_elements: int, *, decay: float = 0.9,
                 smoothing: float = 1.0) -> None:
        if n_elements < 1:
            raise ValidationError(
                f"n_elements must be >= 1, got {n_elements}")
        if not 0.0 < decay <= 1.0:
            raise ValidationError(f"decay must be in (0, 1], got {decay}")
        if smoothing < 0.0:
            raise ValidationError(f"smoothing must be >= 0, got {smoothing}")
        self._counts = np.zeros(n_elements)
        self._decay = decay
        self._smoothing = smoothing
        self._observed = 0

    @property
    def n_elements(self) -> int:
        """Mirror size the learner tracks."""
        return int(self._counts.shape[0])

    @property
    def total_observed(self) -> int:
        """Raw (undecayed) number of accesses ever observed."""
        return self._observed

    def observe(self, elements: np.ndarray) -> None:
        """Record a batch of accessed element indices.

        Args:
            elements: Element indices, each in ``[0, N)``.
        """
        elements = np.asarray(elements, dtype=np.int64)
        if elements.size == 0:
            return
        if elements.min() < 0 or elements.max() >= self.n_elements:
            raise ValidationError(
                f"element indices must lie in [0, {self.n_elements})")
        self._counts += np.bincount(elements, minlength=self.n_elements)
        self._observed += int(elements.size)

    def observe_access_set(self, accesses: AccessSet) -> None:
        """Record every access of an :class:`AccessSet`."""
        self.observe(accesses.elements)

    def end_period(self) -> None:
        """Apply one period's exponential decay to the counts."""
        self._counts *= self._decay

    def estimate(self) -> UserProfile:
        """The current smoothed profile estimate.

        Returns:
            A :class:`UserProfile`; uniform when nothing has been
            observed and smoothing is positive.

        Raises:
            ValidationError: If nothing was observed and smoothing is
                zero.
        """
        weights = self._counts + self._smoothing
        total = weights.sum()
        if total <= 0.0:
            raise ValidationError(
                "no observations and no smoothing: estimate is undefined")
        return UserProfile(probabilities=weights / total, name="learned")
