"""Lint engine: file discovery, pragma handling, and the lint loop.

The engine is rule-agnostic.  It parses each Python file once into a
:class:`ModuleContext` (source, AST, import-alias map, path-derived
scope flags) and hands the context to every active rule.  Violations
are filtered through ``# freshlint: disable=...`` pragmas before being
reported.

Pragma forms (codes comma-separated, ``FL000`` disables everything):

* line-level — suppresses findings reported *on that line*::

      risky_line()  # freshlint: disable=FL001

* file-level — suppresses a rule for the whole file; put it on its own
  line anywhere in the file (conventionally near the top)::

      # freshlint: disable-file=FL005
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from freshlint.autofix import Fix
    from freshlint.rules import Rule

__all__ = [
    "LintConfig",
    "ModuleContext",
    "Violation",
    "filter_suppressed",
    "iter_python_files",
    "lint_file",
    "parse_module",
    "run_paths",
]

_PRAGMA_RE = re.compile(
    r"#\s*freshlint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>FL\d{3}(?:\s*,\s*FL\d{3})*)",
)

#: Pseudo-code accepted in pragmas that matches every rule.
WILDCARD_CODE = "FL000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules",
                   "build", "dist", ".eggs"}


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location.

    ``fix`` optionally carries a machine-applicable remediation (see
    :mod:`freshlint.autofix`); it never participates in equality or
    hashing, so findings compare by location and message alone.
    """

    code: str
    path: Path
    line: int
    column: int
    message: str
    fix: "Fix | None" = field(default=None, compare=False)

    def render(self) -> str:
        """``path:line:col: CODE message`` (editor-clickable)."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.code} {self.message}")


@dataclass(frozen=True)
class LintConfig:
    """Scope knobs shared by the rules.

    Path globs are matched against the file path relative to the
    repository root (POSIX separators); absolute fallbacks are matched
    against the full path so the linter also works on files outside
    the tree (e.g. pytest ``tmp_path`` fixtures).
    """

    #: Files allowed to create entry-point randomness (argless
    #: ``default_rng()``) and to ``print``.
    entry_point_globs: tuple[str, ...] = (
        "examples/*.py",
        "benchmarks/*.py",
        "tools/*",
        "tools/**/*.py",
        "src/repro/cli.py",
        "src/repro/__main__.py",
    )
    #: Test files: exempt from FL002/FL004/FL007 (tests legitimately
    #: pin exact floats and print diagnostics).
    test_globs: tuple[str, ...] = (
        "tests/*", "tests/**/*", "*/test_*.py", "test_*.py",
        "*/conftest.py", "conftest.py",
    )
    #: Library code: FL004 (units) and FL007 (print) apply here.
    library_globs: tuple[str, ...] = ("src/repro/*", "src/repro/**/*")
    #: Solver paths: FL005 (no ndarray-param mutation) and the strict
    #: half of FL006 (no broad/swallowed except) apply here.
    solver_globs: tuple[str, ...] = (
        "src/repro/core/*.py",
        "src/repro/numerics/*.py",
    )
    #: Clock-disciplined paths: FL009 bans wall-clock reads
    #: (``time.time()``, argless ``datetime.now()``) here — simulated
    #: time and monotonic interval timers only.
    clock_globs: tuple[str, ...] = (
        "src/repro/core/*.py",
        "src/repro/numerics/*.py",
        "src/repro/sim/*.py",
        "src/repro/faults/*.py",
        # The relay-tree modules are named explicitly on top of the
        # faults/ directory glob: hop ledgers and outage windows run
        # purely on simulated time, and that guarantee must survive
        # any future narrowing of the directory-wide entry.
        "src/repro/faults/topology.py",
        "src/repro/faults/correlated.py",
        # Likewise the replay kernels and the event-tape layout: the
        # fastpath rewinds and replays RNG streams against simulated
        # clocks only, so these stay pinned even if the sim/ glob is
        # ever narrowed.
        "src/repro/sim/fastpath.py",
        "src/repro/sim/events.py",
    )
    #: Vectorized-kernel modules: FL014 (dtype discipline, uint64-view
    #: bit-identity comparisons) applies here.  The event-tape module
    #: is pinned alongside the kernels because the structure-of-arrays
    #: layout (float64/int32/int8) is part of the kernel contract.
    kernel_globs: tuple[str, ...] = (
        "src/repro/sim/fastpath.py",
        "src/repro/sim/events.py",
    )
    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()


def _match_any(relative: str, full: str, globs: Sequence[str]) -> bool:
    return any(fnmatch(relative, g) or fnmatch(full, g) for g in globs)


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: Path
    relative_path: str
    source: str
    tree: ast.Module
    config: LintConfig
    lines: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = tuple(self.source.splitlines())

    @property
    def is_entry_point(self) -> bool:
        """True for scripts allowed ambient randomness and printing."""
        return _match_any(self.relative_path, str(self.path),
                          self.config.entry_point_globs)

    @property
    def is_test(self) -> bool:
        """True for pytest files (exempt from FL002/FL004/FL007)."""
        return _match_any(self.relative_path, str(self.path),
                          self.config.test_globs)

    @property
    def is_library(self) -> bool:
        """True for importable library modules under ``src/repro``."""
        return _match_any(self.relative_path, str(self.path),
                          self.config.library_globs)

    @property
    def is_solver_path(self) -> bool:
        """True for the numeric core (``core/`` and ``numerics/``)."""
        return _match_any(self.relative_path, str(self.path),
                          self.config.solver_globs)

    @property
    def is_clock_path(self) -> bool:
        """True where wall-clock reads are banned (FL009)."""
        return _match_any(self.relative_path, str(self.path),
                          self.config.clock_globs)

    @property
    def is_kernel_path(self) -> bool:
        """True for vectorized-kernel modules (FL014 scope)."""
        return _match_any(self.relative_path, str(self.path),
                          self.config.kernel_globs)

    @property
    def is_package_init(self) -> bool:
        """True for package ``__init__.py`` files."""
        return self.path.name == "__init__.py"

    def import_aliases(self) -> Mapping[str, str]:
        """Map of local name -> fully dotted origin for module imports.

        ``import numpy as np`` yields ``{"np": "numpy"}``;
        ``from numpy.random import default_rng as rng`` yields
        ``{"rng": "numpy.random.default_rng"}``.  Only module-level
        and function-level imports reachable by :func:`ast.walk` are
        recorded; later bindings win, which is close enough for lint
        purposes.
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    aliases[local] = name.name if name.asname else local
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never reach numpy
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{node.module}.{name.name}"
        return aliases

    def resolve_call_target(self, func: ast.expr) -> str | None:
        """Dotted origin of a call target, through import aliases.

        ``np.random.seed`` resolves to ``"numpy.random.seed"`` when
        ``np`` aliases ``numpy``; a bare ``default_rng`` imported from
        ``numpy.random`` resolves to ``"numpy.random.default_rng"``.
        Returns None for calls on non-name roots (attributes of call
        results, subscripts, ...).
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        aliases = self.import_aliases()
        root = aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _parse_pragmas(lines: Sequence[str]) -> tuple[dict[int, set[str]],
                                                  set[str]]:
    """Extract (line-level, file-level) pragma suppressions."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        if match.group("kind") == "disable-file":
            per_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


def _suppressed(violation: Violation, per_line: Mapping[int, set[str]],
                per_file: set[str]) -> bool:
    def hit(codes: set[str]) -> bool:
        return violation.code in codes or WILDCARD_CODE in codes

    if hit(per_file):
        return True
    line_codes = per_line.get(violation.line)
    return line_codes is not None and hit(line_codes)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``*.py`` files under the given files/directories, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIR_NAMES for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _relative_to_root(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _active_rules(config: LintConfig) -> "list[Rule]":
    from freshlint.rules import ALL_RULES

    rules = list(ALL_RULES)
    if config.select:
        rules = [r for r in rules if r.code in config.select]
    if config.ignore:
        rules = [r for r in rules if r.code not in config.ignore]
    return rules


def parse_module(path: str | Path, config: LintConfig | None = None, *,
                 root: Path | None = None,
                 source: str | None = None) -> ModuleContext | Violation:
    """Parse one file into a :class:`ModuleContext`.

    Returns the context, or an ``FL999`` :class:`Violation` when the
    file does not parse.  ``source`` overrides the on-disk content
    (the autofix engine re-lints rewritten text without writing it).
    """
    config = config or LintConfig()
    path = Path(path)
    if source is None:
        source = path.read_text(encoding="utf-8")
    relative = _relative_to_root(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Violation(code="FL999", path=path,
                         line=error.lineno or 1,
                         column=(error.offset or 1) - 1,
                         message=f"syntax error: {error.msg}")
    return ModuleContext(path=path, relative_path=relative,
                         source=source, tree=tree, config=config)


def filter_suppressed(violations: Iterable[Violation],
                      lines: Sequence[str]) -> list[Violation]:
    """Drop violations silenced by ``# freshlint: disable`` pragmas."""
    per_line, per_file = _parse_pragmas(lines)
    return [v for v in violations
            if not _suppressed(v, per_line, per_file)]


def lint_file(path: str | Path, config: LintConfig | None = None, *,
              root: Path | None = None,
              source: str | None = None) -> list[Violation]:
    """Lint a single file; syntax errors surface as an FL999 finding."""
    config = config or LintConfig()
    context = parse_module(path, config, root=root, source=source)
    if isinstance(context, Violation):
        return [context]
    violations = filter_suppressed(
        (v for rule in _active_rules(config) for v in rule.check(context)),
        context.lines)
    violations.sort(key=lambda v: (v.line, v.column, v.code))
    return violations


def run_paths(paths: Iterable[str | Path],
              config: LintConfig | None = None, *,
              root: Path | None = None) -> list[Violation]:
    """Lint every Python file under ``paths``; the programmatic API."""
    config = config or LintConfig()
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, config, root=root))
    return violations
