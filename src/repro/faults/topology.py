"""Relay-tree topologies: the network between source and mirror.

The paper models one source→mirror channel; its motivating
deployments freshen through source→relay→edge-cache *trees* where a
poll transits every hop on its root-to-edge path (PAPERS.md:
Kaswan–Bastopcu–Ulukus, "Freshness Based Cache Updating in Parallel
Relay Networks").  This module is the pure topology vocabulary —
who hangs below whom, what each uplink can carry, how long a hop
takes — consumed by the fault layer
(:mod:`repro.faults.correlated` drives node outages through the
dependency graph) and the sync path
(:class:`~repro.faults.channel.SyncChannel` charges every ledger on
an element's path).

Everything here is deterministic: the only randomness is the seeded
element→edge assignment in :meth:`Topology.build`, drawn from a
``SeedSequence``-derived generator so the same seed always yields the
same tree (freshlint FL001/FL011).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError

__all__ = ["HopLedger", "Topology"]

#: Node id of the source (the tree root).
SOURCE = 0


@dataclass(frozen=True)
class Topology:
    """A source→relay→edge tree with per-hop capacity and latency.

    Node 0 is the source; every other node has exactly one uplink to
    ``parents[node]``.  Leaves that host elements are *edge caches*;
    interior nodes are *relays*.  Each non-root node's uplink carries
    a per-period bandwidth capacity and a one-way latency; a poll of
    an element transits every uplink on the root-to-edge path.

    Attributes:
        parents: Parent node per node, shape ``(n_nodes,)``;
            ``parents[0] == -1`` and ``parents[i] < i`` (topological
            order).
        element_edge: Hosting edge node per element, shape
            ``(n_elements,)``.
        link_bandwidth: Per-period capacity of each node's uplink, in
            size units per period (``inf`` = uncapped; the root entry
            is ignored).
        link_latency: One-way transit latency of each node's uplink,
            in period units (the root entry is ignored).
    """

    parents: np.ndarray
    element_edge: np.ndarray
    link_bandwidth: np.ndarray
    link_latency: np.ndarray
    _paths: tuple[tuple[int, ...], ...] = field(init=False, repr=False,
                                                compare=False)

    def __post_init__(self) -> None:
        parents = np.asarray(self.parents, dtype=np.int64)
        edges = np.asarray(self.element_edge, dtype=np.int64)
        bandwidth = np.asarray(self.link_bandwidth, dtype=float)
        latency = np.asarray(self.link_latency, dtype=float)
        if parents.ndim != 1 or parents.shape[0] < 2:
            raise ValidationError(
                "a topology needs the source plus at least one node, "
                f"got parents of shape {parents.shape}")
        if parents[0] != -1:
            raise ValidationError(
                f"node 0 is the source and must have parent -1, got "
                f"{parents[0]}")
        n_nodes = parents.shape[0]
        for node in range(1, n_nodes):
            if not 0 <= parents[node] < node:
                raise ValidationError(
                    f"parents must be topologically ordered "
                    f"(0 <= parents[{node}] < {node}), got "
                    f"{parents[node]}")
        if edges.ndim != 1 or edges.size == 0:
            raise ValidationError(
                f"element_edge must be a non-empty vector, got shape "
                f"{edges.shape}")
        children = np.zeros(n_nodes, dtype=np.int64)
        counted = np.bincount(parents[1:], minlength=n_nodes)
        children[:counted.shape[0]] = counted
        for element, edge in enumerate(edges.tolist()):
            if not 1 <= edge < n_nodes:
                raise ValidationError(
                    f"element {element} maps to node {edge}, outside "
                    f"[1, {n_nodes})")
            if children[edge]:
                raise ValidationError(
                    f"element {element} maps to interior node {edge}; "
                    "elements live on leaf edge caches")
        for name, vector in (("link_bandwidth", bandwidth),
                             ("link_latency", latency)):
            if vector.shape != (n_nodes,):
                raise ValidationError(
                    f"{name} shape {vector.shape} does not match "
                    f"{n_nodes} nodes")
        if (bandwidth[1:] <= 0.0).any():
            raise ValidationError(
                "link_bandwidth must be > 0 on every uplink")
        if (latency[1:] < 0.0).any():
            raise ValidationError(
                "link_latency must be >= 0 on every uplink")
        object.__setattr__(self, "parents", parents)
        object.__setattr__(self, "element_edge", edges)
        object.__setattr__(self, "link_bandwidth", bandwidth)
        object.__setattr__(self, "link_latency", latency)
        paths = []
        for node in range(n_nodes):
            path: list[int] = []
            cursor = node
            while cursor != SOURCE:
                path.append(cursor)
                cursor = int(parents[cursor])
            paths.append(tuple(reversed(path)))
        object.__setattr__(self, "_paths", tuple(paths))

    # -- construction ----------------------------------------------

    @classmethod
    def build(cls, n_elements: int, *, n_relays: int = 3,
              edges_per_relay: int = 2, seed: int = 0,
              relay_bandwidth: float = np.inf,
              edge_bandwidth: float = np.inf,
              relay_latency: float = 0.0,
              edge_latency: float = 0.0) -> "Topology":
        """Build a balanced two-level relay tree with seeded placement.

        Elements are assigned to edge caches by a seeded random
        permutation split into equal contiguous chunks, so hot and
        cold elements spread across subtrees and the same seed always
        produces the same tree.

        Args:
            n_elements: Catalog size, >= 1.
            n_relays: Relays directly below the source, >= 1.
            edges_per_relay: Edge caches below each relay, >= 1.
            seed: Placement seed (dimensionless).
            relay_bandwidth: Capacity of each source→relay uplink, in
                size units per period (``inf`` = uncapped).
            edge_bandwidth: Capacity of each relay→edge uplink, in
                size units per period (``inf`` = uncapped).
            relay_latency: Source→relay hop latency, in period units.
            edge_latency: Relay→edge hop latency, in period units.

        Returns:
            The seeded :class:`Topology`.
        """
        if n_elements < 1:
            raise ValidationError(
                f"n_elements must be >= 1, got {n_elements}")
        if n_relays < 1:
            raise ValidationError(
                f"n_relays must be >= 1, got {n_relays}")
        if edges_per_relay < 1:
            raise ValidationError(
                f"edges_per_relay must be >= 1, got {edges_per_relay}")
        n_edges = n_relays * edges_per_relay
        n_nodes = 1 + n_relays + n_edges
        parents = np.full(n_nodes, -1, dtype=np.int64)
        bandwidth = np.full(n_nodes, np.inf)
        latency = np.zeros(n_nodes)
        for relay in range(n_relays):
            node = 1 + relay
            parents[node] = SOURCE
            bandwidth[node] = relay_bandwidth
            latency[node] = relay_latency
        for edge in range(n_edges):
            node = 1 + n_relays + edge
            parents[node] = 1 + edge // edges_per_relay
            bandwidth[node] = edge_bandwidth
            latency[node] = edge_latency
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        order = rng.permutation(n_elements)
        element_edge = np.empty(n_elements, dtype=np.int64)
        chunks = np.array_split(order, n_edges)
        for edge, chunk in enumerate(chunks):
            element_edge[chunk] = 1 + n_relays + edge
        return cls(parents=parents, element_edge=element_edge,
                   link_bandwidth=bandwidth, link_latency=latency)

    # -- structure queries -----------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total node count, source included (dimensionless)."""
        return self.parents.shape[0]

    @property
    def n_elements(self) -> int:
        """Number of hosted elements (dimensionless)."""
        return self.element_edge.shape[0]

    @property
    def root_children(self) -> tuple[int, ...]:
        """Nodes directly below the source, in id order."""
        return tuple(np.flatnonzero(self.parents == SOURCE).tolist())

    def path_of_node(self, node: int) -> tuple[int, ...]:
        """The root-to-``node`` path, as uplink-owning node ids.

        Each entry identifies one hop (the node owning the uplink);
        the source itself never appears.
        """
        if not 0 <= node < self.n_nodes:
            raise ValidationError(
                f"node {node} outside [0, {self.n_nodes})")
        return self._paths[node]

    def path_of_element(self, element: int) -> tuple[int, ...]:
        """The root-to-edge hop path of ``element``'s host."""
        if not 0 <= element < self.n_elements:
            raise ValidationError(
                f"element {element} outside [0, {self.n_elements})")
        return self._paths[int(self.element_edge[element])]

    def path_latency(self, element: int) -> float:
        """Total one-way transit latency of the element's path.

        Returns:
            The summed hop latency, in period units.
        """
        path = self.path_of_element(element)
        return float(self.link_latency[list(path)].sum())

    def depth_of(self, node: int) -> int:
        """Hops between the source and ``node`` (dimensionless)."""
        return len(self.path_of_node(node))

    def descendant_elements(self, node: int) -> np.ndarray:
        """Boolean mask of elements hosted inside ``node``'s subtree.

        The source's subtree is every element.
        """
        if not 0 <= node < self.n_nodes:
            raise ValidationError(
                f"node {node} outside [0, {self.n_nodes})")
        if node == SOURCE:
            return np.ones(self.n_elements, dtype=bool)
        mask = np.zeros(self.n_elements, dtype=bool)
        for element in range(self.n_elements):
            if node in self._paths[int(self.element_edge[element])]:
                mask[element] = True
        return mask

    # -- shard maps -------------------------------------------------

    @property
    def shard_of(self) -> np.ndarray:
        """Element → breaker-shard map from subtree membership.

        One shard per edge cache (the finest subtree an element
        belongs to), contiguous in edge-node order — the natural
        granularity for the circuit breaker, since an edge's uplink
        fails as one unit.  Shape ``(n_elements,)``.
        """
        edges = np.unique(self.element_edge)
        remap = {int(edge): shard for shard, edge in
                 enumerate(edges.tolist())}
        return np.array([remap[int(edge)] for edge in
                         self.element_edge.tolist()], dtype=np.int64)

    @property
    def n_shards(self) -> int:
        """Shard count implied by :attr:`shard_of` (dimensionless)."""
        return int(np.unique(self.element_edge).shape[0])

    @property
    def subtree_of(self) -> np.ndarray:
        """Element → top-level-subtree index (the relay it lives under).

        Subtrees are indexed by the source's children in id order;
        shape ``(n_elements,)``.  This is the granularity degraded
        planning collapses outages at: a relay failure takes out its
        whole subtree.
        """
        children = self.root_children
        remap = {child: index for index, child in enumerate(children)}
        out = np.empty(self.n_elements, dtype=np.int64)
        for element in range(self.n_elements):
            top = self._paths[int(self.element_edge[element])][0]
            out[element] = remap[top]
        return out

    @property
    def n_subtrees(self) -> int:
        """Top-level subtree count (dimensionless)."""
        return len(self.root_children)

    def reachable_bandwidth(self,
                            unreachable_elements: np.ndarray) -> float:
        """Capacity still deliverable given an element outage mask.

        Sums the source-uplink capacity of every top-level subtree
        that still hosts at least one reachable element — bandwidth
        behind a fully-dead relay is lost, not transferable, which is
        what degraded replans must derate by.

        Args:
            unreachable_elements: Boolean mask, shape
                ``(n_elements,)``.

        Returns:
            Deliverable capacity in size units per period (``inf``
            when every surviving uplink is uncapped).
        """
        mask = np.asarray(unreachable_elements, dtype=bool)
        if mask.shape != (self.n_elements,):
            raise ValidationError(
                f"unreachable mask shape {mask.shape} does not match "
                f"{self.n_elements} elements")
        subtree = self.subtree_of
        total = 0.0
        for index, child in enumerate(self.root_children):
            members = subtree == index
            if members.any() and (~mask[members]).any():
                total += float(self.link_bandwidth[child])
        return total


class HopLedger:
    """Per-period bandwidth ledgers for every uplink of a topology.

    The hop-level analogue of :class:`~repro.faults.channel.
    SyncChannel`'s flat period ledger: a poll of an element must fit
    in *every* ledger on its root-to-edge path, and a transfer that
    ran charges them all.  Admission is all-or-nothing — a poll that
    would overdraw any hop is denied before touching the wire.

    Args:
        topology: The tree whose uplinks are metered.
        period_length: Clock length of one budget period, in the
            simulation's time units, > 0.
    """

    def __init__(self, topology: Topology,
                 period_length: float = 1.0) -> None:
        if period_length <= 0.0:
            raise ValidationError(
                f"period_length must be > 0, got {period_length}")
        self._topology = topology
        self._period_length = period_length
        self._period = 0
        self._spent = np.zeros(topology.n_nodes)
        self._transits = np.zeros(topology.n_nodes, dtype=np.int64)

    def _roll(self, time: float) -> None:
        period = int(time / self._period_length)
        if period > self._period:
            self._period = period
            self._spent[:] = 0.0

    def admits(self, element: int, size: float, time: float) -> int | None:
        """Whether a transfer of ``size`` fits every hop on the path.

        Args:
            element: Element being polled.
            size: Transfer size, in size units.
            time: Simulated clock time, in the simulation's time
                units (rolls the period ledgers forward).

        Returns:
            None when admitted, else the node id of the first
            saturated hop on the root-to-edge path.
        """
        self._roll(time)
        for node in self._topology.path_of_element(element):
            capacity = float(self._topology.link_bandwidth[node])
            if self._spent[node] + size > capacity:
                return node
        return None

    def charge(self, element: int, size: float) -> None:
        """Charge a transfer that ran against every hop on its path.

        Args:
            element: Element that was polled.
            size: Transfer size, in size units.
        """
        for node in self._topology.path_of_element(element):
            self._spent[node] += size
            self._transits[node] += 1

    def hop_spent(self) -> np.ndarray:
        """Bandwidth charged per hop this period, in size units."""
        return self._spent.copy()

    def hop_transit_counts(self) -> np.ndarray:
        """Transfers charged per hop over the ledger's lifetime
        (dimensionless counts)."""
        return self._transits.copy()
