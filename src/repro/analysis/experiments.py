"""Experiment runners: one function per table/figure of the paper.

Every runner is deterministic given its seed, takes paper-scale
defaults (scaled knobs are exposed so tests can run small), and
returns plain data (:class:`~repro.analysis.series.SweepResult` or
arrays) that the benchmark harness and CLI render.

Experiment index (see DESIGN.md for the full mapping):

========  ==========================================================
table1    Optimal sync frequencies for the 5-element toy example
figure1   Solution locus f(λ) per access probability (Equation 6)
figure2   Alignment-option workload shapes
figure3   PF vs θ: PF technique vs GF technique, three alignments
figure5   PF vs #partitions for the four partitioners + best_case
figure6   Partitioner sensitivity to θ (shuffled alignment)
figure7   The big case (Table 3 scale)
figure8   PF after k-means refinement iterations
figure9   PF vs wall time (cluster line + per-k iteration paths)
figure10  Optimal sync frequency & bandwidth under object sizes
figure11  FBA vs FFA intra-partition allocation
========  ==========================================================

Beyond the paper: :func:`imperfect_knowledge`, :func:`mirror_selection`
and :func:`policy_ablation` cover the future-work/robustness claims.
"""

from __future__ import annotations

import time
from functools import partial

import numpy as np

from repro.analysis.series import Series, SweepResult
from repro.core.allocation import AllocationPolicy
from repro.core.clustering import refine_partitions
from repro.core.freshener import (
    GeneralFreshener,
    PartitionedFreshener,
    PerceivedFreshener,
)
from repro.core.freshness import (
    FixedOrderPolicy,
    PoissonSyncPolicy,
    invert_marginal_gain,
)
from repro.core.metrics import perceived_freshness
from repro.core.partitioning import PartitioningStrategy, partition_catalog
from repro.core.solver import solve_core_problem, solve_weighted_problem
from repro.errors import ValidationError
from repro.parallel import parallel_map, seed_rng
from repro.workloads.alignment import Alignment
from repro.workloads.catalog import Catalog
from repro.workloads.distributions import (
    gamma_change_rates,
    pareto_sizes,
    zipf_probabilities,
)
from repro.workloads.presets import (
    BIG_SETUP,
    IDEAL_SETUP,
    TOY_BANDWIDTH,
    TOY_PROFILES,
    ExperimentSetup,
    build_catalog,
    toy_example_catalog,
)

__all__ = [
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "imperfect_knowledge",
    "mirror_selection",
    "policy_ablation",
]

#: The partitioners compared throughout §4, with the paper's labels.
_PARTITIONER_LABELS = {
    PartitioningStrategy.PF: "PF_PARTITIONING",
    PartitioningStrategy.P: "P_PARTITIONING",
    PartitioningStrategy.LAMBDA: "LAMBDA_PARTITIONING",
    PartitioningStrategy.P_OVER_LAMBDA: "P_OVER_LAMBDA_PARTITIONING",
}


def table1() -> dict[str, np.ndarray]:
    """Optimal sync frequencies for the §2.2.1 toy example (Table 1).

    Returns:
        ``{"change_rates": λ, "P1": f*, "P2": f*, "P3": f*}`` — the
        paper reports (b) 1.15/1.36/1.35/1.14/0.00,
        (c) 0.33/0.67/1.00/1.33/1.67 and (d) 1.68/1.83/1.49/0/0.
    """
    results: dict[str, np.ndarray] = {
        "change_rates": np.arange(1, 6, dtype=float)}
    for profile in sorted(TOY_PROFILES):
        catalog = toy_example_catalog(profile)
        solution = solve_core_problem(catalog, TOY_BANDWIDTH)
        results[profile] = solution.frequencies
    return results


def figure1(*, access_probabilities: tuple[float, ...] =
            (1.0 / 30.0, 1.0 / 15.0, 2.0 / 15.0),
            multiplier: float | None = None,
            rate_grid: np.ndarray | None = None) -> SweepResult:
    """Solution curves f(λ) per access probability (Figure 1).

    Every optimal allocation satisfies ``(p/λ)·g(λ/f) = μ`` (the
    paper's Equation 6), so for a fixed multiplier each access
    probability traces a locus of (λ, f) pairs.  Higher ``p`` lifts
    the whole curve — more bandwidth at every change rate — and each
    curve hits f = 0 at λ = p/μ, beyond which the element is not
    worth syncing.

    Args:
        access_probabilities: The p values to trace (paper uses the
            toy example's 1/30, 1/15, 2/15).
        multiplier: μ; defaults to the toy P2 problem's optimal μ so
            the curves pass through actual Table 1 solutions.
        rate_grid: λ grid (default 0.05..6).

    Returns:
        One curve per p; f is 0 where the element gets no bandwidth.
    """
    if multiplier is None:
        solution = solve_core_problem(toy_example_catalog("P2"),
                                      TOY_BANDWIDTH)
        multiplier = solution.multiplier
    if multiplier <= 0.0:
        raise ValidationError(f"multiplier must be > 0, got {multiplier}")
    grid = (np.linspace(0.05, 6.0, 120) if rate_grid is None
            else np.asarray(rate_grid, dtype=float))
    curves = []
    for p in access_probabilities:
        targets = multiplier * grid / p
        frequencies = np.zeros_like(grid)
        active = targets < 1.0
        if active.any():
            ratios = invert_marginal_gain(targets[active])
            frequencies[active] = grid[active] / ratios
        curves.append(Series(label=f"p={p:.4f}", x=grid, y=frequencies))
    return SweepResult(name="figure1", x_label="change rate (lambda)",
                       y_label="sync frequency (f)", series=tuple(curves),
                       notes={"multiplier": multiplier})


def figure2(*, setup: ExperimentSetup = IDEAL_SETUP,
            seed: int = 0) -> dict[str, SweepResult]:
    """The alignment options of Figure 2: workload shapes by page rank.

    Args:
        setup: Parameter preset for the workload.
        seed: Sampling seed.

    Returns:
        ``{"aligned": ..., "reverse": ...}`` — each sweep holds the
        access-frequency and change-frequency curves over page rank.
    """
    results = {}
    ranks = np.arange(1, setup.n_objects + 1, dtype=float)
    for alignment in (Alignment.ALIGNED, Alignment.REVERSE):
        catalog = build_catalog(setup, alignment=alignment, seed=seed)
        results[alignment.value] = SweepResult(
            name=f"figure2-{alignment.value}",
            x_label="page rank", y_label="frequency",
            series=(
                Series(label="access frequency", x=ranks,
                       y=catalog.access_probabilities
                       * setup.updates_per_period),
                Series(label="change frequency", x=ranks,
                       y=catalog.change_rates),
            ),
            notes={"alignment": alignment.value, "seed": seed},
        )
    return results


def _catalogs_for(setup: ExperimentSetup, alignment: Alignment | str,
                  theta: float, seeds: range) -> list[Catalog]:
    return [build_catalog(setup, alignment=alignment, seed=seed,
                          theta=theta) for seed in seeds]


def _figure3_point(spec: tuple[str, float], *, setup: ExperimentSetup,
                   n_seeds: int,
                   base_seed: int) -> tuple[float, float]:
    """Seed-averaged (PF, GF) scores at one (alignment, θ) point.

    Module-level so ``jobs>1`` can pickle it; pure given its spec, so
    results are jobs-invariant.
    """
    alignment, theta = spec
    catalogs = _catalogs_for(setup, alignment, float(theta),
                             range(base_seed, base_seed + n_seeds))
    pf_planner = PerceivedFreshener()
    gf_planner = GeneralFreshener()
    pf = float(np.mean([
        pf_planner.plan(catalog, setup.syncs_per_period)
        .perceived_freshness for catalog in catalogs]))
    gf = float(np.mean([
        gf_planner.plan(catalog, setup.syncs_per_period)
        .perceived_freshness for catalog in catalogs]))
    return pf, gf


def figure3(*, setup: ExperimentSetup = IDEAL_SETUP,
            thetas: np.ndarray | None = None, n_seeds: int = 3,
            base_seed: int = 0,
            jobs: int = 1) -> dict[str, SweepResult]:
    """PF vs θ for the PF and GF techniques, per alignment (Figure 3).

    The PF technique solves the Core Problem under the real profile;
    the GF technique (Cho/Garcia-Molina) solves it under a uniform
    profile.  Both are then *scored* by perceived freshness under the
    real profile.  The paper's headline shapes: the curves touch at
    θ = 0; PF dominates elsewhere; under *aligned* change/interest
    GF's perceived freshness collapses toward 0 at high skew.

    Args:
        setup: Parameter preset (Table 2).
        thetas: Skew grid (default 0.0..1.6 in steps of 0.2).
        n_seeds: Workload draws averaged per point.
        base_seed: First seed.
        jobs: Worker processes for the (alignment, θ) grid points
            (1 = serial, identical results — each point is pure).

    Returns:
        ``{"shuffled": ..., "aligned": ..., "reverse": ...}`` sweeps
        with PF_TECHNIQUE and GF_TECHNIQUE curves.
    """
    grid = (np.arange(0.0, 1.601, 0.2) if thetas is None
            else np.asarray(thetas, dtype=float))
    alignments = (Alignment.SHUFFLED, Alignment.ALIGNED,
                  Alignment.REVERSE)
    specs = [(alignment.value, float(theta))
             for alignment in alignments for theta in grid]
    point = partial(_figure3_point, setup=setup, n_seeds=n_seeds,
                    base_seed=base_seed)
    scores = parallel_map(point, specs, jobs=jobs,
                          label="parallel.figure3")
    results = {}
    for block, alignment in enumerate(alignments):
        start = block * grid.shape[0]
        pf_scores = np.array([pf for pf, _ in
                              scores[start:start + grid.shape[0]]])
        gf_scores = np.array([gf for _, gf in
                              scores[start:start + grid.shape[0]]])
        results[alignment.value] = SweepResult(
            name=f"figure3-{alignment.value}",
            x_label="zipf skew (theta)", y_label="perceived freshness",
            series=(
                Series(label="PF_TECHNIQUE", x=grid, y=pf_scores),
                Series(label="GF_TECHNIQUE", x=grid, y=gf_scores),
            ),
            notes={"alignment": alignment.value, "n_seeds": n_seeds},
        )
    return results


def _partitioner_sweep(catalog: Catalog, bandwidth: float,
                       partition_counts: np.ndarray,
                       strategies: dict[PartitioningStrategy, str],
                       ) -> list[Series]:
    curves = []
    for strategy, label in strategies.items():
        scores = np.zeros(partition_counts.shape[0])
        for index, k in enumerate(partition_counts):
            planner = PartitionedFreshener(int(k), strategy=strategy)
            scores[index] = planner.plan(catalog,
                                         bandwidth).perceived_freshness
        curves.append(Series(label=label,
                             x=partition_counts.astype(float), y=scores))
    return curves


def _figure5_curve(spec: tuple[str, PartitioningStrategy], *,
                   setup: ExperimentSetup, counts: np.ndarray,
                   theta: float, seed: int) -> np.ndarray:
    """One partitioner's PF-vs-k curve (module-level so it pickles)."""
    alignment, strategy = spec
    catalog = build_catalog(setup, alignment=alignment, seed=seed,
                            theta=theta)
    scores = np.zeros(counts.shape[0])
    for index, k in enumerate(counts):
        planner = PartitionedFreshener(int(k), strategy=strategy)
        scores[index] = planner.plan(
            catalog, setup.syncs_per_period).perceived_freshness
    return scores


def figure5(*, setup: ExperimentSetup = IDEAL_SETUP,
            partition_counts: np.ndarray | None = None,
            theta: float = 1.0, seed: int = 0,
            include_best_case: bool = True,
            jobs: int = 1) -> dict[str, SweepResult]:
    """PF vs #partitions for the four partitioners (Figure 5).

    Args:
        setup: Parameter preset (Table 2).
        partition_counts: k grid (default 10..500).
        theta: Access skew.
        seed: Workload seed.
        include_best_case: Add the exact optimum as a flat reference
            curve (the paper's ``best_case``).
        jobs: Worker processes, one task per (alignment, partitioner)
            curve (1 = serial, identical results — each curve is
            pure).

    Returns:
        One sweep per alignment.  Expected shapes: every curve rises
        toward best_case as k grows; under *shuffled* alignment
        PF-partitioning converges with the fewest partitions and
        λ-partitioning trails; under aligned/reverse the techniques
        nearly coincide.
    """
    counts = (np.array([10, 25, 50, 100, 150, 200, 300, 400, 500])
              if partition_counts is None
              else np.asarray(partition_counts, dtype=int))
    alignments = (Alignment.SHUFFLED, Alignment.ALIGNED,
                  Alignment.REVERSE)
    strategies = list(_PARTITIONER_LABELS)
    specs = [(alignment.value, strategy)
             for alignment in alignments for strategy in strategies]
    curve = partial(_figure5_curve, setup=setup, counts=counts,
                    theta=theta, seed=seed)
    curve_scores = parallel_map(curve, specs, jobs=jobs,
                                label="parallel.figure5")
    results = {}
    for block, alignment in enumerate(alignments):
        start = block * len(strategies)
        curves = [Series(label=_PARTITIONER_LABELS[strategy],
                         x=counts.astype(float),
                         y=curve_scores[start + offset])
                  for offset, strategy in enumerate(strategies)]
        if include_best_case:
            catalog = build_catalog(setup, alignment=alignment,
                                    seed=seed, theta=theta)
            best = solve_core_problem(catalog, setup.syncs_per_period)
            curves.append(Series(label="best_case",
                                 x=counts.astype(float),
                                 y=np.full(counts.shape[0],
                                           best.objective)))
        results[alignment.value] = SweepResult(
            name=f"figure5-{alignment.value}",
            x_label="num partitions", y_label="perceived freshness",
            series=tuple(curves),
            notes={"alignment": alignment.value, "theta": theta,
                   "seed": seed},
        )
    return results


def figure6(*, setup: ExperimentSetup = IDEAL_SETUP,
            thetas: np.ndarray | None = None, n_partitions: int = 50,
            seed: int = 0) -> SweepResult:
    """Partitioner sensitivity to θ under shuffled alignment (Figure 6).

    Args:
        setup: Parameter preset (Table 2).
        thetas: Skew grid (default 0.4..1.6).
        n_partitions: Fixed partition count k.
        seed: Workload seed.

    Returns:
        Four curves; expected shape: all rise with θ, λ-partitioning
        falls behind as skew grows (access probability dominates).
    """
    grid = (np.arange(0.4, 1.601, 0.2) if thetas is None
            else np.asarray(thetas, dtype=float))
    curves_data = {label: np.zeros_like(grid)
                   for label in _PARTITIONER_LABELS.values()}
    for index, theta in enumerate(grid):
        catalog = build_catalog(setup, alignment=Alignment.SHUFFLED,
                                seed=seed, theta=float(theta))
        for strategy, label in _PARTITIONER_LABELS.items():
            planner = PartitionedFreshener(n_partitions, strategy=strategy)
            curves_data[label][index] = planner.plan(
                catalog, setup.syncs_per_period).perceived_freshness
    series = tuple(Series(label=label, x=grid, y=values)
                   for label, values in curves_data.items())
    return SweepResult(name="figure6", x_label="theta (zipf skew)",
                       y_label="perceived freshness", series=series,
                       notes={"n_partitions": n_partitions, "seed": seed})


def figure7(*, setup: ExperimentSetup = BIG_SETUP,
            partition_counts: np.ndarray | None = None, seed: int = 0,
            include_best_case: bool = True) -> SweepResult:
    """The big case: Table 3 scale, shuffled alignment (Figure 7).

    The paper could not verify the ideal solution at this size (IMSL
    "runs for days"); the exact water-filling solver can, so the
    reference curve is included by default — a capability, not a
    deviation.

    Args:
        setup: Parameter preset (Table 3: N = 500 000).
        partition_counts: k grid (default 20..200).
        seed: Workload seed.
        include_best_case: Add the exact optimum reference.

    Returns:
        The sweep; expected shape: PF-partitioning wins and gains
        beyond ~100 partitions are marginal.
    """
    counts = (np.array([20, 40, 60, 80, 100, 120, 140, 160, 180, 200])
              if partition_counts is None
              else np.asarray(partition_counts, dtype=int))
    catalog = build_catalog(setup, alignment=Alignment.SHUFFLED, seed=seed)
    curves = _partitioner_sweep(catalog, setup.syncs_per_period, counts,
                                _PARTITIONER_LABELS)
    if include_best_case:
        best = solve_core_problem(catalog, setup.syncs_per_period)
        curves.append(Series(label="best_case", x=counts.astype(float),
                             y=np.full(counts.shape[0], best.objective)))
    return SweepResult(name="figure7", x_label="num partitions",
                       y_label="perceived freshness", series=tuple(curves),
                       notes={"n_objects": setup.n_objects, "seed": seed})


def figure8(*, setup: ExperimentSetup | None = None,
            partition_counts: np.ndarray | None = None,
            iteration_counts: tuple[int, ...] = (0, 1, 3, 5, 10),
            seed: int = 0) -> SweepResult:
    """PF improvement from k-means refinement (Figure 8).

    Starting from PF-partitioning, each curve fixes the number of
    k-means iterations and sweeps the partition count.

    Args:
        setup: Parameter preset; defaults to a 20 000-object variant
            of the Table 3 configuration (same per-object statistics)
            so the experiment runs in seconds.
        partition_counts: k grid (default 20..200).
        iteration_counts: The iteration budgets to trace.
        seed: Workload seed.

    Returns:
        One curve per iteration budget; expected shape: a few
        iterations lift the coarse-k end substantially.
    """
    chosen = setup if setup is not None else ExperimentSetup(
        n_objects=20_000, updates_per_period=40_000.0,
        syncs_per_period=10_000.0, theta=1.0, update_std_dev=2.0)
    counts = (np.array([20, 40, 60, 80, 100, 140, 200])
              if partition_counts is None
              else np.asarray(partition_counts, dtype=int))
    catalog = build_catalog(chosen, alignment=Alignment.SHUFFLED, seed=seed)
    max_iterations = max(iteration_counts)
    curves_data = {iterations: np.zeros(counts.shape[0])
                   for iterations in iteration_counts}
    for index, k in enumerate(counts):
        initial = partition_catalog(catalog, int(k),
                                    PartitioningStrategy.PF)
        steps = refine_partitions(catalog, chosen.syncs_per_period,
                                  initial, iterations=max_iterations)
        scores = {step.iterations: step.perceived_freshness
                  for step in steps}
        best_so_far = steps[0].perceived_freshness
        for iterations in iteration_counts:
            # k-means may converge early; carry the last known score.
            available = [scores[i] for i in scores if i <= iterations]
            best_so_far = available[-1] if available else best_so_far
            curves_data[iterations][index] = best_so_far
    series = tuple(Series(label=f"{iterations} iterations",
                          x=counts.astype(float), y=values)
                   for iterations, values in curves_data.items())
    return SweepResult(name="figure8", x_label="number of partitions",
                       y_label="perceived freshness", series=series,
                       notes={"n_objects": chosen.n_objects, "seed": seed})


def figure9(*, setup: ExperimentSetup | None = None,
            cluster_line_counts: np.ndarray | None = None,
            iteration_path_counts: tuple[int, ...] = (50, 150, 200),
            iteration_counts: tuple[int, ...] = (0, 1, 3, 5, 10),
            seed: int = 0, solver: str = "nlp") -> SweepResult:
    """PF vs wall-clock time (Figure 9).

    ``CLUSTER_LINE`` traces the 0-iteration result across partition
    counts; each ``<k> CLUSTERS`` path shows how successive k-means
    iterations trade time for freshness at a fixed k.  Times are
    measured on this machine — absolute seconds differ from the
    paper's 2002 hardware; the *shape* (cheap iterations beating
    expensive extra partitions) is the reproduced claim.

    Args:
        setup: Parameter preset; defaults to the same 20 000-object
            scaled Table 3 variant as :func:`figure8`.
        cluster_line_counts: Partition counts for the cluster line.
        iteration_path_counts: The fixed k values to trace paths for.
        iteration_counts: Iteration checkpoints along each path.
        seed: Workload seed.
        solver: ``"nlp"`` reproduces the paper's generic-solver cost
            model; ``"exact"`` uses water-filling.

    Returns:
        A sweep whose series have *time* on x (not a shared grid).
    """
    chosen = setup if setup is not None else ExperimentSetup(
        n_objects=20_000, updates_per_period=40_000.0,
        syncs_per_period=10_000.0, theta=1.0, update_std_dev=2.0)
    line_counts = (np.array([20, 50, 100, 150, 200, 300, 400])
                   if cluster_line_counts is None
                   else np.asarray(cluster_line_counts, dtype=int))
    catalog = build_catalog(chosen, alignment=Alignment.SHUFFLED, seed=seed)
    bandwidth = chosen.syncs_per_period

    def timed_plan(k: int, iterations: int) -> tuple[float, float]:
        start = time.perf_counter()
        planner = PartitionedFreshener(k, cluster_iterations=iterations,
                                       solver=solver)
        plan = planner.plan(catalog, bandwidth)
        elapsed = time.perf_counter() - start
        return elapsed, plan.perceived_freshness

    line_times = np.zeros(line_counts.shape[0])
    line_scores = np.zeros(line_counts.shape[0])
    for index, k in enumerate(line_counts):
        line_times[index], line_scores[index] = timed_plan(int(k), 0)
    curves = [Series(label="CLUSTER_LINE", x=line_times, y=line_scores)]

    for k in iteration_path_counts:
        times = np.zeros(len(iteration_counts))
        scores = np.zeros(len(iteration_counts))
        for index, iterations in enumerate(iteration_counts):
            times[index], scores[index] = timed_plan(int(k), iterations)
        curves.append(Series(label=f"{k} CLUSTERS", x=times, y=scores))
    return SweepResult(name="figure9", x_label="time (seconds)",
                       y_label="perceived freshness", series=tuple(curves),
                       notes={"n_objects": chosen.n_objects,
                              "solver": solver, "seed": seed})


def figure10(*, n_objects: int = 500, bandwidth: float = 250.0,
             mean_change_rate: float = 2.0, update_std_dev: float = 1.0,
             pareto_shape: float = 1.1, seed: int = 0,
             ) -> dict[str, object]:
    """Optimal sync resources under object sizes (Figure 10).

    Uniform access (θ = 0); change rate and size both *aligned*
    (object 0 changes fastest and is largest).  Compares the uniform-
    size optimum against the Pareto-size optimum, reporting per-object
    sync frequency (10a) and sync bandwidth (10b), plus the §5.3
    headline numbers: the schedule produced *ignoring* object size
    achieves PF 0.312 while the size-aware schedule achieves 0.586
    (paper's instance) — because a heavy-tailed size distribution
    lets many small objects be synced cheaply.  Both readings of
    "ignoring size" are reported: the uniform-world optimum scored in
    its own world (``pf_uniform_world``) and the size-blind schedule
    rescaled onto the true budget and scored in the sized world
    (``pf_blind_in_sized_world``).

    Args:
        n_objects: Database size.
        bandwidth: Bandwidth budget per period.
        mean_change_rate: Mean updates per object per period.
        update_std_dev: Gamma standard deviation.
        pareto_shape: Size tail index (1.1 in the paper).
        seed: Sampling seed.

    Returns:
        ``{"frequency": SweepResult, "bandwidth": SweepResult,
        "pf_uniform_world": float, "pf_size_aware": float,
        "pf_blind_in_sized_world": float}``.
    """
    rng = seed_rng(seed)
    probabilities = zipf_probabilities(n_objects, 0.0)
    rates = np.sort(gamma_change_rates(
        n_objects, mean=mean_change_rate, std_dev=update_std_dev,
        rng=rng))[::-1].copy()
    sizes = np.sort(pareto_sizes(n_objects, shape=pareto_shape, mean=1.0,
                                 rng=rng))[::-1].copy()
    uniform_catalog = Catalog(access_probabilities=probabilities,
                              change_rates=rates)
    sized_catalog = uniform_catalog.with_sizes(sizes)

    uniform_solution = solve_core_problem(uniform_catalog, bandwidth)
    sized_solution = solve_core_problem(sized_catalog, bandwidth)

    objects = np.arange(n_objects, dtype=float)
    frequency = SweepResult(
        name="figure10a", x_label="object", y_label="sync frequency",
        series=(
            Series(label="Uniform Size Distribution", x=objects,
                   y=uniform_solution.frequencies),
            Series(label=f"Pareto_Shape (a) = {pareto_shape}", x=objects,
                   y=sized_solution.frequencies),
        ),
        notes={"seed": seed})
    bandwidth_sweep = SweepResult(
        name="figure10b", x_label="object", y_label="sync bandwidth",
        series=(
            Series(label="Uniform Size Distribution", x=objects,
                   y=uniform_solution.frequencies),
            Series(label=f"Pareto_Shape (a) = {pareto_shape}", x=objects,
                   y=sized_solution.frequencies * sizes),
        ),
        notes={"seed": seed})

    # The §5.3 comparison: run the size-blind frequencies in the sized
    # world, rescaled onto the true bandwidth budget.
    blind = uniform_solution.frequencies
    blind_cost = float(sizes @ blind)
    blind_feasible = blind * (bandwidth / blind_cost) if blind_cost > 0 \
        else blind
    pf_blind = perceived_freshness(sized_catalog, blind_feasible)
    return {
        "frequency": frequency,
        "bandwidth": bandwidth_sweep,
        "pf_uniform_world": float(uniform_solution.objective),
        "pf_size_aware": float(sized_solution.objective),
        "pf_blind_in_sized_world": float(pf_blind),
    }


def figure11(*, setup: ExperimentSetup = IDEAL_SETUP,
             partition_counts: np.ndarray | None = None,
             pareto_shape: float = 1.1, theta: float = 1.0,
             seed: int = 0) -> SweepResult:
    """FBA vs FFA intra-partition allocation (Figure 11).

    Change rate and size alignments are *reversed* (object 0 changes
    often and is small — the stock-quote-vs-movie scenario) and
    access is shuffled.  PF/s-partitioning supplies the partitions.

    Args:
        setup: Parameter preset.
        partition_counts: k grid (default 10..250).
        pareto_shape: Size tail index.
        theta: Access skew.
        seed: Workload seed.

    Returns:
        Two curves; expected shape: FBA ≥ FFA everywhere, converging
        with fewer partitions.
    """
    counts = (np.array([10, 25, 50, 75, 100, 150, 200, 250])
              if partition_counts is None
              else np.asarray(partition_counts, dtype=int))
    rng = seed_rng(seed)
    probabilities = zipf_probabilities(setup.n_objects, theta)
    rates = rng.permutation(np.sort(gamma_change_rates(
        setup.n_objects, mean=setup.mean_change_rate,
        std_dev=setup.update_std_dev, rng=rng)))
    # Sizes reverse-aligned with change rate: fast-changing objects
    # are small.
    size_samples = np.sort(pareto_sizes(setup.n_objects,
                                        shape=pareto_shape, mean=1.0,
                                        rng=rng))
    rate_order = np.argsort(-rates, kind="stable")
    sizes = np.empty(setup.n_objects)
    sizes[rate_order] = size_samples
    catalog = Catalog(access_probabilities=probabilities,
                      change_rates=rates, sizes=sizes)

    curves = []
    for policy, label in ((AllocationPolicy.FIXED_BANDWIDTH,
                           "FIXED BANDWIDTH (FBA)"),
                          (AllocationPolicy.FIXED_FREQUENCY,
                           "FIXED FREQUENCY (FFA)")):
        scores = np.zeros(counts.shape[0])
        for index, k in enumerate(counts):
            planner = PartitionedFreshener(
                int(k), strategy=PartitioningStrategy.PF_OVER_SIZE,
                allocation=policy)
            scores[index] = planner.plan(
                catalog, setup.syncs_per_period).perceived_freshness
        curves.append(Series(label=label, x=counts.astype(float),
                             y=scores))
    return SweepResult(name="figure11", x_label="number of partitions",
                       y_label="perceived freshness", series=tuple(curves),
                       notes={"theta": theta, "seed": seed,
                              "pareto_shape": pareto_shape})


def imperfect_knowledge(*, setup: ExperimentSetup = IDEAL_SETUP,
                        noise_levels: np.ndarray | None = None,
                        theta: float = 1.0, n_seeds: int = 3,
                        base_seed: int = 0) -> SweepResult:
    """PF robustness to noisy change-rate knowledge (§6 claim).

    The scheduler plans against rates corrupted by lognormal noise
    (σ on the log scale = the noise level) and is scored against the
    true rates.  The paper argues the approach survives imperfect λ
    knowledge because access probability dominates at high skew.

    Args:
        setup: Parameter preset.
        noise_levels: Log-scale noise levels (default 0..1.5).
        theta: Access skew.
        n_seeds: Workload draws averaged per point.
        base_seed: First seed.

    Returns:
        PF-with-noisy-rates and the clean-knowledge optimum.
    """
    levels = (np.array([0.0, 0.25, 0.5, 0.75, 1.0, 1.5])
              if noise_levels is None
              else np.asarray(noise_levels, dtype=float))
    planner = PerceivedFreshener()
    noisy_scores = np.zeros_like(levels)
    clean_scores = np.zeros_like(levels)
    for index, level in enumerate(levels):
        noisy_values = []
        clean_values = []
        for seed in range(base_seed, base_seed + n_seeds):
            catalog = build_catalog(setup, alignment=Alignment.SHUFFLED,
                                    seed=seed, theta=theta)
            rng = seed_rng(seed + 10_000)
            noise = rng.lognormal(0.0, float(level),
                                  size=catalog.n_elements)
            believed = catalog.with_change_rates(
                catalog.change_rates * noise)
            plan = planner.plan(believed, setup.syncs_per_period)
            noisy_values.append(perceived_freshness(catalog,
                                                    plan.frequencies))
            clean_values.append(planner.plan(
                catalog, setup.syncs_per_period).perceived_freshness)
        noisy_scores[index] = float(np.mean(noisy_values))
        clean_scores[index] = float(np.mean(clean_values))
    return SweepResult(
        name="imperfect-knowledge", x_label="rate noise (log sigma)",
        y_label="perceived freshness",
        series=(Series(label="noisy rates", x=levels, y=noisy_scores),
                Series(label="perfect knowledge", x=levels,
                       y=clean_scores)),
        notes={"theta": theta, "n_seeds": n_seeds})


def mirror_selection(*, setup: ExperimentSetup = IDEAL_SETUP,
                     capacities: np.ndarray | None = None,
                     theta: float = 1.0, seed: int = 0) -> SweepResult:
    """Profile-driven mirror selection (§7 future work).

    When the mirror can hold only C of the N objects, accesses to
    unmirrored objects always miss.  Greedy selection by achievable
    interest (descending p) is compared with a popularity-blind
    random selection; both then get an optimal PF schedule over the
    chosen subset.

    Args:
        setup: Parameter preset.
        capacities: Mirror sizes to sweep (default fractions of N).
        theta: Access skew.
        seed: Workload seed.

    Returns:
        Scores counting unmirrored accesses as stale.
    """
    from repro.core.selection import SelectionStrategy, plan_selected_mirror

    catalog = build_catalog(setup, alignment=Alignment.SHUFFLED,
                            seed=seed, theta=theta)
    n = catalog.n_elements
    sizes = (np.array([n // 10, n // 4, n // 2, (3 * n) // 4, n])
             if capacities is None
             else np.asarray(capacities, dtype=int))
    rng = seed_rng(seed + 1)
    greedy_scores = np.zeros(sizes.shape[0])
    random_scores = np.zeros(sizes.shape[0])
    for index, capacity in enumerate(sizes):
        greedy_scores[index] = plan_selected_mirror(
            catalog, float(capacity), setup.syncs_per_period,
            strategy=SelectionStrategy.INTEREST).perceived_freshness
        random_scores[index] = plan_selected_mirror(
            catalog, float(capacity), setup.syncs_per_period,
            strategy=SelectionStrategy.RANDOM,
            rng=rng).perceived_freshness
    return SweepResult(
        name="mirror-selection", x_label="mirror capacity (objects)",
        y_label="perceived freshness",
        series=(Series(label="greedy by interest", x=sizes.astype(float),
                       y=greedy_scores),
                Series(label="random selection", x=sizes.astype(float),
                       y=random_scores)),
        notes={"theta": theta, "seed": seed})


def policy_ablation(*, setup: ExperimentSetup = IDEAL_SETUP,
                    thetas: np.ndarray | None = None,
                    seed: int = 0) -> SweepResult:
    """Fixed-Order vs memoryless-sync freshness models (ablation).

    Cho & Garcia-Molina prove fixed-interval syncing dominates random
    (Poisson) syncing; this ablation quantifies the gap for optimal
    PF schedules under each model.

    Args:
        setup: Parameter preset.
        thetas: Skew grid.
        seed: Workload seed.

    Returns:
        Optimal PF per model across θ.
    """
    grid = (np.arange(0.0, 1.601, 0.4) if thetas is None
            else np.asarray(thetas, dtype=float))
    models = {"fixed-order": FixedOrderPolicy(),
              "poisson-sync": PoissonSyncPolicy()}
    curves_data = {name: np.zeros_like(grid) for name in models}
    for index, theta in enumerate(grid):
        catalog = build_catalog(setup, alignment=Alignment.SHUFFLED,
                                seed=seed, theta=float(theta))
        for name, model in models.items():
            solution = solve_weighted_problem(
                catalog.access_probabilities, catalog.change_rates,
                catalog.sizes, setup.syncs_per_period, model=model)
            curves_data[name][index] = solution.objective
    series = tuple(Series(label=name, x=grid, y=values)
                   for name, values in curves_data.items())
    return SweepResult(name="policy-ablation", x_label="theta",
                       y_label="optimal perceived freshness",
                       series=series, notes={"seed": seed})
