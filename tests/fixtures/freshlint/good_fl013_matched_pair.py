"""FL013 fixture: paired kernel matches its reference draw-for-draw."""


# seedflow: pair=reference_replay
def kernel_replay(tape, rng):
    noise = rng.random(len(tape))
    scale = rng.normal()
    return float(noise.sum() * scale)


def reference_replay(tape, rng):
    total = 0.0
    for item in tape:
        total += rng.random()
        if item > 0:
            total *= rng.normal()  # conditional on the reference side
    return total
