"""Figure 5 — comparing the partitioning techniques (Table 2 scale).

Paper claims reproduced as assertions:

* every technique approaches the ideal (best_case) as k grows;
* under *shuffled-change* alignment λ-partitioning clearly trails the
  access-aware sorts;
* under aligned/reverse alignment the four techniques nearly coincide.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure5
from repro.analysis.tables import format_sweep


def test_figure5(benchmark, report):
    counts = np.array([10, 25, 50, 100, 200, 350, 500])
    results = benchmark.pedantic(
        lambda: figure5(partition_counts=counts), rounds=1, iterations=1)

    blocks = []
    for alignment, sweep in results.items():
        best = sweep.get("best_case").y
        for label in sweep.labels:
            if label == "best_case":
                continue
            y = sweep.get(label).y
            assert (y <= best + 1e-8).all()
            # Convergence to the ideal at k = N.
            assert y[-1] >= best[-1] - 0.01
        blocks.append(format_sweep(sweep))

    shuffled = results["shuffled"]
    lam = shuffled.get("LAMBDA_PARTITIONING").y
    pf = shuffled.get("PF_PARTITIONING").y
    assert pf[2] > lam[2] + 0.05  # λ-sort trails at moderate k

    for alignment in ("aligned", "reverse"):
        sweep = results[alignment]
        pf = sweep.get("PF_PARTITIONING").y
        p_only = sweep.get("P_PARTITIONING").y
        lam = sweep.get("LAMBDA_PARTITIONING").y
        assert np.allclose(pf, p_only, atol=0.02)
        assert np.allclose(pf, lam, atol=0.02)

    report("figure05", "\n\n".join(blocks))
