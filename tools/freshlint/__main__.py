"""``python -m freshlint`` entry point.

From the repository root::

    PYTHONPATH=tools python -m freshlint src/ examples/ benchmarks/
"""

from __future__ import annotations

import sys

from freshlint.cli import main

sys.exit(main())
