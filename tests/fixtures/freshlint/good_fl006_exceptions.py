"""FL006-clean error handling: typed, observable outcomes."""


def careful_solve(problem, fallback):
    try:
        return problem.solve()
    except ValueError as error:
        raise RuntimeError("solve failed on malformed input") from error


def with_fallback(problem, fallback):
    try:
        return problem.solve()
    except ArithmeticError:
        return fallback
