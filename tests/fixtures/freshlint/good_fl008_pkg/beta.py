"""Back edges only via TYPE_CHECKING and function-scope imports."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotations only: no import at runtime
    from good_fl008_pkg import alpha

__all__ = ["identity", "quadruple"]


def identity(value: float) -> float:
    """``value`` unchanged (dimensionless)."""
    return value


def quadruple(value: float) -> float:
    """Four times ``value`` (dimensionless)."""
    from good_fl008_pkg import alpha  # deferred: breaks the cycle

    return alpha.double(value) * 2.0
