"""Seeded FL007 violation: print in library code."""


def solve(problem):
    print("solving", problem)   # FL007
    return problem
