"""FL005-clean numerics: parameters stay caller-owned."""

import numpy as np


def clamp_frequencies(frequencies, ceiling):
    """Clamp sync frequencies (in syncs per period) to ``ceiling``."""
    return np.minimum(frequencies, ceiling)


def normalize(weights):
    weights = np.array(weights, dtype=float)   # real copy launders
    weights /= weights.sum()
    return weights


def sorted_labels(labels):
    labels = labels.copy()
    labels.sort()
    return labels


def accumulate(totals, indices, values):
    totals = totals.copy()
    np.add.at(totals, indices, values)
    return totals
