"""Tests for the sensitivity/ablation experiment runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sensitivity
from repro.core.freshener import GeneralFreshener, PerceivedFreshener
from repro.core.partitioning import PartitioningStrategy, partition_catalog
from repro.core.representatives import build_representatives
from repro.errors import ValidationError
from repro.obs import registry as obs
from repro.workloads.alignment import Alignment
from repro.workloads.presets import ExperimentSetup, build_catalog

TINY = ExperimentSetup(n_objects=80, updates_per_period=160.0,
                       syncs_per_period=40.0, theta=1.0,
                       update_std_dev=1.0)
TINY_SPREAD = ExperimentSetup(n_objects=120, updates_per_period=240.0,
                              syncs_per_period=60.0, theta=1.0,
                              update_std_dev=2.0)


class TestBandwidthSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sensitivity.bandwidth_sensitivity(
            setup=TINY, ratios=np.array([0.05, 0.25, 1.0, 3.0]))

    def test_both_improve_with_bandwidth(self, sweep):
        for label in ("PF_TECHNIQUE", "GF_TECHNIQUE"):
            y = sweep.get(label).y
            assert (np.diff(y) > 0.0).all()

    def test_advantage_shrinks_at_saturation(self, sweep):
        advantage = sweep.get("PF_ADVANTAGE").y
        assert advantage[-1] < advantage.max()
        assert (advantage >= -1e-9).all()

    def test_warm_start_reduces_bracket_expansions(self):
        """Adjacent sweep points share a warm μ bracket, so the sweep
        must spend fewer cold geometric bracket expansions than
        planning every point from scratch (the satellite claim)."""
        ratios = np.array([0.1, 0.15, 0.25, 0.4, 0.6, 1.0])
        with obs.telemetry() as registry:
            warm_sweep = sensitivity.bandwidth_sensitivity(
                setup=TINY, ratios=ratios)
        warm = registry.counters.get("waterfill.bracket_expansions",
                                     0.0)
        catalog = build_catalog(TINY, alignment=Alignment.SHUFFLED,
                                seed=0)
        cold_pf = np.zeros_like(ratios)
        cold_gf = np.zeros_like(ratios)
        with obs.telemetry() as registry:
            for index, ratio in enumerate(ratios):
                bandwidth = float(ratio) * TINY.updates_per_period
                cold_pf[index] = PerceivedFreshener().plan(
                    catalog, bandwidth).perceived_freshness
                cold_gf[index] = GeneralFreshener().plan(
                    catalog, bandwidth).perceived_freshness
        cold = registry.counters.get("waterfill.bracket_expansions",
                                     0.0)
        assert warm < cold
        # Warm starting is a speedup, not a different answer.
        np.testing.assert_allclose(warm_sweep.get("PF_TECHNIQUE").y,
                                   cold_pf, rtol=1e-9)
        np.testing.assert_allclose(warm_sweep.get("GF_TECHNIQUE").y,
                                   cold_gf, rtol=1e-9)


class TestDispersionSensitivity:
    def test_dispersion_helps_the_optimizer(self):
        sweep = sensitivity.dispersion_sensitivity(
            setup=TINY, std_devs=np.array([0.25, 1.0, 4.0]))
        pf = sweep.get("PF_TECHNIQUE").y
        assert pf[-1] > pf[0]

    def test_pf_at_least_gf(self):
        sweep = sensitivity.dispersion_sensitivity(
            setup=TINY, std_devs=np.array([0.5, 2.0]))
        assert (sweep.get("PF_TECHNIQUE").y
                >= sweep.get("GF_TECHNIQUE").y - 1e-9).all()


class TestScaleSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sensitivity.scale_sensitivity(
            n_objects=np.array([200, 800, 3200]))

    def test_optimal_pf_rises_and_flattens(self, sweep):
        """Zipf profiles are not scale-free: bigger catalogs expose
        more exploitable skew, with diminishing increments."""
        optimal = sweep.get("optimal").y
        assert (np.diff(optimal) > 0.0).all()
        increments = np.diff(optimal)
        assert increments[-1] < increments[0]

    def test_heuristic_gap_grows_at_fixed_k(self, sweep):
        """Fixed k over growing N means coarser partitions: the gap
        to optimal widens — scale the partition count with N."""
        gap = sweep.get("optimal").y - sweep.get("heuristic k=100").y
        assert (gap >= -1e-8).all()
        assert gap[-1] > gap[0]


class TestRepresentativeAblation:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sensitivity.representative_ablation(
            setup=TINY_SPREAD, partition_counts=np.array([5, 15, 40]))

    def test_all_statistics_below_best_case(self, sweep):
        best = sweep.get("best_case").y
        for label in ("mean", "median", "interest-weighted"):
            assert (sweep.get(label).y <= best + 1e-8).all()

    def test_all_statistics_improve_with_partitions(self, sweep):
        for label in ("mean", "median", "interest-weighted"):
            y = sweep.get(label).y
            assert y[-1] >= y[0] - 1e-6

    def test_mean_competitive(self, sweep):
        """The paper's choice should not lose badly to alternatives."""
        mean = sweep.get("mean").y
        for label in ("median", "interest-weighted"):
            assert (mean >= sweep.get(label).y - 0.05).all()


class TestRepresentativeStatisticUnit:
    def test_median_statistic_computes_medians(self, rng):
        from tests.conftest import random_catalog
        catalog = random_catalog(rng, 30)
        assignment = partition_catalog(catalog, 3,
                                       PartitioningStrategy.PF)
        problem = build_representatives(catalog, assignment,
                                        statistic="median")
        for partition in range(3):
            members = assignment.labels == partition
            assert problem.mean_change_rates[partition] == \
                pytest.approx(np.median(
                    catalog.change_rates[members]))

    def test_interest_weighted_statistic(self, rng):
        from tests.conftest import random_catalog
        catalog = random_catalog(rng, 20)
        assignment = partition_catalog(catalog, 2,
                                       PartitioningStrategy.P)
        problem = build_representatives(catalog, assignment,
                                        statistic="interest-weighted")
        members = assignment.labels == 0
        p = catalog.access_probabilities[members]
        lam = catalog.change_rates[members]
        assert problem.mean_change_rates[0] == pytest.approx(
            float((p * lam).sum() / p.sum()))
        # p̄ stays the plain mean (preserving total interest).
        assert problem.mean_probabilities[0] == pytest.approx(
            float(p.mean()))

    def test_unknown_statistic_rejected(self, small_catalog):
        assignment = partition_catalog(small_catalog, 2,
                                       PartitioningStrategy.PF)
        with pytest.raises(ValidationError):
            build_representatives(small_catalog, assignment,
                                  statistic="mode")


class TestAdaptiveConvergence:
    def test_converges_between_blind_and_oracle(self):
        sweep = sensitivity.adaptive_convergence(
            setup=TINY, n_periods=8, request_rate=1500.0)
        adaptive = sweep.get("adaptive manager").y
        oracle = sweep.get("oracle").y[0]
        blind = sweep.get("profile-blind").y[0]
        assert (adaptive <= oracle + 1e-9).all()
        assert adaptive[-1] > blind
        assert adaptive[-1] > 0.85 * oracle
        assert sweep.notes["replans"] >= 1
