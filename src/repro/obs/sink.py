"""freshsink transports: stream telemetry to statsd or OTLP endpoints.

The exporters in :mod:`repro.obs.export` are after-the-fact files; a
*sink* ships the same telemetry to a live collector while the run is
still going.  Two transports are built in:

* :class:`StatsdSink` — the statsd UDP line protocol
  (``repro.sim.syncs:42|c``), one datagram per ~1400 bytes of lines;
* :class:`OtlpHttpSink` — OTLP/HTTP JSON metrics
  (``resourceMetrics`` envelopes POSTed to ``/v1/metrics``).

Both share the :class:`Sink` base machinery and its **boundary-code
discipline** — a sink must never raise or block into the solver/sim
paths that feed it:

* the in-memory buffer is bounded: past ``buffer_limit`` pending
  items, new offers are *dropped* and counted into the
  ``obs.sink.dropped`` counter (graceful degradation, exactly like
  the event tape's ``obs.dropped_events``);
* flushes are driven by the caller's own emit points (no threads, no
  ``time.sleep`` — FL010): each offer checks whether
  ``flush_interval_s`` has elapsed on the monotonic clock and flushes
  inline when due;
* a transport failure (any :class:`OSError` — sockets and
  ``urllib`` errors alike) keeps the batch buffered and arms a
  *decorrelated-jitter* deadline: flushes before the deadline return
  immediately, so a dead endpoint degrades to cheap no-ops instead
  of a retry storm.  Jitter comes from an injected seeded
  ``random.Random`` so backoff sequences replay deterministically.

Wall-clock use (the OTLP timestamp, the UDP socket) is legal here:
sinks are boundary code, outside the clock-disciplined solver/sim
globs freshlint FL009 polices.

Attach a sink to the active registry and it sees every tape event::

    sink = parse_sink_url("statsd://127.0.0.1:8125")
    obs.get_registry().sinks.append(sink)
    ...run...
    sink.emit_registry(obs.get_registry())   # final scalar snapshot
    sink.close()
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.request
from typing import Any, Dict, List, Tuple
from urllib.parse import urlsplit

from repro.obs.registry import MetricsRegistry, counter_add

__all__ = [
    "OtlpHttpSink",
    "Sink",
    "StatsdSink",
    "parse_sink_url",
]

#: Default cap on buffered-but-unsent items per sink.
DEFAULT_BUFFER_LIMIT = 2048

#: Default seconds between caller-driven flushes.
DEFAULT_FLUSH_INTERVAL_S = 1.0

_METRIC_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.")


def _metric_name(name: str) -> str:
    """Sanitize a dotted metric name for the wire."""
    cleaned = "".join(ch if ch in _METRIC_CHARS else "_"
                      for ch in name)
    return f"repro.{cleaned}"


class Sink:
    """Shared buffering/flush/retry machinery for streaming sinks.

    Subclasses implement :meth:`_render_event`,
    :meth:`_render_counter`, :meth:`_render_gauge` (producing
    buffered wire items) and :meth:`_send` (shipping one batch; any
    :class:`OSError` marks a transport failure).

    Args:
        buffer_limit: Max pending wire items; overflow drops and
            counts into ``obs.sink.dropped``.
        flush_interval_s: Seconds of monotonic clock between
            caller-driven flushes.
        backoff_base_s: First retry delay after a transport failure,
            in seconds.
        backoff_cap_s: Upper bound on any retry delay, in seconds.
        jitter_rng: Seeded generator for the decorrelated-jitter
            retry delays (fresh ``random.Random(0)`` by default, so
            backoff sequences are reproducible).
        clock: Monotonic clock used for flush/retry scheduling
            (injectable for tests), in seconds.
    """

    def __init__(self, *, buffer_limit: int = DEFAULT_BUFFER_LIMIT,
                 flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
                 backoff_base_s: float = 0.25,
                 backoff_cap_s: float = 30.0,
                 jitter_rng: random.Random | None = None,
                 clock=time.perf_counter) -> None:
        self._buffer: List[Any] = []
        self._buffer_limit = int(buffer_limit)
        self._flush_interval = float(flush_interval_s)
        self._backoff_base = float(backoff_base_s)
        self._backoff_cap = float(backoff_cap_s)
        self._jitter = (jitter_rng if jitter_rng is not None
                        else random.Random(0))
        self._clock = clock
        self._last_flush = float(clock())
        self._retry_at = 0.0
        self._delay = 0.0
        self._last_counters: Dict[str, float] = {}
        self.dropped = 0
        self.sent = 0
        self.send_errors = 0
        self.closed = False

    # -- what callers and the registry hook feed --------------------

    def offer_event(self, record: Dict[str, Any]) -> None:
        """Buffer one tape event (called per event by the registry).

        Never raises and never blocks past a bounded transport
        timeout: overflow drops, transport failures arm the retry
        deadline.
        """
        if self.closed:
            return
        item = self._render_event(record)
        if item is not None:
            self._push(item)
        self._maybe_flush()

    def emit_registry(self, registry: MetricsRegistry) -> None:
        """Buffer a scalar snapshot of a registry's counters/gauges.

        Counters ship as *deltas* since this sink's previous
        snapshot (statsd counter semantics; the OTLP sink
        re-accumulates them into its cumulative sums), gauges as
        their current values.
        """
        if self.closed:
            return
        for name in sorted(registry.counters):
            value = registry.counters[name]
            delta = value - self._last_counters.get(name, 0.0)
            if delta > 0.0:
                self._push(self._render_counter(name, delta))
                self._last_counters[name] = value
        for name in sorted(registry.gauges):
            self._push(self._render_gauge(name,
                                          registry.gauges[name]))
        self._maybe_flush()

    def flush(self, *, ignore_deadline: bool = False) -> int:
        """Try to ship the buffered batch now.

        Args:
            ignore_deadline: Ship even while a retry deadline is
                armed (used by :meth:`close` for the final attempt).

        Returns:
            Number of wire items shipped (0 when empty, backing off,
            or the transport failed again).
        """
        self._last_flush = float(self._clock())
        if not self._buffer or self.closed:
            return 0
        if not ignore_deadline and self._last_flush < self._retry_at:
            return 0
        batch = self._buffer
        try:
            self._send(batch)
        except OSError:
            self.send_errors += 1
            counter_add("obs.sink.errors")
            self._arm_retry()
            return 0
        self._buffer = []
        self._delay = 0.0
        self._retry_at = 0.0
        self.sent += len(batch)
        counter_add("obs.sink.sent", len(batch))
        return len(batch)

    def close(self) -> None:
        """Final flush attempt, then release the transport."""
        if self.closed:
            return
        self.flush(ignore_deadline=True)
        self.closed = True
        self._close_transport()

    # -- internals ---------------------------------------------------

    def _push(self, item: Any) -> None:
        if len(self._buffer) >= self._buffer_limit:
            self.dropped += 1
            counter_add("obs.sink.dropped")
            return
        self._buffer.append(item)

    def _maybe_flush(self) -> None:
        if float(self._clock()) - self._last_flush \
                >= self._flush_interval:
            self.flush()

    def _arm_retry(self) -> None:
        # Decorrelated jitter (the repro.faults.retry shape): each
        # delay is uniform on [base, 3 * previous], capped — spreads
        # reconnect attempts instead of herding them.
        anchor = max(3.0 * self._delay, self._backoff_base)
        self._delay = min(
            self._jitter.uniform(self._backoff_base, anchor),
            self._backoff_cap)
        self._retry_at = float(self._clock()) + self._delay

    # -- subclass protocol -------------------------------------------

    def _render_event(self, record: Dict[str, Any]) -> Any:
        """Wire item for one tape event (None = skip)."""
        raise NotImplementedError

    def _render_counter(self, name: str, delta: float) -> Any:
        """Wire item for one counter delta."""
        raise NotImplementedError

    def _render_gauge(self, name: str, value: float) -> Any:
        """Wire item for one gauge value."""
        raise NotImplementedError

    def _send(self, batch: List[Any]) -> None:
        """Ship one batch; raise :class:`OSError` on failure."""
        raise NotImplementedError

    def _close_transport(self) -> None:
        """Release transport resources (sockets)."""


class StatsdSink(Sink):
    """statsd UDP line-protocol sink.

    Buffered items are protocol lines (``repro.sim.syncs:3|c``);
    a flush joins them into ~1400-byte datagrams.  UDP never blocks:
    the socket is non-blocking, and a full OS buffer counts as a
    transport failure like any other.

    Args:
        host: Collector hostname or address.
        port: Collector UDP port.
        **kwargs: Base-class buffering/retry options.
    """

    def __init__(self, host: str, port: int, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._address = (host, int(port))
        self._socket: socket.socket | None = None

    def _render_event(self, record: Dict[str, Any]) -> str:
        kind = str(record.get("kind", "unknown")).replace(".", "_")
        return f"{_metric_name(f'events.{kind}')}:1|c"

    def _render_counter(self, name: str, delta: float) -> str:
        return f"{_metric_name(name)}:{delta:g}|c"

    def _render_gauge(self, name: str, value: float) -> str:
        return f"{_metric_name(name)}:{value:g}|g"

    def _send(self, batch: List[str]) -> None:
        if self._socket is None:
            self._socket = socket.socket(socket.AF_INET,
                                         socket.SOCK_DGRAM)
            self._socket.setblocking(False)
        datagram: List[str] = []
        length = 0
        for line in batch:
            if datagram and length + len(line) + 1 > 1400:
                self._socket.sendto(
                    "\n".join(datagram).encode("utf-8"),
                    self._address)
                datagram = []
                length = 0
            datagram.append(line)
            length += len(line) + 1
        if datagram:
            self._socket.sendto("\n".join(datagram).encode("utf-8"),
                                self._address)

    def _close_transport(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None


class OtlpHttpSink(Sink):
    """OTLP/HTTP JSON metrics sink.

    Buffered items are ``(metric_kind, name, value)`` tuples; a flush
    aggregates them into one ``resourceMetrics`` envelope — counter
    deltas re-accumulated into cumulative monotonic sums, gauges
    last-write-wins, tape events counted per kind — and POSTs it with
    a bounded timeout.

    Args:
        endpoint: Full collector URL
            (``http://host:4318/v1/metrics``).
        timeout_s: Per-POST socket timeout, in seconds — the hard
            bound on how long one flush may block.
        **kwargs: Base-class buffering/retry options.
    """

    def __init__(self, endpoint: str, *, timeout_s: float = 1.0,
                 **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._endpoint = endpoint
        self._timeout = float(timeout_s)
        self._cumulative: Dict[str, float] = {}

    def _render_event(self, record: Dict[str, Any]
                      ) -> Tuple[str, str, float]:
        kind = str(record.get("kind", "unknown"))
        return ("counter", _metric_name(f"events.{kind}"), 1.0)

    def _render_counter(self, name: str, delta: float
                        ) -> Tuple[str, str, float]:
        return ("counter", _metric_name(name), float(delta))

    def _render_gauge(self, name: str, value: float
                      ) -> Tuple[str, str, float]:
        return ("gauge", _metric_name(name), float(value))

    def _payload(self, batch: List[Tuple[str, str, float]]) -> bytes:
        sums: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        for metric_kind, name, value in batch:
            if metric_kind == "counter":
                sums[name] = sums.get(name, 0.0) + value
            else:
                gauges[name] = value
        stamp = str(time.time_ns())
        metrics: List[Dict[str, Any]] = []
        for name in sorted(sums):
            total = self._cumulative.get(name, 0.0) + sums[name]
            self._cumulative[name] = total
            metrics.append({
                "name": name,
                "sum": {
                    "dataPoints": [{"asDouble": total,
                                    "timeUnixNano": stamp}],
                    "aggregationTemporality": 2,
                    "isMonotonic": True,
                },
            })
        for name in sorted(gauges):
            metrics.append({
                "name": name,
                "gauge": {"dataPoints": [{"asDouble": gauges[name],
                                          "timeUnixNano": stamp}]},
            })
        envelope = {
            "resourceMetrics": [{
                "resource": {"attributes": [{
                    "key": "service.name",
                    "value": {"stringValue": "repro-freshen"},
                }]},
                "scopeMetrics": [{
                    "scope": {"name": "repro.obs"},
                    "metrics": metrics,
                }],
            }],
        }
        return json.dumps(envelope).encode("utf-8")

    def _send(self, batch: List[Tuple[str, str, float]]) -> None:
        request = urllib.request.Request(
            self._endpoint, data=self._payload(batch),
            headers={"Content-Type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request,
                                    timeout=self._timeout):
            pass


def parse_sink_url(url: str, **kwargs: Any) -> Sink:
    """Build a sink from a ``--sink`` URL.

    Supported schemes:

    * ``statsd://host:port`` — UDP line protocol
      (:class:`StatsdSink`);
    * ``otlp://host[:port][/path]`` — OTLP over plain HTTP
      (:class:`OtlpHttpSink`; port defaults to 4318, path to
      ``/v1/metrics``);
    * ``otlps://...`` — the same over HTTPS.

    Args:
        url: The sink URL.
        **kwargs: Forwarded to the sink constructor (buffer and
            retry options).

    Returns:
        The configured, unconnected sink.

    Raises:
        ValueError: On an unsupported scheme or a malformed URL.
    """
    parts = urlsplit(url)
    if parts.scheme == "statsd":
        if not parts.hostname or parts.port is None:
            raise ValueError(
                f"statsd sink URL needs host:port, got {url!r}")
        return StatsdSink(parts.hostname, parts.port, **kwargs)
    if parts.scheme in ("otlp", "otlps"):
        if not parts.hostname:
            raise ValueError(f"otlp sink URL needs a host, got {url!r}")
        scheme = "https" if parts.scheme == "otlps" else "http"
        port = parts.port if parts.port is not None else 4318
        path = parts.path if parts.path else "/v1/metrics"
        endpoint = f"{scheme}://{parts.hostname}:{port}{path}"
        return OtlpHttpSink(endpoint, **kwargs)
    raise ValueError(
        f"unsupported sink scheme {parts.scheme!r} in {url!r}; "
        "expected statsd://host:port or otlp://host[:port][/path]")
