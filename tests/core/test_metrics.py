"""Tests for repro.core.metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshness import PoissonSyncPolicy
from repro.core.metrics import (
    element_freshness,
    general_freshness,
    perceived_freshness,
    perceived_freshness_of_accesses,
    weighted_freshness,
)
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog


class TestElementFreshness:
    def test_matches_closed_form(self, small_catalog):
        freqs = small_catalog.change_rates.copy()  # r = 1 everywhere
        values = element_freshness(small_catalog, freqs)
        assert np.allclose(values, 1.0 - math.exp(-1.0))

    def test_zero_frequencies_all_stale(self, small_catalog):
        values = element_freshness(small_catalog, np.zeros(5))
        assert (values == 0.0).all()

    def test_rejects_wrong_shape(self, small_catalog):
        with pytest.raises(ValidationError):
            element_freshness(small_catalog, np.ones(3))

    def test_rejects_negative_frequency(self, small_catalog):
        with pytest.raises(ValidationError):
            element_freshness(small_catalog, np.array([1, 1, 1, 1, -1.0]))

    def test_alternate_model(self, small_catalog):
        freqs = small_catalog.change_rates.copy()
        values = element_freshness(small_catalog, freqs,
                                   model=PoissonSyncPolicy())
        assert np.allclose(values, 0.5)


class TestAggregateMetrics:
    def test_perceived_weights_by_profile(self):
        catalog = Catalog(access_probabilities=np.array([1.0, 0.0]),
                          change_rates=np.array([1.0, 1.0]))
        freqs = np.array([1.0, 0.0])
        # Only element 0 matters and it has r = 1.
        assert perceived_freshness(catalog, freqs) == pytest.approx(
            1.0 - math.exp(-1.0))

    def test_general_is_unweighted_mean(self):
        catalog = Catalog(access_probabilities=np.array([1.0, 0.0]),
                          change_rates=np.array([1.0, 1.0]))
        freqs = np.array([1.0, 0.0])
        expected = (1.0 - math.exp(-1.0)) / 2.0
        assert general_freshness(catalog, freqs) == pytest.approx(expected)

    def test_uniform_profile_makes_them_equal(self, rng):
        catalog = random_catalog(rng, 12).with_uniform_profile()
        freqs = rng.uniform(0.0, 3.0, size=12)
        assert perceived_freshness(catalog, freqs) == pytest.approx(
            general_freshness(catalog, freqs))

    def test_weighted_freshness_normalizes(self, small_catalog):
        freqs = np.ones(5)
        weights = np.array([2.0, 0.0, 0.0, 0.0, 0.0])
        expected = element_freshness(small_catalog, freqs)[0]
        assert weighted_freshness(small_catalog, freqs,
                                  weights) == pytest.approx(expected)

    def test_weighted_freshness_validates(self, small_catalog):
        with pytest.raises(ValidationError):
            weighted_freshness(small_catalog, np.ones(5), np.ones(3))
        with pytest.raises(ValidationError):
            weighted_freshness(small_catalog, np.ones(5),
                               np.array([1, 1, 1, 1, -1.0]))
        with pytest.raises(ValidationError):
            weighted_freshness(small_catalog, np.ones(5), np.zeros(5))

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50)
    def test_perceived_is_convex_combination_of_freshness(self, n, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        freqs = rng.uniform(0.0, 4.0, size=n)
        per_element = element_freshness(catalog, freqs)
        value = perceived_freshness(catalog, freqs)
        assert per_element.min() - 1e-12 <= value <= per_element.max() + 1e-12

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50)
    def test_metrics_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        freqs = rng.uniform(0.0, 10.0, size=n)
        assert 0.0 <= perceived_freshness(catalog, freqs) <= 1.0
        assert 0.0 <= general_freshness(catalog, freqs) <= 1.0


class TestAccessSetMetric:
    def test_definition3(self):
        observed = np.array([True, False, True, True])
        assert perceived_freshness_of_accesses(observed) == 0.75

    def test_integer_input(self):
        assert perceived_freshness_of_accesses(
            np.array([1, 0, 0, 0])) == 0.25

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            perceived_freshness_of_accesses(np.empty(0, dtype=bool))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            perceived_freshness_of_accesses(np.zeros((2, 2), dtype=bool))
