"""Non-optimizing allocation baselines (Cho & Garcia-Molina, ref [5]).

Before solving anything, a mirror designer has two obvious policies:

* **uniform allocation** — sync every element at the same frequency,
  ``fᵢ = B / Σsⱼ`` per unit size;
* **proportional allocation** — sync elements in proportion to how
  fast they change, ``fᵢ ∝ λᵢ`` (scaled to the budget).

Cho & Garcia-Molina's famous counterintuitive result — reproduced by
this module's tests and the ablation benchmark — is that *uniform
beats proportional* for average freshness: chasing the fastest
changers wastes bandwidth on copies that go stale again immediately.
The optimal solution goes further and *demotes* fast changers; these
baselines bracket it from below.

Both baselines are also useful operational fallbacks: they need no
optimization and, for the uniform policy, no change-rate knowledge at
all.
"""

from __future__ import annotations

import numpy as np

from repro.core.freshener import Freshener, FresheningPlan
from repro.errors import InfeasibleProblemError
from repro.workloads.catalog import Catalog

__all__ = ["UniformFreshener", "ProportionalFreshener"]


class UniformFreshener(Freshener):
    """Every element is synced at the same frequency.

    With object sizes, the common frequency is ``B / Σsᵢ`` so the
    budget is met exactly.  Needs no knowledge of rates or profiles.
    """

    def plan(self, catalog: Catalog, bandwidth: float) -> FresheningPlan:
        if bandwidth <= 0.0:
            raise InfeasibleProblemError(
                f"bandwidth must be positive, got {bandwidth!r}")
        frequency = bandwidth / float(catalog.sizes.sum())
        frequencies = np.full(catalog.n_elements, frequency)
        return self._finish(catalog, frequencies,
                            {"technique": "uniform-baseline"})


class ProportionalFreshener(Freshener):
    """Sync frequency proportional to change rate, ``fᵢ ∝ λᵢ``.

    The intuitive-but-wrong policy: it devotes the budget to exactly
    the elements whose copies decay fastest, which Cho &
    Garcia-Molina prove is dominated by uniform allocation.  Elements
    that never change get no syncs (the one thing it does get right).
    """

    def plan(self, catalog: Catalog, bandwidth: float) -> FresheningPlan:
        if bandwidth <= 0.0:
            raise InfeasibleProblemError(
                f"bandwidth must be positive, got {bandwidth!r}")
        rates = catalog.change_rates
        weighted_cost = float(catalog.sizes @ rates)
        if weighted_cost <= 0.0:
            frequencies = np.zeros(catalog.n_elements)
        else:
            frequencies = rates * (bandwidth / weighted_cost)
        return self._finish(catalog, frequencies,
                            {"technique": "proportional-baseline"})
