"""Tests for repro.core.age — the age metric and age-optimal solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.age import (
    age_marginal_reduction,
    fixed_order_age,
    invert_age_marginal,
    perceived_age,
    solve_min_age_problem,
)
from repro.core.solver import solve_core_problem
from repro.errors import InfeasibleProblemError, ValidationError
from repro.workloads.catalog import Catalog
from repro.workloads.presets import TOY_BANDWIDTH, toy_example_catalog

from tests.conftest import random_catalog

positive = st.floats(min_value=1e-2, max_value=30.0)


class TestFixedOrderAge:
    def test_static_element_has_zero_age(self):
        assert fixed_order_age(np.array([0.0]), np.array([0.0])) == 0.0

    def test_starved_element_has_infinite_age(self):
        assert np.isinf(fixed_order_age(np.array([2.0]),
                                        np.array([0.0])))

    def test_fast_sync_drives_age_to_zero(self):
        age = fixed_order_age(np.array([1.0]), np.array([1e6]))
        assert age == pytest.approx(0.0, abs=1e-5)

    def test_very_volatile_element_ages_at_half_interval(self):
        age = fixed_order_age(np.array([1e9]), np.array([4.0]))
        assert age == pytest.approx(1.0 / 8.0, rel=1e-3)

    def test_known_value(self):
        # λ = f = 1, r = 1: Ā = 1/2 − 1 + (1 − e^{-1}) = 1/2 − e^{-1}.
        age = fixed_order_age(np.array([1.0]), np.array([1.0]))
        assert age == pytest.approx(0.5 - np.exp(-1.0))

    @given(positive, positive)
    @settings(max_examples=100)
    def test_nonnegative_and_finite(self, lam, f):
        age = fixed_order_age(np.array([lam]), np.array([f]))
        assert 0.0 <= age < np.inf

    @given(positive, positive, st.floats(min_value=1.1, max_value=5.0))
    @settings(max_examples=100)
    def test_monotone_decreasing_in_frequency(self, lam, f, factor):
        slower = fixed_order_age(np.array([lam]), np.array([f]))
        faster = fixed_order_age(np.array([lam]),
                                 np.array([f * factor]))
        assert faster < slower + 1e-15

    @given(positive, positive, st.floats(min_value=1.1, max_value=5.0))
    @settings(max_examples=100)
    def test_monotone_increasing_in_rate(self, lam, f, factor):
        calm = fixed_order_age(np.array([lam]), np.array([f]))
        volatile = fixed_order_age(np.array([lam * factor]),
                                   np.array([f]))
        assert volatile >= calm - 1e-12


class TestAgeMarginal:
    def test_matches_finite_difference(self):
        lam, f, h = 3.0, 0.7, 1e-6
        numeric = -(fixed_order_age(np.array([lam]),
                                    np.array([f + h]))
                    - fixed_order_age(np.array([lam]),
                                      np.array([f - h]))) / (2 * h)
        analytic = age_marginal_reduction(np.array([lam]),
                                          np.array([f]))
        assert numeric[0] == pytest.approx(analytic[0], rel=1e-5)

    def test_infinite_at_zero_frequency(self):
        assert np.isinf(age_marginal_reduction(np.array([1.0]),
                                               np.array([0.0])))

    def test_decreasing_in_frequency(self):
        freqs = np.array([0.2, 0.5, 1.0, 3.0, 10.0])
        marginals = age_marginal_reduction(np.full(5, 2.0), freqs)
        assert (np.diff(marginals) < 0.0).all()

    @given(positive, st.floats(min_value=1e-4, max_value=100.0))
    @settings(max_examples=100)
    def test_inversion_roundtrip(self, lam, target):
        f = invert_age_marginal(np.array([lam]), np.array([target]))
        recovered = age_marginal_reduction(np.array([lam]), f)
        assert recovered[0] == pytest.approx(target, rel=1e-6)

    def test_inversion_validates(self):
        with pytest.raises(ValidationError):
            invert_age_marginal(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValidationError):
            invert_age_marginal(np.array([1.0]), np.array([0.0]))


class TestPerceivedAge:
    def test_weights_by_profile(self):
        catalog = Catalog(access_probabilities=np.array([1.0, 0.0]),
                          change_rates=np.array([1.0, 1.0]))
        freqs = np.array([1.0, 0.0])
        # Element 1 is never synced but never accessed: finite.
        expected = fixed_order_age(np.array([1.0]),
                                   np.array([1.0]))[0]
        assert perceived_age(catalog, freqs) == pytest.approx(expected)

    def test_infinite_when_accessed_element_starved(self, small_catalog):
        freqs = np.array([1.0, 1.0, 1.0, 1.0, 0.0])
        assert perceived_age(small_catalog, freqs) == np.inf

    def test_validates_shape(self, small_catalog):
        with pytest.raises(ValidationError):
            perceived_age(small_catalog, np.ones(3))


class TestSolveMinAge:
    def test_no_element_starved(self):
        catalog = toy_example_catalog("P1")
        solution = solve_min_age_problem(catalog, TOY_BANDWIDTH)
        assert (solution.frequencies > 0.0).all()
        assert solution.bandwidth == pytest.approx(TOY_BANDWIDTH,
                                                   rel=1e-8)

    def test_freshness_optimum_can_have_infinite_age(self):
        """The freshness/age tension, concretely."""
        catalog = toy_example_catalog("P1")
        freshness_solution = solve_core_problem(catalog, TOY_BANDWIDTH)
        assert perceived_age(catalog,
                             freshness_solution.frequencies) == np.inf
        age_solution = solve_min_age_problem(catalog, TOY_BANDWIDTH)
        assert np.isfinite(age_solution.objective)

    def test_age_optimum_beats_alternatives(self, small_catalog):
        solution = solve_min_age_problem(small_catalog, 4.0)
        uniform = np.full(5, 4.0 / 5.0)
        assert solution.objective <= perceived_age(small_catalog,
                                                   uniform) + 1e-9

    def test_kkt_equalized_marginals(self, small_catalog):
        solution = solve_min_age_problem(small_catalog, 4.0)
        marginals = (small_catalog.access_probabilities
                     * age_marginal_reduction(small_catalog.change_rates,
                                              solution.frequencies))
        positive_p = small_catalog.access_probabilities > 0.0
        active = marginals[positive_p]
        assert np.allclose(active, active.mean(), rtol=1e-4)

    def test_rejects_bad_bandwidth(self, small_catalog):
        with pytest.raises(InfeasibleProblemError):
            solve_min_age_problem(small_catalog, 0.0)

    def test_all_static_catalog(self):
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.zeros(2))
        solution = solve_min_age_problem(catalog, 2.0)
        assert (solution.frequencies == 0.0).all()
        assert solution.objective == 0.0

    @given(st.integers(min_value=1, max_value=25),
           st.floats(min_value=0.5, max_value=50.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_feasible_and_all_positive(self, n, bandwidth, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n, sized=True)
        solution = solve_min_age_problem(catalog, bandwidth)
        assert solution.bandwidth == pytest.approx(bandwidth, rel=1e-6)
        assert (solution.frequencies > 0.0).all()
        assert np.isfinite(solution.objective)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_more_bandwidth_lowers_age(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 12)
        scarce = solve_min_age_problem(catalog, 2.0)
        plenty = solve_min_age_problem(catalog, 8.0)
        assert plenty.objective < scarce.objective


class TestWeightedAgeProblem:
    def test_partitioned_age_approaches_exact(self):
        """The transformed (partitioned) age problem converges to the
        exact age optimum as partitions shrink to singletons."""
        from repro.core.age import solve_weighted_age_problem
        from repro.core.allocation import (
            AllocationPolicy,
            expand_partition_frequencies,
        )
        from repro.core.partitioning import (
            PartitioningStrategy,
            partition_catalog,
        )
        from repro.core.representatives import build_representatives
        from repro.workloads.presets import ExperimentSetup, build_catalog

        setup = ExperimentSetup(n_objects=60,
                                updates_per_period=120.0,
                                syncs_per_period=30.0, theta=1.0,
                                update_std_dev=1.0)
        catalog = build_catalog(setup, seed=1)
        exact = solve_min_age_problem(catalog, 30.0)

        scores = []
        for k in (5, 20, 60):
            assignment = partition_catalog(catalog, k,
                                           PartitioningStrategy.PF)
            problem = build_representatives(catalog, assignment)
            solution = solve_weighted_age_problem(
                problem.weights, problem.mean_change_rates,
                np.maximum(problem.costs, 1e-300), 30.0)
            freqs = expand_partition_frequencies(
                catalog, problem, solution.frequencies,
                AllocationPolicy.FIXED_BANDWIDTH)
            scores.append(perceived_age(catalog, freqs))
        # Heuristic age never beats the optimum and improves with k.
        assert all(score >= exact.objective - 1e-9 for score in scores)
        assert scores[-1] == pytest.approx(exact.objective, rel=1e-4)
        assert scores[-1] <= scores[0] + 1e-9

    def test_validation(self):
        from repro.core.age import solve_weighted_age_problem
        with pytest.raises(ValidationError):
            solve_weighted_age_problem(np.array([1.0]),
                                       np.array([1.0, 2.0]),
                                       np.ones(2), 1.0)
        with pytest.raises(ValidationError):
            solve_weighted_age_problem(np.array([-1.0]),
                                       np.array([1.0]), np.ones(1),
                                       1.0)
        with pytest.raises(InfeasibleProblemError):
            solve_weighted_age_problem(np.array([1.0]),
                                       np.array([1.0]), np.ones(1),
                                       0.0)

    def test_zero_weight_element_starved_but_objective_finite(self):
        from repro.core.age import solve_weighted_age_problem
        solution = solve_weighted_age_problem(
            np.array([0.0, 1.0]), np.array([2.0, 2.0]), np.ones(2),
            2.0)
        assert solution.frequencies[0] == 0.0
        assert np.isfinite(solution.objective)
