"""Simulation engine benchmarks: kernel speedup, memory, scaling.

Four benches, one durable record.  The kernel benches replay
identical event tapes through the reference per-event loop and the
vectorized fastpath kernels (quiet, i.i.d.-faulted, bursty) and
compare *replay-only* time — the ``sim.run`` telemetry span covers
exactly the replay in both engines (streams are generated before the
span opens), so the ratio isolates the kernel from shared stream
generation.  The scaling bench pushes 10⁵- and 10⁶-element replays
through per-point subprocesses (``scaling_worker.py``) so each row
gets its own ``ru_maxrss`` high-water mark, with the quiet arms run
under a ``setrlimit`` address-space ceiling.  The parallel bench runs
a 16-point burstiness sweep serially and through the process-pool
executor and records the wall-clock ratio.  All write
machine-readable rows to ``benchmarks/results/BENCH_sim.json`` for
CI's perf-smoke job to archive and diff.

On a single-core box the executor resolves to one inline worker, so
the scaling assertion only fires where it is meaningful (workers > 1);
the equality assertions — fastpath bit-identical to reference, jobs>1
bit-identical to serial — always fire.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.analysis.sensitivity import burstiness_robustness
from repro.core.freshener import PerceivedFreshener
from repro.faults.model import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs import registry as obs
from repro.parallel import resolve_jobs
from repro.sim.simulation import Simulation
from repro.workloads.presets import ExperimentSetup, build_catalog

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Catalog sizes for the kernel comparison (elements).
KERNEL_SIZES = (1_000, 10_000)
#: The paper-scale size at which the >=5x claim is asserted.
CLAIM_SIZE = 10_000
CLAIM_SPEEDUP = 5.0

SWEEP_POINTS = 16

SWEEP_SETUP = ExperimentSetup(n_objects=40, updates_per_period=80.0,
                              syncs_per_period=20.0, theta=1.0,
                              update_std_dev=1.0)


def _engine_timing(catalog, frequencies, *, engine: str,
                   n_periods: float, request_rate: float) -> dict:
    """One full run; replay-only seconds come from the sim.run span."""
    sim = Simulation(catalog, frequencies,
                     request_rate=request_rate,
                     rng=np.random.default_rng(7))
    with obs.telemetry() as registry:
        start = time.perf_counter()
        result = sim.run(n_periods, engine=engine)
        total = time.perf_counter() - start
    _, replay = registry.span_totals["sim.run"]
    generation = registry.span_totals.get("sim.generate", (0, 0.0))[1]
    return {"engine": engine, "total_seconds": total,
            "replay_seconds": replay, "generation_seconds": generation,
            "result": result}


def _kernel_row(n: int) -> dict:
    setup = ExperimentSetup(n_objects=n, updates_per_period=2.0 * n,
                            syncs_per_period=0.5 * n, theta=1.0,
                            update_std_dev=2.0)
    catalog = build_catalog(setup, seed=0)
    plan = PerceivedFreshener().plan(catalog, setup.syncs_per_period)
    kwargs = dict(n_periods=10.0, request_rate=float(n))
    # Warm caches (imports, allocator) off the small engine first so
    # the measured pair sees comparable conditions.
    _engine_timing(catalog, plan.frequencies, engine="fastpath",
                   **kwargs)
    reference = _engine_timing(catalog, plan.frequencies,
                               engine="reference", **kwargs)
    fastpath = _engine_timing(catalog, plan.frequencies,
                              engine="fastpath", **kwargs)
    ref_result, fast_result = reference["result"], fastpath["result"]
    assert fast_result.monitored_perceived_freshness == \
        ref_result.monitored_perceived_freshness
    assert fast_result.n_syncs == ref_result.n_syncs
    assert np.array_equal(
        fast_result.element_time_freshness.view(np.uint64),
        ref_result.element_time_freshness.view(np.uint64))
    return {
        "n_elements": n,
        "n_events": int(ref_result.n_updates + ref_result.n_syncs
                        + ref_result.n_accesses),
        "reference_replay_seconds": reference["replay_seconds"],
        "fastpath_replay_seconds": fastpath["replay_seconds"],
        "reference_generation_seconds": reference["generation_seconds"],
        "fastpath_generation_seconds": fastpath["generation_seconds"],
        "reference_total_seconds": reference["total_seconds"],
        "fastpath_total_seconds": fastpath["total_seconds"],
        "kernel_speedup": (reference["replay_seconds"]
                           / fastpath["replay_seconds"]),
        "end_to_end_speedup": (reference["total_seconds"]
                               / fastpath["total_seconds"]),
    }


def test_kernel_speedup_bench(benchmark):
    """Fastpath must beat the reference replay >=5x at paper scale."""
    rows = benchmark.pedantic(
        lambda: [_kernel_row(n) for n in KERNEL_SIZES],
        rounds=1, iterations=1)
    claim = next(r for r in rows if r["n_elements"] == CLAIM_SIZE)
    assert claim["kernel_speedup"] >= CLAIM_SPEEDUP, claim
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["kernel"] = {"rows": rows,
                         "claim_speedup": CLAIM_SPEEDUP,
                         "claim_n_elements": CLAIM_SIZE}
    _write_payload(payload)


#: Faulted-replay scenario: 20% i.i.d. loss with bounded retries (the
#: ``repro chaos`` workhorse), asserted >=3x at paper scale.
FAULTED_CLAIM_SPEEDUP = 3.0
FAULTED_LOSS = 0.2


def _faulted_engine_timing(catalog, frequencies, *, engine: str,
                           n_periods: float,
                           request_rate: float) -> dict:
    sim = Simulation(catalog, frequencies,
                     request_rate=request_rate,
                     rng=np.random.default_rng(7),
                     fault_plan=FaultPlan.iid(FAULTED_LOSS),
                     retry_policy=RetryPolicy(max_retries=3),
                     fault_rng=np.random.default_rng(11))
    with obs.telemetry() as registry:
        start = time.perf_counter()
        result = sim.run(n_periods, engine=engine)
        total = time.perf_counter() - start
    _, replay = registry.span_totals["sim.run"]
    generation = registry.span_totals.get("sim.generate", (0, 0.0))[1]
    return {"engine": engine, "total_seconds": total,
            "replay_seconds": replay, "generation_seconds": generation,
            "result": result}


def _faulted_row(n: int) -> dict:
    setup = ExperimentSetup(n_objects=n, updates_per_period=2.0 * n,
                            syncs_per_period=0.5 * n, theta=1.0,
                            update_std_dev=2.0)
    catalog = build_catalog(setup, seed=0)
    plan = PerceivedFreshener().plan(catalog, setup.syncs_per_period)
    kwargs = dict(n_periods=10.0, request_rate=float(n))
    _faulted_engine_timing(catalog, plan.frequencies,
                           engine="fastpath", **kwargs)
    reference = _faulted_engine_timing(catalog, plan.frequencies,
                                       engine="reference", **kwargs)
    fastpath = _faulted_engine_timing(catalog, plan.frequencies,
                                      engine="fastpath", **kwargs)
    ref_result, fast_result = reference["result"], fastpath["result"]
    assert fast_result.monitored_perceived_freshness == \
        ref_result.monitored_perceived_freshness
    assert fast_result.n_syncs == ref_result.n_syncs
    assert fast_result.failed_polls == ref_result.failed_polls
    assert fast_result.retries == ref_result.retries
    assert np.array_equal(
        fast_result.element_time_freshness.view(np.uint64),
        ref_result.element_time_freshness.view(np.uint64))
    return {
        "n_elements": n,
        "scenario": "iid20",
        "loss": FAULTED_LOSS,
        "n_events": int(ref_result.n_updates + ref_result.n_syncs
                        + ref_result.n_accesses),
        "attempted_polls": int(ref_result.attempted_polls),
        "failed_polls": int(ref_result.failed_polls),
        "reference_replay_seconds": reference["replay_seconds"],
        "fastpath_replay_seconds": fastpath["replay_seconds"],
        "reference_generation_seconds": reference["generation_seconds"],
        "fastpath_generation_seconds": fastpath["generation_seconds"],
        "reference_total_seconds": reference["total_seconds"],
        "fastpath_total_seconds": fastpath["total_seconds"],
        "kernel_speedup": (reference["replay_seconds"]
                           / fastpath["replay_seconds"]),
        "end_to_end_speedup": (reference["total_seconds"]
                               / fastpath["total_seconds"]),
    }


def test_faulted_kernel_speedup_bench(benchmark):
    """The faulted kernel must beat the loop >=3x on iid20 at paper
    scale (lossy replay does strictly more work per sync than quiet
    replay — the ledger walk — so its bar sits below the quiet 5x)."""
    rows = benchmark.pedantic(
        lambda: [_faulted_row(n) for n in KERNEL_SIZES],
        rounds=1, iterations=1)
    claim = next(r for r in rows if r["n_elements"] == CLAIM_SIZE)
    assert claim["kernel_speedup"] >= FAULTED_CLAIM_SPEEDUP, claim
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["faulted_kernel"] = {
        "rows": rows,
        "claim_speedup": FAULTED_CLAIM_SPEEDUP,
        "claim_n_elements": CLAIM_SIZE,
        "scenario": "iid20",
    }
    _write_payload(payload)


#: Bursty-replay scenario: Gilbert–Elliott loss (5% chance a sync
#: enters a burst, bursts end with probability 40% per attempt) plus
#: bounded retries, which routes the resolver onto the exact-walk
#: path — the representative retryable-GE configuration.
BURST_P_GOOD_TO_BAD = 0.05
BURST_P_BAD_TO_GOOD = 0.4


def _bursty_engine_timing(catalog, frequencies, *, engine: str,
                          n_periods: float,
                          request_rate: float) -> dict:
    sim = Simulation(catalog, frequencies,
                     request_rate=request_rate,
                     rng=np.random.default_rng(7),
                     fault_plan=FaultPlan.bursty(BURST_P_GOOD_TO_BAD,
                                                 BURST_P_BAD_TO_GOOD),
                     retry_policy=RetryPolicy(max_retries=3),
                     fault_rng=np.random.default_rng(11))
    with obs.telemetry() as registry:
        start = time.perf_counter()
        result = sim.run(n_periods, engine=engine)
        total = time.perf_counter() - start
    _, replay = registry.span_totals["sim.run"]
    generation = registry.span_totals.get("sim.generate", (0, 0.0))[1]
    return {"engine": engine, "total_seconds": total,
            "replay_seconds": replay, "generation_seconds": generation,
            "result": result}


def _bursty_row(n: int) -> dict:
    setup = ExperimentSetup(n_objects=n, updates_per_period=2.0 * n,
                            syncs_per_period=0.5 * n, theta=1.0,
                            update_std_dev=2.0)
    catalog = build_catalog(setup, seed=0)
    plan = PerceivedFreshener().plan(catalog, setup.syncs_per_period)
    kwargs = dict(n_periods=10.0, request_rate=float(n))
    _bursty_engine_timing(catalog, plan.frequencies,
                          engine="fastpath", **kwargs)
    reference = _bursty_engine_timing(catalog, plan.frequencies,
                                      engine="reference", **kwargs)
    fastpath = _bursty_engine_timing(catalog, plan.frequencies,
                                     engine="fastpath", **kwargs)
    ref_result, fast_result = reference["result"], fastpath["result"]
    assert fast_result.monitored_perceived_freshness == \
        ref_result.monitored_perceived_freshness
    assert fast_result.n_syncs == ref_result.n_syncs
    assert fast_result.failed_polls == ref_result.failed_polls
    assert fast_result.retries == ref_result.retries
    assert np.array_equal(
        fast_result.element_time_freshness.view(np.uint64),
        ref_result.element_time_freshness.view(np.uint64))
    return {
        "n_elements": n,
        "scenario": "burst",
        "p_good_to_bad": BURST_P_GOOD_TO_BAD,
        "p_bad_to_good": BURST_P_BAD_TO_GOOD,
        "n_events": int(ref_result.n_updates + ref_result.n_syncs
                        + ref_result.n_accesses),
        "attempted_polls": int(ref_result.attempted_polls),
        "failed_polls": int(ref_result.failed_polls),
        "reference_replay_seconds": reference["replay_seconds"],
        "fastpath_replay_seconds": fastpath["replay_seconds"],
        "reference_generation_seconds": reference["generation_seconds"],
        "fastpath_generation_seconds": fastpath["generation_seconds"],
        "reference_total_seconds": reference["total_seconds"],
        "fastpath_total_seconds": fastpath["total_seconds"],
        "kernel_speedup": (reference["replay_seconds"]
                           / fastpath["replay_seconds"]),
        "end_to_end_speedup": (reference["total_seconds"]
                               / fastpath["total_seconds"]),
    }


def test_bursty_kernel_speedup_bench(benchmark):
    """The Gilbert–Elliott kernel must beat the loop >=3x on the
    burst scenario at paper scale (the chain walk does strictly more
    per-sync work than the stateless i.i.d. resolve, so it shares
    the faulted 3x bar rather than the quiet 5x)."""
    rows = benchmark.pedantic(
        lambda: [_bursty_row(n) for n in KERNEL_SIZES],
        rounds=1, iterations=1)
    claim = next(r for r in rows if r["n_elements"] == CLAIM_SIZE)
    assert claim["kernel_speedup"] >= FAULTED_CLAIM_SPEEDUP, claim
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["bursty_kernel"] = {
        "rows": rows,
        "claim_speedup": FAULTED_CLAIM_SPEEDUP,
        "claim_n_elements": CLAIM_SIZE,
        "scenario": "burst",
    }
    _write_payload(payload)


#: Scaling-sweep sizes: the 10⁵ rows also time the reference loop
#: (to record a speedup); at 10⁶ the reference loop is impractical,
#: so those rows record fastpath time and footprint only.
SCALING_SIZES = (100_000, 1_000_000)
SCALING_REFERENCE_MAX = 100_000
SCALING_SCENARIOS = ("quiet", "iid20", "burst")
#: Address-space ceilings per (elements, scenario) arm — every sweep
#: arm now runs under an explicit ``setrlimit`` ceiling, recorded in
#: its bench row (the CI memory-ceiling step re-runs the 10⁵ quiet
#: and both 10⁶ faulted points under the same figures).
SCALING_CEILING_BYTES = {
    (100_000, "quiet"): 1 * 1024 ** 3,
    (100_000, "iid20"): 1 * 1024 ** 3,
    (100_000, "burst"): 1 * 1024 ** 3,
    (1_000_000, "quiet"): 2 * 1024 ** 3,
    (1_000_000, "iid20"): 2 * 1024 ** 3,
    (1_000_000, "burst"): 2 * 1024 ** 3,
}
#: The streaming frontier: 10⁷ elements replayed through the chunked
#: slab engine in one-period slabs, planned with the partitioned
#: heuristic (the exact water-filling solve is superlinear and would
#: dwarf the replay), under a hard 4 GiB address-space ceiling.
STREAMING_N = 10_000_000
STREAMING_CEILING_BYTES = 4 * 1024 ** 3
#: Stream-generation claim: at 10⁶ elements under kernel-bench
#: intensity (3n updates and n requests per period, 10 periods) the
#: sorted-draw slab pipeline must cut tape-build wall time >=2x vs
#: the legacy event-stream route (measured 2.3-3.3x; the heavier
#: mix keeps the legacy full-stream argsort dominant so the claim
#: holds on loaded CI runners too).
GENERATION_CLAIM_RATIO = 2.0

_WORKER = Path(__file__).resolve().parent / "scaling_worker.py"


def _scaling_point(n: int, scenario: str, engine: str, *,
                   rlimit_bytes: int | None = None,
                   extra: dict | None = None) -> dict:
    """Run one scaling point in a fresh subprocess."""
    config = {"n_elements": n, "scenario": scenario,
              "engine": engine}
    if rlimit_bytes is not None:
        config["rlimit_bytes"] = rlimit_bytes
    if extra:
        config.update(extra)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else src_root + os.pathsep + existing)
    proc = subprocess.run(
        [sys.executable, str(_WORKER), json.dumps(config)],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, (config, proc.stderr)
    return json.loads(proc.stdout)


def _scaling_rows() -> list[dict]:
    rows = []
    for n in SCALING_SIZES:
        for scenario in SCALING_SCENARIOS:
            ceiling = SCALING_CEILING_BYTES[(n, scenario)]
            fast = _scaling_point(n, scenario, "auto",
                                  rlimit_bytes=ceiling)
            row = {
                "n_elements": n,
                "scenario": scenario,
                "n_events": fast["n_events"],
                "attempted_polls": fast["attempted_polls"],
                "failed_polls": fast["failed_polls"],
                "engines_used": fast["engines_used"],
                "fastpath_replay_seconds": fast["replay_seconds"],
                "fastpath_total_seconds": fast["total_seconds"],
                "generation_seconds": fast["generation_seconds"],
                "peak_rss_kb": fast["peak_rss_kb"],
                "rlimit_bytes": ceiling,
            }
            if n <= SCALING_REFERENCE_MAX:
                ref = _scaling_point(n, scenario, "reference")
                assert (ref["freshness_checksum"]
                        == fast["freshness_checksum"]), (n, scenario)
                row["reference_replay_seconds"] = \
                    ref["replay_seconds"]
                row["kernel_speedup"] = (ref["replay_seconds"]
                                         / fast["replay_seconds"])
            rows.append(row)
    return rows


def test_scaling_bench(benchmark):
    """10⁵/10⁶-element sweep: footprint and speedup per scenario.

    Each point runs in its own subprocess so ``peak_rss_kb`` is
    exact, and every arm carries a hard ``setrlimit`` address-space
    ceiling (1 GiB at 10⁵, 2 GiB at 10⁶) recorded in its row — a
    regression that bloats the structure-of-arrays replay past the
    budget fails here, not in production."""
    rows = benchmark.pedantic(_scaling_rows, rounds=1, iterations=1)
    for row in rows:
        assert any(key != "sim.engine.reference"
                   for key in row["engines_used"]), row
        if row["rlimit_bytes"] is not None:
            assert (row["peak_rss_kb"] * 1024
                    < row["rlimit_bytes"]), row
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["scaling"] = {
        "rows": rows,
        "scenarios": list(SCALING_SCENARIOS),
        "ceiling_bytes": {f"{n}/{scenario}": b
                          for (n, scenario), b
                          in SCALING_CEILING_BYTES.items()},
    }
    _write_payload(payload)


def _streaming_rows() -> list[dict]:
    """The chunked-slab rows: 10⁷ frontier, adapt loop, generation."""
    rows = []
    frontier = _scaling_point(
        STREAMING_N, "quiet", "auto",
        rlimit_bytes=STREAMING_CEILING_BYTES,
        extra={"chunk_periods": 1, "n_periods": 2.0,
               "updates_factor": 0.5, "syncs_factor": 0.2,
               "request_factor": 0.25,
               "freshener": "partitioned"})
    rows.append({
        "n_elements": STREAMING_N,
        "scenario": "quiet",
        "mode": "stream",
        "chunk_periods": 1,
        "n_events": frontier["n_events"],
        "engines_used": frontier["engines_used"],
        "fastpath_replay_seconds": frontier["replay_seconds"],
        "fastpath_total_seconds": frontier["total_seconds"],
        "generation_seconds": frontier["generation_seconds"],
        "peak_rss_kb": frontier["peak_rss_kb"],
        "rlimit_bytes": STREAMING_CEILING_BYTES,
        "freshness_checksum": frontier["freshness_checksum"],
    })
    adapt = _scaling_point(
        1_000_000, "quiet", "auto",
        extra={"mode": "adapt", "n_periods": 4, "batch": 4,
               "slab_periods": 2, "freshener": "partitioned"})
    assert adapt["n_periods"] == 4, adapt
    rows.append({
        "n_elements": 1_000_000,
        "scenario": "quiet",
        "mode": "adapt",
        "n_periods": adapt["n_periods"],
        "replans": adapt["replans"],
        "fastpath_replay_seconds": adapt["replay_seconds"],
        "fastpath_total_seconds": adapt["total_seconds"],
        "peak_rss_kb": adapt["peak_rss_kb"],
        "rlimit_bytes": None,
        "freshness_checksum": adapt["freshness_checksum"],
    })
    compare = _scaling_point(
        1_000_000, "quiet", "auto",
        extra={"chunk_periods": 1, "n_periods": 10.0,
               "updates_factor": 3.0, "request_factor": 1.0,
               "compare_generation": True})
    rows.append({
        "n_elements": 1_000_000,
        "scenario": "quiet",
        "mode": "generation",
        "chunk_periods": 1,
        "n_events": compare["n_events"],
        "generation_seconds": compare["generation_seconds"],
        "legacy_generation_seconds":
            compare["legacy_generation_seconds"],
        "fused_generation_seconds":
            compare["fused_generation_seconds"],
        "generation_speedup": (compare["legacy_generation_seconds"]
                               / compare["generation_seconds"]),
        "peak_rss_kb": compare["peak_rss_kb"],
        "rlimit_bytes": None,
    })
    return rows


def test_streaming_bench(benchmark):
    """Chunked slab engine at the frontier.

    Three subprocess rows: a 10⁷-element quiet replay streamed in
    one-period slabs under a hard 4 GiB address-space ceiling (exact
    ``ru_maxrss`` recorded), the adaptive manager loop window-batched
    through the slab engine at 10⁶ elements, and the stream-
    generation comparison whose >=2x claim the sorted-draw pipeline
    must clear against the legacy event-stream tape build."""
    rows = benchmark.pedantic(_streaming_rows, rounds=1, iterations=1)
    frontier = next(r for r in rows if r["mode"] == "stream")
    assert frontier["peak_rss_kb"] * 1024 < STREAMING_CEILING_BYTES, \
        frontier
    assert any(key != "sim.engine.reference"
               for key in frontier["engines_used"]), frontier
    claim = next(r for r in rows if r["mode"] == "generation")
    assert claim["generation_speedup"] >= GENERATION_CLAIM_RATIO, \
        claim
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["streaming"] = {
        "rows": rows,
        "ceiling_bytes": STREAMING_CEILING_BYTES,
        "generation_claim_ratio": GENERATION_CLAIM_RATIO,
    }
    _write_payload(payload)


def _sweep_seconds(jobs: int) -> tuple[float, object]:
    levels = np.linspace(0.0, 0.75, SWEEP_POINTS)
    start = time.perf_counter()
    sweep = burstiness_robustness(setup=SWEEP_SETUP,
                                  burstiness_levels=levels,
                                  n_periods=4, request_rate=80.0,
                                  jobs=jobs)
    return time.perf_counter() - start, sweep


def test_parallel_scaling_bench(benchmark):
    """A 16-point sweep through the executor vs the serial loop."""
    workers = resolve_jobs(0)

    def _measure():
        serial_s, serial = _sweep_seconds(1)
        parallel_s, parallel = _sweep_seconds(0)
        return serial_s, serial, parallel_s, parallel

    serial_s, serial, parallel_s, parallel = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    for index, series in enumerate(serial.series):
        assert np.array_equal(
            series.y.view(np.uint64),
            parallel.series[index].y.view(np.uint64))
    speedup = serial_s / parallel_s
    efficiency = speedup / workers
    if workers > 1:
        # Near-linear scaling: the tasks are independent and the
        # per-task payload dwarfs pickling, so most of each extra
        # core should show up in the wall clock.
        assert efficiency >= 0.6, (serial_s, parallel_s, workers)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["parallel"] = {
        "sweep_points": SWEEP_POINTS,
        "workers": workers,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "efficiency": efficiency,
    }
    _write_payload(payload)


def _load_payload() -> dict:
    path = RESULTS_DIR / "BENCH_sim.json"
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"benchmark": "simulation_engines"}


def _write_payload(payload: dict) -> None:
    (RESULTS_DIR / "BENCH_sim.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
