"""Extension experiments beyond the paper's figures.

* **imperfect knowledge** — §6's claim that the approach survives
  imperfect change-rate knowledge because access probability
  dominates at high skew.
* **mirror selection** — §7's future-work idea: profile-driven choice
  of which objects to mirror under a space constraint.
* **policy ablation** — Fixed-Order vs memoryless (Poisson) sync
  policies under optimal PF scheduling.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import (
    imperfect_knowledge,
    mirror_selection,
    policy_ablation,
)
from repro.analysis.tables import format_sweep


def test_imperfect_knowledge(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: imperfect_knowledge(n_seeds=2), rounds=1, iterations=1)
    noisy = sweep.get("noisy rates").y
    clean = sweep.get("perfect knowledge").y
    assert noisy[0] == clean[0]
    assert (noisy <= clean + 1e-9).all()
    # Even at heavy noise, most of the freshness is retained.
    assert noisy[-1] > 0.7 * clean[-1]
    report("ext_imperfect_knowledge", format_sweep(sweep))


def test_mirror_selection(benchmark, report):
    sweep = benchmark.pedantic(mirror_selection, rounds=1, iterations=1)
    greedy = sweep.get("greedy by interest").y
    random = sweep.get("random selection").y
    assert (greedy >= random - 1e-9).all()
    # Under a Zipf profile, a half-size mirror retains most of the
    # achievable perceived freshness when chosen greedily.
    assert greedy[2] > 0.8 * greedy[-1]
    report("ext_mirror_selection", format_sweep(sweep))


def test_policy_ablation(benchmark, report):
    sweep = benchmark.pedantic(policy_ablation, rounds=1, iterations=1)
    fixed = sweep.get("fixed-order").y
    poisson = sweep.get("poisson-sync").y
    assert (fixed >= poisson).all()
    report("ext_policy_ablation", format_sweep(sweep))
