"""Freshness metrics (paper §2, Definitions 1–4).

Two families:

* **Analytic** metrics evaluate the closed-form time-averaged
  freshness of a schedule against a catalog:
  ``general_freshness`` (the Cho/Garcia-Molina objective — unweighted
  mean freshness) and ``perceived_freshness`` (this paper's objective
  — freshness weighted by access probability).
* **Empirical** metrics score concrete access observations:
  ``perceived_freshness_of_accesses`` is Definition 3 — the fraction
  of accesses that saw an up-to-date copy.

The identity behind Definition 4 — time-averaged perceived freshness
equals ``Σ pᵢ·F̄ᵢ`` — is what lets the scheduler optimize the analytic
form while users experience the empirical one; the simulator's
integration tests confirm the two agree.
"""

from __future__ import annotations

import numpy as np

from repro.core.freshness import FixedOrderPolicy, FreshnessModel
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

__all__ = [
    "element_freshness",
    "general_freshness",
    "perceived_freshness",
    "weighted_freshness",
    "perceived_freshness_of_accesses",
]

_DEFAULT_MODEL = FixedOrderPolicy()


def element_freshness(catalog: Catalog, frequencies: np.ndarray, *,
                      model: FreshnessModel | None = None) -> np.ndarray:
    """Per-element time-averaged freshness ``F̄(λᵢ, fᵢ)``.

    Args:
        catalog: Workload description.
        frequencies: Sync frequencies per element, ``f ≥ 0``, in
            syncs per period.
        model: Synchronization-policy model; Fixed-Order by default.

    Returns:
        Freshness values in ``[0, 1]``, shape ``(N,)``.
    """
    frequencies = _checked_frequencies(catalog, frequencies)
    chosen = model if model is not None else _DEFAULT_MODEL
    return chosen.freshness(catalog.change_rates, frequencies)


def weighted_freshness(catalog: Catalog, frequencies: np.ndarray,
                       weights: np.ndarray, *,
                       model: FreshnessModel | None = None) -> float:
    """Weighted mean freshness ``Σ wᵢ·F̄ᵢ / Σ wᵢ``.

    Args:
        catalog: Workload description.
        frequencies: Sync frequencies per element, in syncs per
            period.
        weights: Nonnegative weights with a positive sum.
        model: Synchronization-policy model; Fixed-Order by default.

    Returns:
        The weighted average freshness.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (catalog.n_elements,):
        raise ValidationError(
            f"weights shape {weights.shape} does not match catalog size "
            f"{catalog.n_elements}")
    if (weights < 0.0).any():
        raise ValidationError("weights must be nonnegative")
    total = weights.sum()
    if total <= 0.0:
        raise ValidationError("weights must have a positive sum")
    freshness = element_freshness(catalog, frequencies, model=model)
    return float(weights @ freshness / total)


def general_freshness(catalog: Catalog, frequencies: np.ndarray, *,
                      model: FreshnessModel | None = None) -> float:
    """Average freshness over elements (Definition 2; the GF objective).

    Args:
        catalog: Workload description.
        frequencies: Sync frequencies per element, in syncs per
            period.
        model: Synchronization-policy model; Fixed-Order by default.

    Returns:
        Mean of the per-element freshness values.
    """
    freshness = element_freshness(catalog, frequencies, model=model)
    return float(freshness.mean())


def perceived_freshness(catalog: Catalog, frequencies: np.ndarray, *,
                        model: FreshnessModel | None = None) -> float:
    """Time-averaged perceived freshness ``Σ pᵢ·F̄ᵢ`` (Definition 4).

    Args:
        catalog: Workload description (supplies the master profile).
        frequencies: Sync frequencies per element, in syncs per
            period.
        model: Synchronization-policy model; Fixed-Order by default.

    Returns:
        The perceived freshness the master profile would observe.
    """
    freshness = element_freshness(catalog, frequencies, model=model)
    return float(catalog.access_probabilities @ freshness)


def perceived_freshness_of_accesses(access_fresh: np.ndarray) -> float:
    """Perceived freshness of an observed access set (Definition 3).

    Args:
        access_fresh: Boolean (or 0/1) array — whether each access saw
            an up-to-date copy.

    Returns:
        The fraction of accesses that saw fresh data.

    Raises:
        ValidationError: For an empty access set.
    """
    observed = np.asarray(access_fresh)
    if observed.ndim != 1:
        raise ValidationError("access freshness must be 1-D")
    if observed.size == 0:
        raise ValidationError(
            "perceived freshness of an empty access set is undefined")
    return float(np.mean(observed.astype(float)))


def _checked_frequencies(catalog: Catalog,
                         frequencies: np.ndarray) -> np.ndarray:
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.shape != (catalog.n_elements,):
        raise ValidationError(
            f"frequencies shape {frequencies.shape} does not match catalog "
            f"size {catalog.n_elements}")
    if (frequencies < 0.0).any():
        raise ValidationError("sync frequencies must be nonnegative")
    return frequencies
