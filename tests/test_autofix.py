"""Tests for the freshlint autofix engine and the FL004/FL007
remediations.

The engine contract under test: fixes are span-based rewrites applied
bottom-up, overlapping edits defer to the next pass, and the whole
loop is **idempotent** — running ``--fix`` twice produces the same
bytes as running it once.  FL007's rewrite (library ``print`` →
``logging`` call) additionally must insert ``import logging`` exactly
once and leave semantics-changing calls (``file=``/``sep=``/starred
args) unfixed.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from freshlint.autofix import TextEdit, apply_edits, fix_file
from freshlint.cli import main as freshlint_main
from freshlint.engine import LintConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "freshlint"

STRICT = LintConfig(entry_point_globs=(), test_globs=(),
                    library_globs=("*",), solver_globs=("*",),
                    clock_globs=("*",))


# ---------------------------------------------------------------------------
# apply_edits mechanics


def test_apply_edits_bottom_up_keeps_spans_valid() -> None:
    source = "alpha\nbeta\ngamma\n"
    edits = [
        TextEdit(line=1, col=0, end_line=1, end_col=5,
                 replacement="ALPHA"),
        TextEdit(line=3, col=0, end_line=3, end_col=5,
                 replacement="GAMMA"),
    ]
    fixed, applied = apply_edits(source, edits)
    assert applied == 2
    assert fixed == "ALPHA\nbeta\nGAMMA\n"


def test_apply_edits_skips_overlapping_spans() -> None:
    source = "abcdef\n"
    edits = [
        TextEdit(line=1, col=0, end_line=1, end_col=4,
                 replacement="X"),
        TextEdit(line=1, col=2, end_line=1, end_col=6,
                 replacement="Y"),
    ]
    fixed, applied = apply_edits(source, edits)
    assert applied == 1
    assert fixed == "Xef\n"


def test_apply_edits_insertion_at_point() -> None:
    source = "def f():\n    pass\n"
    edits = [TextEdit(line=2, col=0, end_line=2, end_col=0,
                      replacement="    # note\n")]
    fixed, applied = apply_edits(source, edits)
    assert applied == 1
    assert fixed == "def f():\n    # note\n    pass\n"


# ---------------------------------------------------------------------------
# FL004 remediation end to end


@pytest.fixture()
def bad_units_copy(tmp_path: Path) -> Path:
    target = tmp_path / "bad_units.py"
    shutil.copy(FIXTURES / "bad_fl004_units.py", target)
    return target


def test_fix_clears_fl004_fixture(bad_units_copy: Path) -> None:
    report = fix_file(bad_units_copy, STRICT)
    assert report.changed
    assert report.applied > 0
    assert [v for v in report.remaining if v.code == "FL004"] == []
    # Every rewritten docstring states a unit.
    assert "per period" in bad_units_copy.read_text(encoding="utf-8")


def test_fix_is_idempotent(bad_units_copy: Path) -> None:
    fix_file(bad_units_copy, STRICT)
    once = bad_units_copy.read_text(encoding="utf-8")
    second = fix_file(bad_units_copy, STRICT)
    assert not second.changed
    assert second.applied == 0
    assert bad_units_copy.read_text(encoding="utf-8") == once


def test_diff_mode_does_not_write(bad_units_copy: Path) -> None:
    original = bad_units_copy.read_text(encoding="utf-8")
    report = fix_file(bad_units_copy, STRICT, write=False)
    assert report.changed
    assert bad_units_copy.read_text(encoding="utf-8") == original
    diff = report.diff(original)
    assert diff.startswith("---")
    assert "per period" in diff


def test_fixed_output_is_lint_clean_for_fixable_rules(
        bad_units_copy: Path) -> None:
    report = fix_file(bad_units_copy, STRICT)
    # The fixture seeds only FL004, all of which are fixable.
    assert report.remaining == ()


# ---------------------------------------------------------------------------
# FL007 remediation end to end


PRINTY_SOURCE = '''\
"""Library module seeded with FL007 violations."""

from __future__ import annotations


def solve(problem, verbose):
    print("solving", problem)
    print(problem)
    print()
    if verbose:
        print("done", file=None)
    return problem
'''


@pytest.fixture()
def printy_module(tmp_path: Path) -> Path:
    target = tmp_path / "printy.py"
    target.write_text(PRINTY_SOURCE, encoding="utf-8")
    return target


def test_fl007_fix_rewrites_prints_to_logging(
        printy_module: Path) -> None:
    report = fix_file(printy_module, STRICT)
    assert report.changed
    fixed = printy_module.read_text(encoding="utf-8")
    assert 'logging.getLogger(__name__).info("%s %s", ' \
           '"solving", problem)' in fixed
    assert "logging.getLogger(__name__).info(problem)" in fixed
    assert 'logging.getLogger(__name__).info("")' in fixed


def test_fl007_fix_inserts_import_once_after_future(
        printy_module: Path) -> None:
    fix_file(printy_module, STRICT)
    fixed = printy_module.read_text(encoding="utf-8")
    assert fixed.count("import logging") == 1
    # __future__ imports must stay first.
    assert fixed.index("from __future__") < fixed.index(
        "import logging")


def test_fl007_fix_skips_keyword_calls(printy_module: Path) -> None:
    report = fix_file(printy_module, STRICT)
    fixed = printy_module.read_text(encoding="utf-8")
    assert 'print("done", file=None)' in fixed
    remaining = [v for v in report.remaining if v.code == "FL007"]
    assert len(remaining) == 1


def test_fl007_fix_preserves_existing_logging_import(
        tmp_path: Path) -> None:
    target = tmp_path / "logged.py"
    target.write_text('import logging\n\n\n'
                      'def run(x):\n    print(x)\n    return x\n',
                      encoding="utf-8")
    fix_file(target, STRICT)
    fixed = target.read_text(encoding="utf-8")
    assert fixed.count("import logging") == 1
    assert "logging.getLogger(__name__).info(x)" in fixed


def test_fl007_fix_is_idempotent(printy_module: Path) -> None:
    fix_file(printy_module, STRICT)
    once = printy_module.read_text(encoding="utf-8")
    second = fix_file(printy_module, STRICT)
    assert not second.changed
    assert second.applied == 0
    assert printy_module.read_text(encoding="utf-8") == once


def test_fl007_fix_clears_shipped_fixture(tmp_path: Path) -> None:
    target = tmp_path / "bad_print.py"
    shutil.copy(FIXTURES / "bad_fl007_print.py", target)
    report = fix_file(target, STRICT)
    assert report.changed
    assert [v for v in report.remaining if v.code == "FL007"] == []


# ---------------------------------------------------------------------------
# CLI --fix / --diff


def _scratch_src_tree(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """A src/-shaped scratch tree seeded with the FL004 fixture.

    The scratch name must be neutral (no ``test_``) so the linter's
    full-path test-glob fallback does not exempt the seeded file.
    """
    root = tmp_path_factory.mktemp("fix_tree")
    target = root / "src" / "repro" / "units.py"
    target.parent.mkdir(parents=True)
    shutil.copy(FIXTURES / "bad_fl004_units.py", target)
    return root


def test_cli_fix_applies_and_exits_clean(
        tmp_path_factory: pytest.TempPathFactory,
        monkeypatch: pytest.MonkeyPatch) -> None:
    root = _scratch_src_tree(tmp_path_factory)
    monkeypatch.chdir(root)  # path globs resolve relative to cwd
    original = (root / "src" / "repro" / "units.py").read_text(
        encoding="utf-8")
    assert freshlint_main(["src", "--select", "FL004",
                           "--quiet"]) == 1
    assert freshlint_main(["src", "--select", "FL004", "--fix",
                           "--quiet"]) == 0
    fixed = (root / "src" / "repro" / "units.py").read_text(
        encoding="utf-8")
    assert fixed != original
    # Second --fix run: stable fixed point, nothing rewritten.
    assert freshlint_main(["src", "--select", "FL004", "--fix",
                           "--quiet"]) == 0
    assert (root / "src" / "repro" / "units.py").read_text(
        encoding="utf-8") == fixed


def test_cli_diff_previews_without_writing(
        tmp_path_factory: pytest.TempPathFactory,
        monkeypatch: pytest.MonkeyPatch,
        capsys: pytest.CaptureFixture) -> None:
    root = _scratch_src_tree(tmp_path_factory)
    monkeypatch.chdir(root)
    original = (root / "src" / "repro" / "units.py").read_text(
        encoding="utf-8")
    code = freshlint_main(["src", "--select", "FL004", "--fix",
                           "--diff", "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "+" in out and "per period" in out
    assert (root / "src" / "repro" / "units.py").read_text(
        encoding="utf-8") == original


def test_cli_diff_requires_fix(capsys: pytest.CaptureFixture) -> None:
    with pytest.raises(SystemExit) as excinfo:
        freshlint_main(["--diff"])
    assert excinfo.value.code == 2
