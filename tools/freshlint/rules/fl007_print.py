"""FL007 — no ``print`` in library code.

``src/repro`` is imported by the simulator, the benchmark harness and
(per the ROADMAP) eventually long-running services; writing to stdout
from a solver corrupts machine-readable output (the CLI's JSON mode,
benchmark CSVs) and cannot be routed or silenced.  Entry-point scripts
(``cli.py``, ``__main__.py``, ``examples/``, ``benchmarks/``) are the
places that talk to humans.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["NoPrintInLibrary"]


class NoPrintInLibrary(Rule):
    """Flag ``print(...)`` calls in importable library modules."""

    code = "FL007"
    name = "no-print-in-library"
    summary = "no print() in src/repro outside cli.py/__main__.py"

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_library or context.is_entry_point \
                or context.is_test:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "print":
                yield self.violation(
                    context, node,
                    "print() in library code; return the value, raise, "
                    "or use the logging module so output stays routable")
