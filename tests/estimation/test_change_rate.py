"""Tests for repro.estimation.change_rate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.estimation.change_rate import (
    ChangeObserver,
    bias_reduced_rate_estimate,
    mle_rate_estimate,
    naive_rate_estimate,
)


def observe_poisson(rng: np.random.Generator, rate: float,
                    interval: float, polls: int) -> tuple[int, int]:
    """Simulate polling a Poisson-updated element."""
    changed = rng.poisson(rate * interval, size=polls) > 0
    return polls, int(changed.sum())


class TestNaiveEstimate:
    def test_simple_ratio(self):
        estimate = naive_rate_estimate(np.array([10.0]), np.array([5.0]),
                                       interval=0.5)
        assert estimate == pytest.approx([1.0])

    def test_biased_low_for_fast_changers(self, rng):
        rate, interval = 5.0, 1.0  # multiple changes between polls
        polls, changes = observe_poisson(rng, rate, interval, 20_000)
        estimate = naive_rate_estimate(np.array([float(polls)]),
                                       np.array([float(changes)]),
                                       interval)
        assert estimate[0] < rate * 0.5

    def test_zero_polls_gives_zero(self):
        estimate = naive_rate_estimate(np.zeros(1), np.zeros(1), 1.0)
        assert estimate[0] == 0.0


class TestMleEstimate:
    @pytest.mark.parametrize("rate", [0.3, 1.0, 2.0])
    def test_recovers_true_rate(self, rng, rate):
        interval = 0.5
        polls, changes = observe_poisson(rng, rate, interval, 50_000)
        estimate = mle_rate_estimate(np.array([float(polls)]),
                                     np.array([float(changes)]),
                                     interval)
        assert estimate[0] == pytest.approx(rate, rel=0.05)

    def test_diverges_when_all_polls_saw_changes(self):
        estimate = mle_rate_estimate(np.array([10.0]), np.array([10.0]),
                                     1.0)
        assert np.isinf(estimate[0])

    def test_beats_naive_for_fast_changers(self, rng):
        rate, interval = 2.0, 1.0
        polls, changes = observe_poisson(rng, rate, interval, 50_000)
        n = np.array([float(polls)])
        k = np.array([float(changes)])
        mle = mle_rate_estimate(n, k, interval)[0]
        naive = naive_rate_estimate(n, k, interval)[0]
        assert abs(mle - rate) < abs(naive - rate)


class TestBiasReducedEstimate:
    def test_finite_at_saturation(self):
        estimate = bias_reduced_rate_estimate(np.array([10.0]),
                                              np.array([10.0]), 1.0)
        assert np.isfinite(estimate[0])
        assert estimate[0] > 0.0

    @pytest.mark.parametrize("rate", [0.5, 1.5])
    def test_recovers_true_rate(self, rng, rate):
        interval = 0.5
        polls, changes = observe_poisson(rng, rate, interval, 50_000)
        estimate = bias_reduced_rate_estimate(np.array([float(polls)]),
                                              np.array([float(changes)]),
                                              interval)
        assert estimate[0] == pytest.approx(rate, rel=0.05)

    def test_close_to_mle_away_from_saturation(self):
        n = np.array([1000.0])
        k = np.array([400.0])
        mle = mle_rate_estimate(n, k, 1.0)
        reduced = bias_reduced_rate_estimate(n, k, 1.0)
        assert reduced[0] == pytest.approx(mle[0], rel=0.01)


class TestValidation:
    def test_rejects_more_changes_than_polls(self):
        with pytest.raises(ValidationError):
            naive_rate_estimate(np.array([2.0]), np.array([3.0]), 1.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValidationError):
            mle_rate_estimate(np.array([-1.0]), np.array([0.0]), 1.0)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValidationError):
            bias_reduced_rate_estimate(np.array([1.0]), np.array([0.0]),
                                       0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            naive_rate_estimate(np.array([1.0, 2.0]), np.array([1.0]),
                                1.0)

    @given(st.integers(min_value=1, max_value=1000),
           st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=50)
    def test_estimators_nonnegative(self, polls, interval):
        n = np.array([float(polls)])
        for changes in (0, polls // 2, polls):
            k = np.array([float(changes)])
            assert naive_rate_estimate(n, k, interval)[0] >= 0.0
            assert bias_reduced_rate_estimate(n, k, interval)[0] >= 0.0


class TestChangeObserver:
    def test_records_and_estimates(self):
        observer = ChangeObserver(2)
        for _ in range(10):
            observer.record_poll(0, changed=True)
            observer.record_poll(1, changed=False)
        rates = observer.estimate_rates(1.0, method="bias-reduced")
        assert rates[0] > rates[1]
        assert rates[1] == pytest.approx(
            -np.log(10.5 / 10.5) / 1.0, abs=0.05)

    def test_default_rate_for_unpolled(self):
        observer = ChangeObserver(2)
        observer.record_poll(0, changed=True)
        rates = observer.estimate_rates(1.0, default_rate=7.0)
        assert rates[1] == 7.0

    def test_rejects_unknown_method(self):
        observer = ChangeObserver(1)
        with pytest.raises(ValidationError):
            observer.estimate_rates(1.0, method="bayesian")

    def test_rejects_bad_element(self):
        observer = ChangeObserver(1)
        with pytest.raises(ValidationError):
            observer.record_poll(1, changed=True)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            ChangeObserver(0)

    def test_closed_loop_recovery(self, rng):
        """Poll a simulated Poisson element and recover its rate."""
        observer = ChangeObserver(1)
        rate, interval = 1.2, 0.5
        for _ in range(20_000):
            observer.record_poll(0, changed=bool(
                rng.poisson(rate * interval) > 0))
        estimate = observer.estimate_rates(interval)[0]
        assert estimate == pytest.approx(rate, rel=0.05)
