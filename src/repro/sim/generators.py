"""Workload generators feeding the simulator (Figure 4's two inputs).

* :class:`UpdateGenerator` drives the source: each element is updated
  by an independent Poisson process at its catalog change rate
  (rates are per *period*; the generator converts to clock time).
* :class:`RequestGenerator` drives the mirror: a Poisson stream of
  user accesses whose element choice follows the master profile.

Both produce bulk :class:`~repro.sim.events.EventStream` tapes for a
whole horizon — statistically identical to step-by-step generation
but far faster, and trivially reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sim.events import EventKind, EventStream
from repro.workloads.catalog import Catalog

__all__ = ["UpdateGenerator", "RequestGenerator"]


class UpdateGenerator:
    """Poisson update processes for every element of a catalog.

    Args:
        catalog: Supplies per-element change rates (per period).
        period_length: Clock length of one period.
        rng: Seeded generator.
    """

    def __init__(self, catalog: Catalog, *, period_length: float = 1.0,
                 rng: np.random.Generator) -> None:
        if period_length <= 0.0:
            raise ValidationError(
                f"period_length must be > 0, got {period_length}")
        self._rates = catalog.change_rates / period_length  # per clock unit
        self._rng = rng

    def generate(self, horizon: float) -> EventStream:
        """All update events in ``[0, horizon)``.

        A Poisson process with rate r over a window of length H has
        Poisson(r·H) events at i.i.d. uniform instants; sampling that
        way is exact and vectorizes across elements.

        Args:
            horizon: Clock length of the simulated window, > 0.

        Returns:
            A time-sorted UPDATE stream.
        """
        if horizon <= 0.0:
            raise ValidationError(f"horizon must be > 0, got {horizon}")
        counts = self._rng.poisson(self._rates * horizon)
        total = int(counts.sum())
        elements = np.repeat(np.arange(self._rates.shape[0],
                                       dtype=np.int64), counts)
        times = self._rng.uniform(0.0, horizon, size=total)
        order = np.argsort(times, kind="stable")
        return EventStream(kind=EventKind.UPDATE, times=times[order],
                           elements=elements[order])


class RequestGenerator:
    """Poisson user-request stream following the master profile.

    Args:
        catalog: Supplies the master profile.
        rate: Total accesses per clock unit, > 0.
        rng: Seeded generator.
    """

    def __init__(self, catalog: Catalog, *, rate: float,
                 rng: np.random.Generator) -> None:
        if rate <= 0.0:
            raise ValidationError(f"rate must be > 0, got {rate}")
        self._probabilities = catalog.access_probabilities
        self._rate = rate
        self._rng = rng

    def generate(self, horizon: float) -> EventStream:
        """All access events in ``[0, horizon)``.

        Args:
            horizon: Clock length of the simulated window, > 0.

        Returns:
            A time-sorted ACCESS stream.
        """
        if horizon <= 0.0:
            raise ValidationError(f"horizon must be > 0, got {horizon}")
        count = int(self._rng.poisson(self._rate * horizon))
        times = np.sort(self._rng.uniform(0.0, horizon, size=count))
        elements = self._rng.choice(self._probabilities.shape[0],
                                    size=count, p=self._probabilities)
        return EventStream(kind=EventKind.ACCESS, times=times,
                           elements=elements.astype(np.int64))
