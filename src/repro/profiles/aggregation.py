"""Master-profile aggregation (paper §2).

"The mirror collects all the user profiles and aggregates them into
one master profile that is a combined frequency distribution for all
users."  Aggregation is an importance-weighted mixture: user u with
access share proportional to their importance contributes
``importance_u · p_u`` to the combined frequency distribution, which
is then renormalized.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.profiles.profile import UserProfile

__all__ = ["aggregate_profiles", "profile_divergence"]


def aggregate_profiles(profiles: Iterable[UserProfile]) -> UserProfile:
    """Combine user profiles into the master profile.

    Args:
        profiles: The user profiles; all must cover the same number of
            elements.  Each profile's ``importance`` scales its
            contribution.

    Returns:
        The master :class:`UserProfile` (importance 1.0).

    Raises:
        ValidationError: If no profiles are given or sizes disagree.
    """
    collected: Sequence[UserProfile] = list(profiles)
    if not collected:
        raise ValidationError("cannot aggregate zero profiles")
    n = collected[0].n_elements
    combined = np.zeros(n)
    for profile in collected:
        if profile.n_elements != n:
            raise ValidationError(
                f"profile {profile.name!r} covers {profile.n_elements} "
                f"elements, expected {n}")
        combined += profile.importance * profile.probabilities
    return UserProfile.from_weights(combined, name="master")


def profile_divergence(first: UserProfile, second: UserProfile) -> float:
    """Total-variation distance between two profiles.

    A convenient scalar for "how much did interest drift" — the
    re-planning triggers in long-running mirrors key off it.

    Args:
        first: One profile.
        second: Another profile of the same size.

    Returns:
        ``½·Σ|p − q|`` in ``[0, 1]``.
    """
    if first.n_elements != second.n_elements:
        raise ValidationError(
            f"profiles cover {first.n_elements} and {second.n_elements} "
            "elements; they must match")
    return float(0.5 * np.abs(first.probabilities
                              - second.probabilities).sum())
