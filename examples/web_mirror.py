"""Web-mirror scenario: 50 000 heavy-tailed pages, unknown change rates.

The workload the paper's introduction motivates: a mirror of a busy
web site.  Page popularity is Zipf (θ = 1.2, within the range
measured on real sites), page sizes are Pareto (shape 1.1 — a few
huge media files, many small pages), and — realistically — big media
files rarely change while small dynamic pages change often (sizes
reverse-aligned with change rates).

The mirror does NOT know the true change rates.  It bootstraps them
the way the paper's references do: poll every page at a uniform
interval for a warm-up phase, feed the observed changed/unchanged
bits to the Cho/Garcia-Molina bias-reduced estimator, and then plan
with the *estimated* rates.  Scheduling uses the scalable pipeline:
PF/s-partitioning, k-means refinement, fixed-bandwidth allocation.

Run:  python examples/web_mirror.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Catalog,
    PartitionedFreshener,
    PartitioningStrategy,
    PerceivedFreshener,
    perceived_freshness,
)
from repro.estimation import bias_reduced_rate_estimate
from repro.workloads import pareto_sizes, zipf_probabilities

N_PAGES = 50_000
BANDWIDTH = 25_000.0  # bandwidth units per period
WARMUP_POLLS = 40
WARMUP_INTERVAL = 0.25  # periods between warm-up polls


def build_web_catalog(rng: np.random.Generator) -> Catalog:
    """Popularity, change rates and sizes for a synthetic web site."""
    popularity = zipf_probabilities(N_PAGES, theta=1.2)
    # Gamma-like change rates with a long tail: dynamic pages update
    # many times per period, static media almost never.
    rates = rng.gamma(0.6, 3.0, size=N_PAGES) + 1e-4
    sizes = pareto_sizes(N_PAGES, shape=1.1, mean=1.0, rng=rng)
    # Realistic alignment: the biggest objects change the least.
    rate_order = np.argsort(-rates)
    sizes_sorted = np.sort(sizes)
    aligned_sizes = np.empty(N_PAGES)
    aligned_sizes[rate_order] = sizes_sorted
    return Catalog(access_probabilities=popularity, change_rates=rates,
                   sizes=aligned_sizes)


def estimate_change_rates(catalog: Catalog,
                          rng: np.random.Generator) -> np.ndarray:
    """Warm-up phase: uniform polling + censored-Poisson estimation."""
    change_probability = 1.0 - np.exp(-catalog.change_rates
                                      * WARMUP_INTERVAL)
    changed = rng.uniform(size=(WARMUP_POLLS, catalog.n_elements)) \
        < change_probability
    polls = np.full(catalog.n_elements, float(WARMUP_POLLS))
    changes = changed.sum(axis=0).astype(float)
    return bias_reduced_rate_estimate(polls, changes, WARMUP_INTERVAL)


def main() -> None:
    rng = np.random.default_rng(7)
    catalog = build_web_catalog(rng)
    print(f"web mirror: {N_PAGES} pages, "
          f"mean rate {catalog.change_rates.mean():.2f}/period, "
          f"largest page {catalog.sizes.max():.0f}x the mean size")

    estimated_rates = estimate_change_rates(catalog, rng)
    believed = catalog.with_change_rates(estimated_rates)
    error = np.abs(estimated_rates - catalog.change_rates)
    print(f"warm-up estimation: median rate error "
          f"{np.median(error):.3f} updates/period")

    # Scalable scheduling against the *estimated* rates.
    planner = PartitionedFreshener(
        150, strategy=PartitioningStrategy.PF_OVER_SIZE,
        cluster_iterations=5, allocation="fba")
    plan = planner.plan(believed, BANDWIDTH)
    # Score against the TRUE rates — what users actually experience.
    achieved = perceived_freshness(catalog, plan.frequencies)

    # Reference points.
    oracle = PerceivedFreshener().plan(catalog, BANDWIDTH)
    uniform = np.full(N_PAGES, BANDWIDTH / catalog.sizes.sum())

    print()
    print("perceived freshness (scored on true rates):")
    print(f"  uniform polling          : "
          f"{perceived_freshness(catalog, uniform):.4f}")
    print(f"  heuristic, estimated λ   : {achieved:.4f}")
    print(f"  exact optimum, true λ    : {oracle.perceived_freshness:.4f}")
    print()
    print(f"heuristic runs over {plan.metadata['n_partitions']} "
          f"partitions after {plan.metadata['cluster_iterations']} "
          "k-means iterations; bandwidth spent: "
          f"{plan.bandwidth:.0f}/{BANDWIDTH:.0f}")


if __name__ == "__main__":
    main()
