"""Quickstart: plan a profile-aware refresh schedule and simulate it.

A mirror holds three objects with very different volatility and very
different user interest.  We plan the optimal Perceived-Freshening
schedule under a bandwidth budget, compare it against the
profile-blind General-Freshening baseline, and verify both with the
discrete-event simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Catalog,
    GeneralFreshener,
    PerceivedFreshener,
    Simulation,
)


def main() -> None:
    # Three mirrored objects: a hot volatile page, a warm slow page,
    # and a cold near-static page.
    catalog = Catalog(
        access_probabilities=np.array([0.6, 0.3, 0.1]),
        change_rates=np.array([5.0, 1.0, 0.2]),  # updates per period
    )
    bandwidth = 3.0  # syncs per period the mirror can afford

    pf_plan = PerceivedFreshener().plan(catalog, bandwidth)
    gf_plan = GeneralFreshener().plan(catalog, bandwidth)

    print("Sync frequencies (per period):")
    print(f"  profile-aware (PF): {np.round(pf_plan.frequencies, 3)}")
    print(f"  profile-blind (GF): {np.round(gf_plan.frequencies, 3)}")
    print()
    print("Analytic perceived freshness (what users will see):")
    print(f"  PF technique: {pf_plan.perceived_freshness:.4f}")
    print(f"  GF technique: {gf_plan.perceived_freshness:.4f}")
    print()

    # Verify with the simulator: replay Poisson updates, the timed
    # fixed-order schedule, and a Poisson user request stream.
    for name, plan in (("PF", pf_plan), ("GF", gf_plan)):
        sim = Simulation(catalog, plan.frequencies, request_rate=500.0,
                         rng=np.random.default_rng(42))
        result = sim.run(n_periods=200)
        analytic, _ = result.analytic()
        print(f"{name} simulated: {result.n_accesses} accesses, "
              f"{result.monitored_perceived_freshness:.4f} saw fresh "
              f"data (analytic {analytic:.4f}, "
              f"{result.wasted_sync_fraction:.1%} of polls wasted)")

    assert pf_plan.perceived_freshness >= gf_plan.perceived_freshness


if __name__ == "__main__":
    main()
