"""Tests for correlated (relay-tree) fault models.

The load-bearing properties: descendant closure (an element is dark
exactly when an ancestor is inside a window), per-hop recovery
debounce, and the zero-draw CRN contract that keeps fault traces
independent of poll order and worker count.  A hypothesis sweep
checks the closure against an independent reimplementation across
random trees, outages and query times.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.faults.correlated import CorrelatedFaultModel, NodeOutage
from repro.faults.model import PollOutcome
from repro.faults.topology import Topology


def tree(n_elements: int = 8, **kwargs) -> Topology:
    defaults = dict(n_relays=2, edges_per_relay=2, seed=5)
    defaults.update(kwargs)
    return Topology.build(n_elements, **defaults)


class TestValidation:
    def test_node_outage_rejects_the_source(self):
        with pytest.raises(ValidationError):
            NodeOutage(node=0, start=0.0, end=1.0)

    def test_node_outage_rejects_empty_windows(self):
        with pytest.raises(ValidationError):
            NodeOutage(node=1, start=2.0, end=2.0)

    def test_scheduled_node_must_exist(self):
        topology = tree()
        with pytest.raises(ValidationError):
            CorrelatedFaultModel(topology, scheduled=(
                NodeOutage(node=topology.n_nodes, start=0.0, end=1.0),))

    def test_sampling_parameters_are_checked(self):
        topology = tree()
        with pytest.raises(ValidationError):
            CorrelatedFaultModel(topology, random_rate=-0.1)
        with pytest.raises(ValidationError):
            CorrelatedFaultModel(topology, mean_duration=0.0)
        with pytest.raises(ValidationError):
            CorrelatedFaultModel(topology, random_rate=0.5, horizon=0.0)
        with pytest.raises(ValidationError):
            CorrelatedFaultModel(topology, recovery_debounce=-1.0)


class TestDescendantClosure:
    def test_relay_outage_darkens_exactly_its_subtree(self):
        topology = tree(8)
        relay = topology.root_children[0]
        model = CorrelatedFaultModel(topology, scheduled=(
            NodeOutage(node=relay, start=2.0, end=5.0),))
        inside = model.unreachable_elements(3.0)
        assert np.array_equal(inside,
                              topology.descendant_elements(relay))
        assert not model.unreachable_elements(1.0).any()
        assert not model.unreachable_elements(5.5).any()

    def test_edge_outage_darkens_only_its_elements(self):
        topology = tree(8)
        edge = int(topology.element_edge[0])
        model = CorrelatedFaultModel(topology, scheduled=(
            NodeOutage(node=edge, start=0.0, end=1.0),))
        assert np.array_equal(model.unreachable_elements(0.5),
                              topology.element_edge == edge)

    def test_window_is_start_inclusive_end_exclusive(self):
        topology = tree(8)
        relay = topology.root_children[0]
        model = CorrelatedFaultModel(topology, scheduled=(
            NodeOutage(node=relay, start=2.0, end=5.0),))
        element = int(np.flatnonzero(
            topology.descendant_elements(relay))[0])
        assert model.element_unreachable(element, 2.0)
        assert not model.element_unreachable(element, 5.0)

    def test_debounce_extends_recovery_per_hop_below(self):
        topology = tree(8)
        relay = topology.root_children[0]
        model = CorrelatedFaultModel(
            topology,
            scheduled=(NodeOutage(node=relay, start=2.0, end=5.0),),
            recovery_debounce=0.5)
        element = int(np.flatnonzero(
            topology.descendant_elements(relay))[0])
        # The edge cache is one hop below the failed relay: rejoin is
        # pushed out by one debounce interval.
        assert model.element_unreachable(element, 5.3)
        assert not model.element_unreachable(element, 5.6)

    def test_edge_outage_gets_no_debounce(self):
        topology = tree(8)
        edge = int(topology.element_edge[0])
        model = CorrelatedFaultModel(
            topology,
            scheduled=(NodeOutage(node=edge, start=0.0, end=1.0),),
            recovery_debounce=0.5)
        assert not model.element_unreachable(0, 1.1)

    def test_node_down_reports_the_raw_window(self):
        topology = tree(8)
        relay = topology.root_children[0]
        model = CorrelatedFaultModel(topology, scheduled=(
            NodeOutage(node=relay, start=2.0, end=5.0),),
            recovery_debounce=0.5)
        assert model.node_down(relay, 3.0)
        assert not model.node_down(relay, 5.2)
        assert not model.node_down(topology.root_children[1], 3.0)


class TestDeterminism:
    def test_outcome_consumes_zero_draws(self):
        topology = tree(8)
        model = CorrelatedFaultModel(topology, scheduled=(
            NodeOutage(node=topology.root_children[0], start=0.0,
                       end=4.0),))
        rng = np.random.default_rng(11)
        before = rng.bit_generator.state
        for element in range(8):
            for time in (0.5, 1.5, 7.0):
                model.outcome(element, time, rng)
        assert rng.bit_generator.state == before

    def test_outcome_reflects_the_closure(self):
        topology = tree(8)
        relay = topology.root_children[0]
        model = CorrelatedFaultModel(topology, scheduled=(
            NodeOutage(node=relay, start=1.0, end=2.0),))
        rng = np.random.default_rng(0)
        dark = int(np.flatnonzero(
            topology.descendant_elements(relay))[0])
        lit = int(np.flatnonzero(
            ~topology.descendant_elements(relay))[0])
        assert model.outcome(dark, 1.5, rng) is PollOutcome.UNREACHABLE
        assert model.outcome(lit, 1.5, rng) is PollOutcome.OK
        assert model.outcome(dark, 2.5, rng) is PollOutcome.OK

    def test_sampled_outages_depend_only_on_the_seed(self):
        topology = tree(8)
        build = lambda: CorrelatedFaultModel(  # noqa: E731
            topology, random_rate=0.4, mean_duration=1.5, horizon=20.0,
            seed=7)
        assert build().outages == build().outages
        other = CorrelatedFaultModel(topology, random_rate=0.4,
                                     mean_duration=1.5, horizon=20.0,
                                     seed=8)
        assert other.outages != build().outages

    def test_outages_are_sorted_by_start(self):
        topology = tree(8)
        model = CorrelatedFaultModel(topology, random_rate=0.5,
                                     mean_duration=1.0, horizon=30.0,
                                     seed=3)
        starts = [outage.start for outage in model.outages]
        assert starts == sorted(starts)

    def test_topology_accessor(self):
        topology = tree(8)
        model = CorrelatedFaultModel(topology)
        assert model.topology is topology


@st.composite
def closure_cases(draw):
    n_relays = draw(st.integers(min_value=1, max_value=3))
    edges_per_relay = draw(st.integers(min_value=1, max_value=3))
    n_elements = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=99))
    topology = Topology.build(n_elements, n_relays=n_relays,
                              edges_per_relay=edges_per_relay,
                              seed=seed)
    node = draw(st.integers(min_value=1,
                            max_value=topology.n_nodes - 1))
    start = draw(st.floats(min_value=0.0, max_value=10.0))
    duration = draw(st.floats(min_value=0.1, max_value=5.0))
    debounce = draw(st.sampled_from([0.0, 0.25, 1.0]))
    time = draw(st.floats(min_value=-1.0, max_value=20.0))
    return topology, node, start, duration, debounce, time


class TestClosureSweep:
    @settings(max_examples=120, deadline=None)
    @given(closure_cases())
    def test_closure_matches_an_independent_path_walk(self, case):
        """For any tree, outage and query time, an element is dark
        exactly when the failed node sits on its path and the time
        falls inside the hop-debounced window."""
        topology, node, start, duration, debounce, time = case
        model = CorrelatedFaultModel(
            topology,
            scheduled=(NodeOutage(node=node, start=start,
                                  end=start + duration),),
            recovery_debounce=debounce)
        mask = model.unreachable_elements(time)
        for element in range(topology.n_elements):
            path = topology.path_of_element(element)
            if node in path:
                hops_below = len(path) - 1 - path.index(node)
                end = start + duration + debounce * hops_below
                expected = start <= time < end
            else:
                expected = False
            assert mask[element] == expected
            assert model.element_unreachable(element, time) == expected
