"""Time-To-Live freshness estimation (ref [7], web cache coherence).

A TTL declares how long a fetched copy should be *assumed* fresh.
For a Poisson-updated element the probability the copy is still fresh
``t`` after a sync is ``e^(−λt)``, so:

* :func:`ttl_for_confidence` — the TTL guaranteeing a target
  freshness probability: ``t = −ln(confidence)/λ``;
* :func:`rate_from_ttl` — the inverse, recovering an implied change
  rate from a server-declared TTL and the convention that a copy is
  "probably fresh" within it;
* :func:`expected_fresh_probability` — the survival curve itself.

These conversions let TTL metadata (HTTP ``Expires``-style hints) be
folded into the catalog's change-rate vector when no poll history
exists yet.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["ttl_for_confidence", "rate_from_ttl",
           "expected_fresh_probability"]


def expected_fresh_probability(change_rates: np.ndarray,
                               age: float) -> np.ndarray:
    """Probability a copy is still fresh ``age`` after its last sync.

    Args:
        change_rates: Poisson change rates λ ≥ 0, in changes per
            period.
        age: Time since the last sync, in periods, ≥ 0.

    Returns:
        ``e^(−λ·age)`` per element.
    """
    lam = np.asarray(change_rates, dtype=float)
    if (lam < 0.0).any():
        raise ValidationError("change rates must be nonnegative")
    if age < 0.0:
        raise ValidationError(f"age must be >= 0, got {age}")
    return np.exp(-lam * age)


def ttl_for_confidence(change_rates: np.ndarray,
                       confidence: float) -> np.ndarray:
    """The TTL after which freshness confidence drops to ``confidence``.

    Args:
        change_rates: Poisson change rates λ ≥ 0, in changes per
            period.
        confidence: Required freshness probability in (0, 1).

    Returns:
        ``−ln(confidence)/λ`` per element (``inf`` for λ = 0).
    """
    lam = np.asarray(change_rates, dtype=float)
    if (lam < 0.0).any():
        raise ValidationError("change rates must be nonnegative")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}")
    with np.errstate(divide="ignore"):
        return np.where(lam > 0.0,
                        -np.log(confidence) / np.maximum(lam, 1e-300),
                        np.inf)


def rate_from_ttl(ttls: np.ndarray, *, confidence: float = 0.5,
                  ) -> np.ndarray:
    """Implied change rate from declared TTLs.

    Interprets a TTL as "freshness probability is ``confidence`` at
    expiry", giving ``λ = −ln(confidence)/TTL``.

    Args:
        ttls: Declared TTLs, > 0 (``inf`` allowed: never changes).
        confidence: The freshness probability the TTL is assumed to
            encode at expiry, in (0, 1).

    Returns:
        Per-element rate estimates (0 for infinite TTLs).
    """
    ttls = np.asarray(ttls, dtype=float)
    if (ttls <= 0.0).any():
        raise ValidationError("TTLs must be strictly positive")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}")
    finite = np.isfinite(ttls)
    rates = np.zeros_like(ttls)
    rates[finite] = -np.log(confidence) / ttls[finite]
    return rates
