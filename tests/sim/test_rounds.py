"""Tests for repro.sim.rounds — round-based policy simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import crawler_comparison
from repro.errors import SimulationError, ValidationError
from repro.sim.rounds import (
    RandomPollPolicy,
    SamplingCrawlerPolicy,
    SchedulePolicy,
    simulate_rounds,
)
from repro.workloads.catalog import Catalog
from repro.workloads.presets import ExperimentSetup, build_catalog


@pytest.fixture
def catalog():
    return Catalog(access_probabilities=np.array([0.5, 0.3, 0.2]),
                   change_rates=np.array([3.0, 1.0, 0.2]))


class TestSchedulePolicy:
    def test_integer_frequencies_poll_every_round(self):
        policy = SchedulePolicy(np.array([2.0, 1.0, 0.0]))
        rng = np.random.default_rng(0)
        polls = policy.choose(0, rng)
        counts = np.bincount(polls, minlength=3)
        assert counts.tolist() == [2, 1, 0]

    def test_fractional_frequencies_accumulate(self):
        policy = SchedulePolicy(np.array([0.5]))
        rng = np.random.default_rng(0)
        first = policy.choose(0, rng)
        second = policy.choose(1, rng)
        assert first.size + second.size == 1  # one poll per 2 rounds

    def test_long_run_rate_matches(self):
        freqs = np.array([0.3, 1.7, 0.0])
        policy = SchedulePolicy(freqs)
        rng = np.random.default_rng(0)
        total = np.zeros(3)
        rounds = 100
        for round_index in range(rounds):
            polls = policy.choose(round_index, rng)
            total += np.bincount(polls, minlength=3)
        assert np.allclose(total / rounds, freqs, atol=0.02)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SchedulePolicy(np.array([-1.0]))
        with pytest.raises(ValidationError):
            SchedulePolicy(np.ones((2, 2)))


class TestRandomPollPolicy:
    def test_budget_and_uniqueness(self):
        policy = RandomPollPolicy(20, budget=5)
        polls = policy.choose(0, np.random.default_rng(0))
        assert polls.size == 5
        assert np.unique(polls).size == 5

    def test_budget_clipped_to_catalog(self):
        policy = RandomPollPolicy(3, budget=10)
        polls = policy.choose(0, np.random.default_rng(0))
        assert polls.size == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            RandomPollPolicy(0, budget=1)
        with pytest.raises(ValidationError):
            RandomPollPolicy(5, budget=0)


class TestSamplingCrawlerPolicy:
    def test_stays_within_budget(self):
        server_of = np.arange(30) % 3
        policy = SamplingCrawlerPolicy(server_of, sample_size=2,
                                       budget=12,
                                       rng=np.random.default_rng(0))
        polls = policy.choose(0, np.random.default_rng(1))
        assert polls.size <= 12
        assert np.unique(polls).size == polls.size

    def test_validation(self):
        with pytest.raises(ValidationError):
            SamplingCrawlerPolicy(np.arange(4) % 2, sample_size=1,
                                  budget=0,
                                  rng=np.random.default_rng(0))


class TestSimulateRounds:
    def test_full_polling_is_nearly_fresh(self, catalog):
        # Poll everything every round: only same-round updates that
        # precede an access can be stale.
        policy = SchedulePolicy(np.array([1.0, 1.0, 1.0]))
        result = simulate_rounds(catalog, policy, n_rounds=100,
                                 requests_per_round=50.0,
                                 rng=np.random.default_rng(0))
        assert result.perceived_freshness > 0.3
        assert result.n_polls == 300

    def test_no_polling_goes_stale(self, catalog):
        policy = SchedulePolicy(np.zeros(3))
        result = simulate_rounds(catalog, policy, n_rounds=60,
                                 requests_per_round=50.0,
                                 rng=np.random.default_rng(0))
        assert result.perceived_freshness < 0.2
        assert result.n_polls == 0

    def test_more_polling_is_fresher(self, catalog):
        rng_seed = 7
        sparse = simulate_rounds(
            catalog, SchedulePolicy(np.full(3, 0.25)), n_rounds=200,
            requests_per_round=30.0,
            rng=np.random.default_rng(rng_seed))
        dense = simulate_rounds(
            catalog, SchedulePolicy(np.full(3, 1.0)), n_rounds=200,
            requests_per_round=30.0,
            rng=np.random.default_rng(rng_seed))
        assert dense.perceived_freshness > sparse.perceived_freshness

    def test_budget_enforced(self, catalog):
        policy = SchedulePolicy(np.array([5.0, 5.0, 5.0]))
        with pytest.raises(SimulationError):
            simulate_rounds(catalog, policy, n_rounds=2,
                            requests_per_round=10.0,
                            rng=np.random.default_rng(0),
                            poll_budget=3)

    def test_validation(self, catalog):
        policy = SchedulePolicy(np.ones(3))
        with pytest.raises(ValidationError):
            simulate_rounds(catalog, policy, n_rounds=0,
                            requests_per_round=10.0,
                            rng=np.random.default_rng(0))
        with pytest.raises(ValidationError):
            simulate_rounds(catalog, policy, n_rounds=5,
                            requests_per_round=0.0,
                            rng=np.random.default_rng(0))


class TestCrawlerComparison:
    def test_knowledge_hierarchy(self):
        """PF (full knowledge) >= sampling crawler (sampled
        knowledge) >= random polling (no knowledge)."""
        setup = ExperimentSetup(n_objects=120,
                                updates_per_period=240.0,
                                syncs_per_period=60.0, theta=1.0,
                                update_std_dev=1.0)
        sweep = crawler_comparison(setup=setup, n_rounds=50,
                                   requests_per_round=1500.0, seed=0)
        scores = sweep.notes["scores"]
        assert scores["PF_SCHEDULE"] > scores["RANDOM_POLLING"]
        assert scores["SAMPLING_CRAWLER"] > scores["RANDOM_POLLING"]
