"""Correlated faults driven through a relay-tree dependency graph.

The flat :class:`~repro.faults.model.OutageWindow` names elements
directly; real outages hit *nodes* — a relay dies and every edge
cache below it goes dark at once.  :class:`CorrelatedFaultModel`
expresses exactly that: outage windows attach to topology nodes, and
an element is UNREACHABLE whenever any ancestor on its root-to-edge
path is inside a window (descendant closure).  Recovery is staggered
per hop — an edge two hops below a recovered relay rejoins
``2 × recovery_debounce`` later than the relay itself, the way real
caches re-establish sessions down the tree.

Determinism: random node outages are **pre-sampled at construction**
from a ``SeedSequence``-derived generator, in fixed node order, so
:meth:`CorrelatedFaultModel.outcome` consumes *zero* draws from the
channel's generator.  The fault trace therefore depends only on the
model's own seed — never on poll order, retry counts, or worker
count — which is what keeps relay-cascade runs bit-identical across
``--jobs 1`` and ``--jobs 4``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.faults.model import FaultModel, PollOutcome
from repro.faults.topology import Topology

__all__ = ["CorrelatedFaultModel", "NodeOutage"]


@dataclass(frozen=True)
class NodeOutage:
    """A timed outage of one topology node.

    While the window is open the node — and by descendant closure,
    every element whose path crosses it — is unreachable.

    Attributes:
        node: Topology node id that is down (>= 1; the source cannot
            fail).
        start: Window start, in simulated clock time (period units).
        end: Window end (exclusive), in period units, > ``start``.
    """

    node: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.node < 1:
            raise ValidationError(
                f"node must be >= 1 (the source cannot fail), got "
                f"{self.node}")
        if self.end <= self.start:
            raise ValidationError(
                f"outage window must have end > start, got "
                f"[{self.start}, {self.end})")


class CorrelatedFaultModel(FaultModel):
    """Node outages propagated to every descendant element.

    Combines explicitly ``scheduled`` windows with optionally sampled
    random ones (a per-node Poisson outage process over a fixed
    horizon).  All sampling happens here, at construction, from the
    model's own seed — :meth:`outcome` is a pure table lookup that
    consumes no draws, so the channel's CRN stream is untouched and
    fault draws cannot diverge across schedules or worker counts.

    Because outages are node-level, failures are *correlated by
    construction*: a relay window makes every element below it
    UNREACHABLE for the same interval, which no per-element model can
    express.

    Args:
        topology: The relay tree the outages propagate through.
        scheduled: Deterministic node outage windows.
        random_rate: Expected random outages per node per period
            (dimensionless rate), >= 0; 0 disables sampling.
        mean_duration: Mean sampled outage duration, in period
            units, > 0.
        horizon: Sampling horizon, in period units (windows start in
            ``[0, horizon)``), > 0 when sampling.
        seed: Seed for the sampling generator (dimensionless).
        recovery_debounce: Extra unreachable time per hop between the
            failed node and an element's edge cache, in period
            units, >= 0 — deeper descendants rejoin later.
    """

    def __init__(self, topology: Topology, *,
                 scheduled: tuple[NodeOutage, ...] = (),
                 random_rate: float = 0.0,
                 mean_duration: float = 1.0,
                 horizon: float = 0.0,
                 seed: int = 0,
                 recovery_debounce: float = 0.0) -> None:
        if random_rate < 0.0:
            raise ValidationError(
                f"random_rate must be >= 0, got {random_rate}")
        if mean_duration <= 0.0:
            raise ValidationError(
                f"mean_duration must be > 0, got {mean_duration}")
        if random_rate > 0.0 and horizon <= 0.0:
            raise ValidationError(
                f"horizon must be > 0 when sampling, got {horizon}")
        if recovery_debounce < 0.0:
            raise ValidationError(
                f"recovery_debounce must be >= 0, got "
                f"{recovery_debounce}")
        for outage in scheduled:
            if outage.node >= topology.n_nodes:
                raise ValidationError(
                    f"scheduled outage names node {outage.node}, "
                    f"outside [1, {topology.n_nodes})")
        self._topology = topology
        self._debounce = recovery_debounce
        outages = list(scheduled)
        if random_rate > 0.0:
            outages.extend(self._sample(topology, random_rate,
                                        mean_duration, horizon, seed))
        self._outages = tuple(sorted(
            outages, key=lambda o: (o.start, o.node, o.end)))
        # Per-element unreachable windows, closed over ancestors and
        # extended by the per-hop recovery debounce.
        windows: list[tuple[tuple[float, float], ...]] = []
        for element in range(topology.n_elements):
            path = topology.path_of_element(element)
            spans: list[tuple[float, float]] = []
            for outage in self._outages:
                if outage.node not in path:
                    continue
                hops_below = len(path) - 1 - path.index(outage.node)
                spans.append((outage.start,
                              outage.end + self._debounce * hops_below))
            windows.append(tuple(spans))
        self._windows = tuple(windows)

    @staticmethod
    def _sample(topology: Topology, rate: float, mean_duration: float,
                horizon: float, seed: int) -> list[NodeOutage]:
        # Fixed node-order sampling from a dedicated generator: the
        # draw sequence depends only on (topology shape, seed), never
        # on how the model is later queried.
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        sampled: list[NodeOutage] = []
        for node in range(1, topology.n_nodes):
            count = int(rng.poisson(rate * horizon))
            if count == 0:
                continue
            starts = np.sort(rng.uniform(0.0, horizon, size=count))
            durations = rng.exponential(mean_duration, size=count)
            for start, duration in zip(starts.tolist(),
                                       durations.tolist()):
                sampled.append(NodeOutage(node=node, start=start,
                                          end=start + duration))
        return sampled

    @property
    def topology(self) -> Topology:
        """The relay tree the outages propagate through."""
        return self._topology

    @property
    def outages(self) -> tuple[NodeOutage, ...]:
        """All node outage windows (scheduled + sampled), sorted by
        start time."""
        return self._outages

    def node_down(self, node: int, time: float) -> bool:
        """Whether ``node`` itself is inside an outage window at
        simulated ``time`` (period units), before descendant closure
        or debounce."""
        return any(o.node == node and o.start <= time < o.end
                   for o in self._outages)

    def element_unreachable(self, element: int, time: float) -> bool:
        """Whether any ancestor outage makes ``element`` dark.

        Args:
            element: Element index.
            time: Simulated clock time, in period units.

        Returns:
            True when ``time`` falls inside any (debounce-extended)
            window of a node on the element's path.
        """
        return any(start <= time < end
                   for start, end in self._windows[element])

    def unreachable_elements(self, time: float) -> np.ndarray:
        """Boolean unreachable mask over all elements at ``time``
        (simulated clock, period units)."""
        mask = np.zeros(self._topology.n_elements, dtype=bool)
        for element in range(self._topology.n_elements):
            if self.element_unreachable(element, time):
                mask[element] = True
        return mask

    def outcome(self, element: int, time: float,
                rng: np.random.Generator) -> PollOutcome:
        """Look up the attempt outcome; consumes **zero** draws.

        The channel's generator is accepted (the :class:`FaultModel`
        contract) but never used — all randomness was spent at
        construction.
        """
        if self.element_unreachable(element, time):
            return PollOutcome.UNREACHABLE
        return PollOutcome.OK
