"""FL004-clean docstrings: every dimensioned parameter has units."""


def schedule(change_rates, bandwidth):
    """Allocate the budget across elements.

    Args:
        change_rates: Poisson rates, in changes per period.
        bandwidth: Budget, in size units per period.
    """
    return change_rates * 0 + bandwidth


def _rescale(frequencies):
    # Private helpers are out of scope for FL004.
    return frequencies * 2.0
