"""Tests for the simulator components: events, source, mirror."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError, ValidationError
from repro.sim.events import EventKind, EventStream, merge_streams
from repro.sim.mirror import Mirror
from repro.sim.source import Source


class TestEventStream:
    def test_valid_stream(self):
        stream = EventStream(kind=EventKind.UPDATE,
                             times=np.array([0.0, 1.0]),
                             elements=np.array([0, 1]))
        assert len(stream) == 2

    def test_rejects_unsorted(self):
        with pytest.raises(ValidationError):
            EventStream(kind=EventKind.SYNC, times=np.array([1.0, 0.0]),
                        elements=np.array([0, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            EventStream(kind=EventKind.SYNC, times=np.array([1.0]),
                        elements=np.array([0, 1]))


class TestMergeStreams:
    def test_time_ordering(self):
        updates = EventStream(kind=EventKind.UPDATE,
                              times=np.array([0.5, 2.0]),
                              elements=np.array([0, 0]))
        syncs = EventStream(kind=EventKind.SYNC,
                            times=np.array([1.0]),
                            elements=np.array([0]))
        times, elements, kinds = merge_streams([updates, syncs])
        assert times.tolist() == [0.5, 1.0, 2.0]
        assert kinds.tolist() == [0, 1, 0]

    def test_tie_break_update_sync_access(self):
        at_one = lambda kind: EventStream(  # noqa: E731
            kind=kind, times=np.array([1.0]), elements=np.array([0]))
        times, _, kinds = merge_streams([
            at_one(EventKind.ACCESS), at_one(EventKind.UPDATE),
            at_one(EventKind.SYNC)])
        assert kinds.tolist() == [int(EventKind.UPDATE),
                                  int(EventKind.SYNC),
                                  int(EventKind.ACCESS)]

    def test_empty_input(self):
        times, elements, kinds = merge_streams([])
        assert times.size == 0
        assert elements.size == 0
        assert kinds.size == 0


class TestSource:
    def test_updates_bump_versions(self):
        source = Source(3)
        assert source.version_of(1) == 0
        assert source.apply_update(1) == 1
        assert source.apply_update(1) == 2
        assert source.version_of(0) == 0
        assert source.total_updates == 2

    def test_rejects_bad_element(self):
        source = Source(2)
        with pytest.raises(SimulationError):
            source.apply_update(2)
        with pytest.raises(SimulationError):
            source.version_of(-1)

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            Source(0)

    def test_versions_snapshot_readonly(self):
        source = Source(2)
        snapshot = source.versions()
        with pytest.raises(ValueError):
            snapshot[0] = 5


class TestMirror:
    def test_starts_fresh(self):
        source = Source(3)
        mirror = Mirror(source)
        assert all(mirror.is_fresh(e) for e in range(3))
        assert mirror.freshness_vector().tolist() == [1.0, 1.0, 1.0]

    def test_update_makes_stale_sync_restores(self):
        source = Source(2)
        mirror = Mirror(source)
        source.apply_update(0)
        assert not mirror.is_fresh(0)
        assert mirror.is_fresh(1)
        changed = mirror.sync(0)
        assert changed
        assert mirror.is_fresh(0)

    def test_wasted_sync_detected(self):
        source = Source(1)
        mirror = Mirror(source)
        assert mirror.sync(0) is False  # nothing had changed

    def test_serve_access_reports_freshness(self):
        source = Source(1)
        mirror = Mirror(source)
        assert mirror.serve_access(0)
        source.apply_update(0)
        assert not mirror.serve_access(0)

    def test_bandwidth_accounting_with_sizes(self):
        source = Source(2)
        mirror = Mirror(source, sizes=np.array([2.0, 0.5]))
        mirror.sync(0)
        mirror.sync(1)
        mirror.sync(1)
        assert mirror.total_syncs == 3
        assert mirror.bandwidth_used == pytest.approx(3.0)

    def test_rejects_bad_sizes(self):
        source = Source(2)
        with pytest.raises(SimulationError):
            Mirror(source, sizes=np.array([1.0]))
        with pytest.raises(SimulationError):
            Mirror(source, sizes=np.array([1.0, 0.0]))

    def test_sync_catches_multiple_updates_at_once(self):
        source = Source(1)
        mirror = Mirror(source)
        for _ in range(5):
            source.apply_update(0)
        mirror.sync(0)
        assert mirror.is_fresh(0)
