"""Shared fixtures for the observability-layer tests."""

from __future__ import annotations

import pytest

from repro.obs import registry as obs_registry


@pytest.fixture(autouse=True)
def _telemetry_restored_between_tests():
    """Leave the process-global switch and registry as found."""
    previous_enabled = obs_registry.telemetry_enabled()
    previous_registry = obs_registry.get_registry()
    yield
    obs_registry._state.enabled = previous_enabled
    obs_registry._state.registry = previous_registry
