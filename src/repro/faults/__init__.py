"""faultline — seeded fault injection and resilience primitives.

The third leg of the production story: the paper's model assumes
every synchronization succeeds; this subpackage models the ways real
polls fail and the machinery that keeps perceived freshness up when
they do.

* :mod:`repro.faults.model` — deterministic, seeded fault models
  (:class:`FaultPlan`: i.i.d. loss, Gilbert–Elliott bursts, timed
  shard outages, latency/timeout draws).
* :mod:`repro.faults.retry` — bounded exponential backoff with
  decorrelated jitter, all randomness and clocks injected (FL010).
* :mod:`repro.faults.breaker` — per-shard closed → open → half-open
  circuit breakers on simulated time.
* :mod:`repro.faults.channel` — the retrying :class:`SyncChannel`
  the simulator polls through, with per-period budget accounting.
* :mod:`repro.faults.topology` — seeded source→relay→edge trees with
  per-hop bandwidth ledgers and latency (:class:`Topology`,
  :class:`HopLedger`).
* :mod:`repro.faults.correlated` — node outages propagated through
  the tree's dependency graph (:class:`CorrelatedFaultModel`): a
  relay failure darkens its whole subtree, with per-hop recovery
  debounce, pre-sampled for CRN reproducibility.
* :mod:`repro.faults.scenarios` — named chaos scenarios consumed by
  the ``repro chaos`` harness (:mod:`repro.analysis.chaos`).
"""

from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.channel import PollReport, SyncChannel
from repro.faults.correlated import CorrelatedFaultModel, NodeOutage
from repro.faults.model import (
    FaultModel,
    FaultPlan,
    GilbertElliottFaultModel,
    IIDFaultModel,
    LatencyFaultModel,
    OutageWindow,
    PollOutcome,
)
from repro.faults.retry import (
    RetryAdmissionGate,
    RetryBudgetExhaustedError,
    RetryPolicy,
    execute_with_retry,
)
from repro.faults.scenarios import CHAOS_SCENARIOS, ChaosScenario
from repro.faults.topology import HopLedger, Topology

__all__ = [
    "BreakerState",
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "CircuitBreaker",
    "CorrelatedFaultModel",
    "execute_with_retry",
    "FaultModel",
    "FaultPlan",
    "GilbertElliottFaultModel",
    "HopLedger",
    "IIDFaultModel",
    "LatencyFaultModel",
    "NodeOutage",
    "OutageWindow",
    "PollOutcome",
    "PollReport",
    "RetryAdmissionGate",
    "RetryBudgetExhaustedError",
    "RetryPolicy",
    "SyncChannel",
    "Topology",
]
