"""FL009-clean timing: monotonic durations, injected timestamps."""

import time
from datetime import datetime, timezone

__all__ = ["measure", "label_run"]


def measure() -> float:
    """Elapsed wall seconds for a no-op, measured monotonically."""
    start = time.perf_counter()
    time.monotonic()
    return time.perf_counter() - start


def label_run(started_at: datetime) -> str:
    """ISO label for a run whose start time the caller provides.

    An explicit tz-aware ``now(timezone.utc)`` is also acceptable.
    """
    explicit = datetime.now(timezone.utc)
    return f"{started_at.isoformat()}/{explicit.isoformat()}"
