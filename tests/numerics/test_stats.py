"""Tests for repro.numerics.stats and the replication harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.replication import replicate, simulated_pf_interval
from repro.core.freshener import PerceivedFreshener
from repro.errors import ValidationError
from repro.numerics.stats import (
    mean_confidence_interval,
    t_critical_value,
)
from repro.workloads.presets import ExperimentSetup, build_catalog


class TestTCriticalValue:
    def test_known_small_sample_values(self):
        assert t_critical_value(1, 0.95) == pytest.approx(12.7062)
        assert t_critical_value(10, 0.95) == pytest.approx(2.2281)
        assert t_critical_value(30, 0.99) == pytest.approx(2.7500)

    def test_large_df_approaches_normal(self):
        assert t_critical_value(10_000, 0.95) == pytest.approx(
            1.96, abs=0.005)
        assert t_critical_value(10_000, 0.90) == pytest.approx(
            1.645, abs=0.005)

    def test_approximation_accuracy_beyond_table(self):
        # scipy reference: t_{40, 0.975} = 2.0211, t_{60, 0.975} = 2.0003.
        assert t_critical_value(40, 0.95) == pytest.approx(2.0211,
                                                           abs=0.005)
        assert t_critical_value(60, 0.95) == pytest.approx(2.0003,
                                                           abs=0.005)

    def test_monotone_decreasing_in_df(self):
        values = [t_critical_value(df, 0.95)
                  for df in (1, 2, 5, 10, 30, 50, 100)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValidationError):
            t_critical_value(0, 0.95)
        with pytest.raises(ValidationError):
            t_critical_value(5, 0.80)


class TestMeanConfidenceInterval:
    def test_exact_two_point_case(self):
        interval = mean_confidence_interval(np.array([0.0, 2.0]))
        assert interval.mean == 1.0
        # s = sqrt(2), SE = 1, t_{1,0.975} = 12.7062.
        assert interval.half_width == pytest.approx(12.7062, rel=1e-4)

    def test_contains(self):
        interval = mean_confidence_interval(
            np.array([1.0, 1.1, 0.9, 1.05, 0.95]))
        assert interval.contains(1.0)
        assert not interval.contains(5.0)

    def test_zero_variance(self):
        interval = mean_confidence_interval(np.full(5, 3.0))
        assert interval.mean == 3.0
        assert interval.half_width == 0.0

    def test_coverage_on_normal_samples(self):
        """~95% of 95% intervals cover the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            samples = rng.normal(10.0, 2.0, size=8)
            if mean_confidence_interval(samples).contains(10.0):
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval(np.array([1.0]))
        with pytest.raises(ValidationError):
            mean_confidence_interval(np.array([1.0, np.nan]))
        with pytest.raises(ValidationError):
            mean_confidence_interval(np.ones((2, 2)))


class TestReplicate:
    def test_deterministic_experiment(self):
        estimate = replicate(lambda seed: float(seed),
                             n_replications=5, base_seed=10)
        assert estimate.interval.mean == pytest.approx(12.0)
        assert np.array_equal(estimate.samples,
                              [10.0, 11.0, 12.0, 13.0, 14.0])

    def test_reference_agreement(self):
        estimate = replicate(
            lambda seed: 1.0 + 0.01 * (seed % 3 - 1),
            n_replications=6, reference=1.0)
        assert estimate.agrees is True
        off = replicate(lambda seed: 1.0, n_replications=3,
                        reference=2.0)
        assert off.agrees is False

    def test_no_reference(self):
        estimate = replicate(lambda seed: 1.0, n_replications=2)
        assert estimate.agrees is None

    def test_validation(self):
        with pytest.raises(ValidationError):
            replicate(lambda seed: 1.0, n_replications=1)


class TestSimulatedPfInterval:
    def test_analytic_value_inside_interval(self):
        setup = ExperimentSetup(n_objects=60,
                                updates_per_period=120.0,
                                syncs_per_period=30.0, theta=1.0,
                                update_std_dev=1.0)
        catalog = build_catalog(setup, seed=2)
        plan = PerceivedFreshener().plan(catalog, 30.0)
        estimate = simulated_pf_interval(catalog, plan.frequencies,
                                         n_replications=5,
                                         n_periods=60,
                                         request_rate=300.0)
        assert estimate.reference == pytest.approx(
            plan.perceived_freshness)
        assert estimate.agrees, (
            f"analytic {estimate.reference} outside "
            f"[{estimate.interval.low}, {estimate.interval.high}]")
        # Replications genuinely vary.
        assert estimate.samples.std() > 0.0
