"""Tests for the chaos harness: scenarios, report, and the headline
degraded-mode claim.

The expensive end-to-end runs live in one module-scoped fixture so
the acceptance claim (aware > blind under 20% i.i.d. loss) and the
report-shape assertions share a single simulation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.chaos import (CHAOS_SETUP, ChaosReport,
                                  chaos_report_to_dict,
                                  format_chaos_report, run_chaos)
from repro.errors import ValidationError
from repro.faults.scenarios import CHAOS_SCENARIOS
from repro.obs import registry as obs


@pytest.fixture(scope="module")
def iid20_report() -> ChaosReport:
    return run_chaos("iid20", seed=0)


@pytest.fixture(scope="module")
def cascade_report() -> ChaosReport:
    return run_chaos("relay-cascade", n_periods=24, warmup=4, seed=0)


@pytest.fixture(scope="module")
def herding_report() -> ChaosReport:
    return run_chaos("herding", n_periods=24, warmup=4, seed=0)


class TestScenarioRegistry:
    def test_expected_scenarios_are_registered(self):
        assert {"iid20", "burst", "outage", "latency", "flaky-shard",
                "relay-cascade", "herding",
                "partition"} <= set(CHAOS_SCENARIOS)
        for name, scenario in CHAOS_SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description

    def test_plans_are_rebuilt_fresh_per_run(self):
        scenario = CHAOS_SCENARIOS["burst"]
        assert scenario.plan(10, 20.0) is not scenario.plan(10, 20.0)

    def test_grouped_shard_map_shape_and_granularity(self):
        scenario = CHAOS_SCENARIOS["outage"]
        shards = scenario.shard_of(60)
        assert shards.shape == (60,)
        grouped = int((shards == 0).sum())
        assert grouped == 12          # first fifth shares shard 0
        assert scenario.n_shards(60) == 60 - grouped + 1
        # Identity sharding stays None.
        assert CHAOS_SCENARIOS["iid20"].shard_of(60) is None
        assert CHAOS_SCENARIOS["iid20"].n_shards(60) == 60

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValidationError):
            run_chaos("nope", n_periods=4, warmup=1)

    def test_warmup_must_fit_inside_the_run(self):
        with pytest.raises(ValidationError):
            run_chaos("iid20", n_periods=5, warmup=5)


class TestTopologyScenarios:
    def test_topology_supplies_the_shard_map(self):
        """Relay-tree scenarios shard breakers by subtree membership
        — an edge uplink fails as one unit — instead of the legacy
        grouped-prefix map."""
        scenario = CHAOS_SCENARIOS["relay-cascade"]
        topology = scenario.topology(60)
        shards = scenario.shard_of(60)
        assert shards.shape == (60,)
        assert np.array_equal(shards, topology.shard_of)
        assert scenario.n_shards(60) == topology.n_shards
        assert CHAOS_SCENARIOS["iid20"].topology(60) is None

    def test_relay_cascade_degrades_and_recovers(self, cascade_report):
        """The faultgraph acceptance claim at quick settings: losing
        a relay costs the blind arm real freshness, and the aware
        arm wins it partially back."""
        assert cascade_report.degradation > 0.05
        assert cascade_report.recovery > 0.0
        assert cascade_report.aware_mean > cascade_report.blind_mean

    def test_herding_gate_suppresses_retries(self, herding_report):
        assert herding_report.blind_suppressed_total > 0
        assert herding_report.aware_suppressed_total > 0
        assert herding_report.recovery > 0.0

    def test_relay_cascade_is_bit_identical_across_jobs(self):
        a = run_chaos("relay-cascade", n_periods=10, warmup=2,
                      seed=1, jobs=1)
        b = run_chaos("relay-cascade", n_periods=10, warmup=2,
                      seed=1, jobs=2)
        for field in ("baseline_pf", "blind_pf", "aware_pf",
                      "blind_failed", "aware_failed",
                      "blind_retries", "aware_retries",
                      "blind_suppressed", "aware_suppressed"):
            assert np.array_equal(getattr(a, field),
                                  getattr(b, field)), field


class TestDegradedModeClaim:
    def test_aware_manager_beats_blind_under_iid_loss(self, iid20_report):
        """The tentpole acceptance claim: with 20% i.i.d. loss the
        degraded-mode manager delivers strictly higher steady-state
        PF than the fault-blind one."""
        assert iid20_report.recovery > 0.0
        assert iid20_report.aware_mean > iid20_report.blind_mean

    def test_faults_cost_the_blind_manager_real_freshness(self,
                                                          iid20_report):
        assert iid20_report.degradation > 0.02
        assert iid20_report.baseline_mean > iid20_report.blind_mean

    def test_series_are_aligned_and_plausible(self, iid20_report):
        r = iid20_report
        for series in (r.baseline_pf, r.blind_pf, r.aware_pf):
            assert series.shape == (r.n_periods,)
            assert np.all((series >= 0.0) & (series <= 1.0))
        # The fault-free arm never fails a poll; the faulty arms do.
        assert r.blind_failed.sum() > 0
        assert r.aware_failed.sum() > 0

    def test_report_is_deterministic_given_seed(self):
        a = run_chaos("iid20", n_periods=8, warmup=2, seed=5)
        b = run_chaos("iid20", n_periods=8, warmup=2, seed=5)
        assert np.array_equal(a.aware_pf, b.aware_pf)
        assert np.array_equal(a.blind_pf, b.blind_pf)
        assert np.array_equal(a.blind_failed, b.blind_failed)


class TestReportRendering:
    def test_format_contains_summary_and_acceptance_line(self,
                                                         iid20_report):
        text = format_chaos_report(iid20_report, every=5)
        assert "iid20" in text
        assert "recovery" in text
        assert "degradation" in text
        assert (f"periods {iid20_report.warmup + 1}-"
                f"{iid20_report.n_periods}") in text

    def test_report_dict_is_json_serializable(self, cascade_report):
        payload = chaos_report_to_dict(cascade_report)
        assert payload["scenario"] == "relay-cascade"
        assert len(payload["aware_pf"]) == cascade_report.n_periods
        assert payload["recovery"] == \
            pytest.approx(cascade_report.recovery)
        json.dumps(payload)

    def test_format_shows_the_gate_line_for_gated_scenarios(
            self, herding_report):
        text = format_chaos_report(herding_report, every=6)
        assert "herding-gate suppressed retries" in text
        assert str(herding_report.blind_suppressed_total) in text

    def test_chaos_run_emits_telemetry_gauges(self):
        with obs.telemetry() as registry:
            run_chaos("iid20", n_periods=6, warmup=2, seed=3)
        assert "chaos.recovery" in registry.gauges
        assert "chaos.degradation" in registry.gauges
        assert any(path.startswith("chaos.iid20")
                   for path in registry.span_totals)


class TestChaosSetup:
    def test_workload_is_skewed_and_oversubscribed(self):
        """The default chaos workload must keep the properties the
        scenario calibration relies on: a hot head (so the blind
        manager's late-period dead zone costs PF) and more update
        mass than bandwidth (so lost polls cannot be shrugged off)."""
        assert CHAOS_SETUP.theta > 1.0
        assert CHAOS_SETUP.updates_per_period > \
            CHAOS_SETUP.syncs_per_period
