"""freshlint — domain-aware static analysis for the repro codebase.

The freshening solver stack is only correct while a web of unstated
invariants holds: probability vectors on the simplex, seeded
``np.random.Generator`` threading, budget feasibility ``Σ cᵢfᵢ ≤ B``,
KKT residuals near zero.  freshlint encodes the *source-level*
discipline that keeps those invariants checkable at all — reproducible
randomness, tolerance-based float comparisons, honest re-export lists,
unit-documented quantities, no aliasing mutation in the numeric core,
and no swallowed solver errors.

Run it as a CLI from the repository root::

    PYTHONPATH=tools python -m freshlint src/ examples/ benchmarks/

add ``--seedflow`` for the project-wide RNG-provenance rules
(FL011-FL014) and ``--fix`` / ``--diff`` for the autofix engine; or
programmatically::

    from freshlint import run_paths, run_seedflow
    violations = run_paths(["src/repro"])
    violations += run_seedflow(["src/repro"])

Each rule is documented in ``docs/STATIC_ANALYSIS.md`` with the piece
of the paper's math it protects.
"""

from __future__ import annotations

from freshlint.autofix import Fix, FixReport, TextEdit, fix_file
from freshlint.engine import (
    LintConfig,
    ModuleContext,
    Violation,
    filter_suppressed,
    iter_python_files,
    lint_file,
    parse_module,
    run_paths,
)
from freshlint.rules import ALL_RULES, Rule, rule_by_code
from freshlint.seedflow import (
    SEEDFLOW_CODES,
    SEEDFLOW_RULES,
    build_project,
    run_seedflow,
)

__version__ = "1.1.0"

__all__ = [
    "ALL_RULES",
    "Fix",
    "FixReport",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "SEEDFLOW_CODES",
    "SEEDFLOW_RULES",
    "TextEdit",
    "Violation",
    "__version__",
    "build_project",
    "filter_suppressed",
    "fix_file",
    "iter_python_files",
    "lint_file",
    "parse_module",
    "rule_by_code",
    "run_paths",
    "run_seedflow",
]
