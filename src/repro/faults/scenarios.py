"""Named chaos scenarios: reusable fault configurations.

Each scenario bundles a :class:`~repro.faults.model.FaultPlan`
builder (parameterized on catalog size and horizon so outage windows
can scale with the run) with the retry/breaker configuration the
scenario is meant to exercise.  The ``repro chaos`` harness
(:mod:`repro.analysis.chaos`) runs each scenario twice — against a
fault-blind manager and a degraded-mode manager — and reports the
perceived-freshness degradation and recovery series.

Scenarios only *describe* faults; they import nothing from the
simulator or runtime layers, so the fault vocabulary stays at the
bottom of the layering (``errors`` < ``obs`` < ``faults`` < ``sim``
< ``runtime``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.faults.model import (
    FaultPlan,
    GilbertElliottFaultModel,
    IIDFaultModel,
    LatencyFaultModel,
    OutageWindow,
    PollOutcome,
)
from repro.faults.retry import RetryPolicy

__all__ = ["CHAOS_SCENARIOS", "ChaosScenario"]


@dataclass(frozen=True)
class ChaosScenario:
    """One named outage scenario.

    Attributes:
        name: CLI slug (``repro chaos --scenario NAME``).
        description: One-line human summary.
        build_plan: ``(n_elements, horizon) -> FaultPlan`` — horizon
            in period units; called once per run so stateful models
            (Gilbert–Elliott) start fresh.
        retry_policy: Backoff policy the resilient manager uses
            (None disables retries).
        breaker_threshold: Consecutive failures that open a circuit,
            or None for no breaker.
        breaker_cooldown: Open-circuit cooldown, in period units.
        grouped_fraction: When set, the first this-fraction of the
            catalog shares one breaker shard (matching the scenario's
            outage footprint) and the rest stay per-element.  Shard
            granularity matters: a shared breaker sees the whole
            group's poll stream, so it both opens fast and — via any
            member's half-open probe — closes fast, where a cold
            element's private breaker can stay open for periods
            simply because nothing polls it.
    """

    name: str
    description: str
    build_plan: Callable[[int, float], FaultPlan]
    retry_policy: RetryPolicy | None = RetryPolicy()
    breaker_threshold: int | None = None
    breaker_cooldown: float = 1.0
    grouped_fraction: float | None = None

    def plan(self, n_elements: int, horizon: float) -> FaultPlan:
        """Build a fresh fault plan for one run.

        Args:
            n_elements: Catalog size.
            horizon: Total simulated time, in period units.

        Returns:
            A new :class:`FaultPlan` (fresh stochastic state).
        """
        return self.build_plan(n_elements, horizon)

    def shard_of(self, n_elements: int) -> np.ndarray | None:
        """Element → breaker-shard map for this scenario.

        Returns:
            None for identity sharding (one breaker per element);
            otherwise shape ``(n_elements,)`` where the grouped
            prefix shares shard 0.
        """
        if self.grouped_fraction is None:
            return None
        grouped = max(int(n_elements * self.grouped_fraction), 1)
        shards = np.zeros(n_elements, dtype=np.int64)
        shards[grouped:] = np.arange(1, n_elements - grouped + 1)
        return shards

    def n_shards(self, n_elements: int) -> int:
        """Breaker shard count implied by :meth:`shard_of`."""
        shards = self.shard_of(n_elements)
        if shards is None:
            return n_elements
        return int(shards.max()) + 1


def _iid20_plan(n_elements: int, horizon: float) -> FaultPlan:
    return FaultPlan.iid(0.2)


def _burst_plan(n_elements: int, horizon: float) -> FaultPlan:
    return FaultPlan(models=(GilbertElliottFaultModel(
        0.05, 0.25, loss_good=0.02, loss_bad=0.95),))


def _outage_plan(n_elements: int, horizon: float) -> FaultPlan:
    shard = tuple(range(max(n_elements // 5, 1)))
    window = OutageWindow(start=horizon / 3.0,
                          end=2.0 * horizon / 3.0,
                          elements=shard)
    return FaultPlan(models=(IIDFaultModel(0.02),),
                     outages=(window,))


def _latency_plan(n_elements: int, horizon: float) -> FaultPlan:
    # exp(-timeout/mean) = exp(-1.9) ~ 15% of attempts blow the
    # deadline.
    return FaultPlan(models=(LatencyFaultModel(0.1, 0.19),))


def _flaky_shard_plan(n_elements: int, horizon: float) -> FaultPlan:
    shard = tuple(range(max(n_elements // 10, 1)))
    flapping = tuple(
        OutageWindow(start=start, end=start + 1.5, elements=shard)
        for start in _window_starts(horizon))
    return FaultPlan(models=(IIDFaultModel(
        0.05, failure=PollOutcome.TIMEOUT),), outages=flapping)


def _window_starts(horizon: float) -> list[float]:
    starts: list[float] = []
    start = horizon / 5.0
    while start + 1.5 < horizon:
        starts.append(start)
        start += 4.0
    return starts or [horizon / 5.0]


CHAOS_SCENARIOS: Mapping[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="iid20",
            description="20% i.i.d. poll failure for the whole run",
            build_plan=_iid20_plan,
            retry_policy=RetryPolicy(max_retries=3),
        ),
        ChaosScenario(
            name="burst",
            description="Gilbert-Elliott bursty loss (95% inside "
                        "bad sojourns)",
            build_plan=_burst_plan,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_threshold=4,
            breaker_cooldown=2.0,
        ),
        ChaosScenario(
            name="outage",
            description="middle-third outage of the first fifth of "
                        "the catalog, plus 2% background loss",
            build_plan=_outage_plan,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_threshold=3,
            breaker_cooldown=0.5,
            grouped_fraction=0.2,
        ),
        ChaosScenario(
            name="latency",
            description="exponential latency draws; ~15% of attempts "
                        "exceed the deadline",
            build_plan=_latency_plan,
            retry_policy=RetryPolicy(max_retries=3),
        ),
        ChaosScenario(
            name="flaky-shard",
            description="one shard flaps down for 1.5 periods every "
                        "4, plus 5% timeouts",
            build_plan=_flaky_shard_plan,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_threshold=3,
            breaker_cooldown=0.5,
            grouped_fraction=0.1,
        ),
    )
}
