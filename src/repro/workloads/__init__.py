"""Synthetic workload generation: catalogs, distributions, access sets.

The paper's experiments are fully synthetic — Zipf access profiles,
gamma change rates, Pareto object sizes — under three possible
alignments of interest and volatility.  This subpackage reproduces
those generators and the two parameter presets (Tables 2 and 3).
"""

from repro.workloads.accesses import AccessSet, sample_access_times
from repro.workloads.alignment import Alignment, align_values
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.catalog import Catalog
from repro.workloads.distributions import (
    gamma_change_rates,
    pareto_mean,
    pareto_sizes,
    zipf_probabilities,
)
from repro.workloads.trace import (
    catalog_from_json,
    catalog_to_json,
    load_access_set,
    load_catalog,
    save_access_set,
    save_catalog,
)
from repro.workloads.presets import (
    BIG_SETUP,
    IDEAL_SETUP,
    TOY_BANDWIDTH,
    TOY_PROFILES,
    ExperimentSetup,
    build_catalog,
    toy_example_catalog,
)

__all__ = [
    "AccessSet",
    "catalog_from_json",
    "catalog_to_json",
    "load_access_set",
    "load_catalog",
    "save_access_set",
    "save_catalog",
    "WorkloadBuilder",
    "Alignment",
    "align_values",
    "BIG_SETUP",
    "build_catalog",
    "Catalog",
    "ExperimentSetup",
    "gamma_change_rates",
    "IDEAL_SETUP",
    "pareto_mean",
    "pareto_sizes",
    "sample_access_times",
    "TOY_BANDWIDTH",
    "TOY_PROFILES",
    "toy_example_catalog",
    "zipf_probabilities",
]
