"""Figure 6 — sensitivity of partitioning to Zipf skew (shuffled).

Paper claims reproduced as assertions: perceived freshness rises with
θ for every technique, and λ-partitioning cannot keep up as skew
grows because access probability dominates the PF objective.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure6
from repro.analysis.tables import format_sweep


def test_figure6(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: figure6(n_partitions=50), rounds=1, iterations=1)

    for label in sweep.labels:
        y = sweep.get(label).y
        assert y[-1] > y[0]

    lam = sweep.get("LAMBDA_PARTITIONING").y
    pf = sweep.get("PF_PARTITIONING").y
    # The gap between λ-partitioning and PF-partitioning widens.
    assert pf[-1] - lam[-1] > pf[0] - lam[0]
    assert pf[-1] > lam[-1] + 0.1

    report("figure06", format_sweep(sweep))
