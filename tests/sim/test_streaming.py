"""Streaming slab engine: bit-identity, sorted draws, chunked runs.

The contract under test has two distinct strengths, per the module
docs: the *replay* layer (``StreamingReplay`` fed slab-split tapes)
is bit-identical to one-shot replay of the concatenated tape — every
result field, the telemetry tape, the freshness ledger and the
post-run fault-rng / Gilbert–Elliott chain state — while the
*generation* layer (``chunk_periods`` drawing per-slab spawn
children) is deterministic and statistically, not bitwise,
equivalent to the one-shot stream.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import SyncSchedule
from repro.errors import ValidationError
from repro.faults.model import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs import registry as obs
from repro.sim import events as events_mod
from repro.sim.events import merge_kind_blocks, merge_sorted_blocks
from repro.sim.fastpath import ReplayArena, ReplayCarry, StreamingReplay
from repro.sim.generators import RequestGenerator, UpdateGenerator
from repro.sim.simulation import Simulation, SimulationResult
from repro.workloads.catalog import Catalog


def random_catalog(rng, n, sized=False):
    weights = rng.uniform(0.01, 1.0, n)
    rates = rng.uniform(0.05, 8.0, n)
    sizes = rng.uniform(0.2, 5.0, n) if sized else None
    return Catalog(access_probabilities=weights / weights.sum(),
                   change_rates=rates, sizes=sizes)


def make_sim(catalog, frequencies, seed, mode, **extra):
    kwargs: dict = {}
    if mode == "iid":
        kwargs = dict(fault_plan=FaultPlan.iid(0.3),
                      retry_policy=RetryPolicy(max_retries=2),
                      fault_rng=np.random.default_rng(seed + 7))
    elif mode == "ge":
        kwargs = dict(fault_plan=FaultPlan.bursty(
                          0.2, 0.4, loss_good=0.05, loss_bad=0.9),
                      retry_policy=RetryPolicy(max_retries=2),
                      fault_rng=np.random.default_rng(seed + 7))
    kwargs.update(extra)
    return Simulation(catalog, frequencies, request_rate=60.0,
                      rng=np.random.default_rng(seed), **kwargs)


def assert_results_identical(ref: SimulationResult,
                             got: SimulationResult) -> None:
    """Field-by-field bit comparison of two simulation results."""
    for field in dataclasses.fields(SimulationResult):
        a = getattr(ref, field.name)
        b = getattr(got, field.name)
        if field.name == "catalog":
            assert a is b or np.array_equal(a.change_rates,
                                            b.change_rates), field.name
        elif isinstance(a, np.ndarray):
            assert b is not None, field.name
            assert a.dtype == b.dtype, field.name
            assert a.tobytes() == b.tobytes(), field.name
        else:
            assert a == b, (field.name, a, b)


def grab_telemetry():
    """Registry contents with span timings stripped (wall clock)."""
    registry = obs.get_registry()
    events = [dict(event) for event in registry.events
              if event.get("kind") != "span"]
    for event in events:
        event.pop("t", None)
        event.pop("seq", None)
    ledger = (registry.ledger.snapshot()
              if hasattr(registry.ledger, "snapshot") else None)
    return (events, dict(registry.counters), dict(registry.gauges),
            ledger)


def split_feed(streaming, tape, n_periods, chunk):
    """Feed a full tape slab by slab, splitting at period bounds."""
    times, elements, kinds = tape
    done = 0.0
    while done < n_periods - 1e-12:
        last = min(done + chunk, n_periods)
        lo = np.searchsorted(times, done, side="left")
        hi = np.searchsorted(times, last, side="left")
        streaming.feed(times[lo:hi], elements[lo:hi], kinds[lo:hi],
                       n_periods=last - done)
        done = last
    return streaming.finish()


class TestStreamingReplayBitIdentity:
    """Slab-split replay of one tape ≡ the one-shot kernel."""

    @pytest.mark.parametrize("mode", ["quiet", "iid", "ge"])
    def test_chunked_replay_matches_one_shot(self, mode):
        """Sweep random worlds and chunk sizes (ragged finals
        included): results, telemetry, ledger, fault trace and
        post-run fault-rng state must all be bit-identical."""
        rng0 = np.random.default_rng(5)
        for trial in range(6):
            n = int(rng0.integers(3, 30))
            catalog = random_catalog(rng0, n,
                                     sized=bool(rng0.integers(0, 2)))
            frequencies = rng0.uniform(0.0, 4.0, n)
            n_periods = float(rng0.choice([2.0, 3.0, 2.5]))
            chunk = int(rng0.integers(1, 4))
            seed = int(rng0.integers(0, 2**31))
            trace = mode != "quiet"

            obs.reset_telemetry()
            obs.enable_telemetry()
            try:
                ref_sim = make_sim(catalog, frequencies, seed, mode,
                                   record_fault_trace=trace)
                ref = ref_sim.run(n_periods=n_periods)
                ref_grab = grab_telemetry()
                ref_fault_state = (
                    ref_sim._fault_rng.bit_generator.state
                    if mode != "quiet" else None)

                obs.reset_telemetry()
                obs.enable_telemetry()
                sim = make_sim(catalog, frequencies, seed, mode,
                               record_fault_trace=trace)
                tape = sim.build_tape(n_periods)
                streaming = StreamingReplay(
                    catalog, frequencies, period_length=1.0,
                    n_periods=n_periods,
                    fault_args=sim.fault_kernel_args(),
                    record_fault_trace=trace)
                chunked = split_feed(streaming, tape, n_periods,
                                     chunk)
                got_grab = grab_telemetry()
            finally:
                obs.disable_telemetry()

            context = (mode, trial, chunk, n_periods)
            assert_results_identical(ref, chunked)
            assert ref_grab == got_grab, context
            if mode != "quiet":
                assert (sim._fault_rng.bit_generator.state
                        == ref_fault_state), context

    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
           chunk=st.integers(min_value=1, max_value=4),
           mode=st.sampled_from(["quiet", "iid", "ge"]),
           n_periods=st.sampled_from([2.0, 2.5, 3.0]))
    @settings(max_examples=20, deadline=None)
    def test_chunked_replay_property(self, seed, chunk, mode,
                                     n_periods):
        """Hypothesis sweep: any (world, chunk, fault route, ragged
        or whole horizon) — slab-fed replay of one tape must equal
        the one-shot result field for field."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 25))
        catalog = random_catalog(rng, n,
                                 sized=bool(rng.integers(0, 2)))
        frequencies = rng.uniform(0.0, 4.0, n)
        ref = make_sim(catalog, frequencies, seed, mode).run(
            n_periods=n_periods)
        sim = make_sim(catalog, frequencies, seed, mode)
        tape = sim.build_tape(n_periods)
        streaming = StreamingReplay(
            catalog, frequencies, period_length=1.0,
            n_periods=n_periods, fault_args=sim.fault_kernel_args())
        chunked = split_feed(streaming, tape, n_periods, chunk)
        assert_results_identical(ref, chunked)

    def test_carry_footprint_constant_across_slabs(self):
        """The cross-slab state is O(elements): feeding more slabs
        must not grow it."""
        rng = np.random.default_rng(3)
        catalog = random_catalog(rng, 50)
        frequencies = rng.uniform(0.5, 3.0, 50)
        sim = make_sim(catalog, frequencies, 9, "quiet")
        n_periods = 4.0
        tape = sim.build_tape(n_periods)
        times, elements, kinds = tape
        streaming = StreamingReplay(catalog, frequencies,
                                    period_length=1.0,
                                    n_periods=n_periods)
        baseline = streaming.carry.nbytes()
        done = 0.0
        sizes = []
        while done < n_periods:
            last = done + 1.0
            lo = np.searchsorted(times, done, side="left")
            hi = np.searchsorted(times, last, side="left")
            streaming.feed(times[lo:hi], elements[lo:hi],
                           kinds[lo:hi], n_periods=1.0)
            sizes.append(streaming.carry.nbytes())
            done = last
        assert len(sizes) >= 3
        assert all(size == baseline for size in sizes), sizes
        streaming.finish()


class TestChunkedRun:
    """``Simulation.run(chunk_periods=K)`` end to end."""

    def setup_world(self, n=400, seed=21):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n, sized=True)
        frequencies = rng.uniform(0.0, 2.0, n)
        return catalog, frequencies

    @pytest.mark.parametrize("mode", ["quiet", "iid", "ge"])
    @pytest.mark.parametrize("chunk", [1, 2, 3])
    def test_chunked_run_deterministic(self, mode, chunk):
        """Two same-seed chunked runs are bit-identical (fresh fault
        rngs built per run — the spawn keys are derived, not
        shared)."""
        catalog, frequencies = self.setup_world()
        first = make_sim(catalog, frequencies, 13, mode).run(
            2.5, chunk_periods=chunk)
        second = make_sim(catalog, frequencies, 13, mode).run(
            2.5, chunk_periods=chunk)
        assert_results_identical(first, second)

    @pytest.mark.parametrize("mode", ["quiet", "iid"])
    def test_chunked_run_statistically_matches_one_shot(self, mode):
        """Chunked generation uses spawn children, so streams differ
        bitwise from one-shot — but schedules are deterministic
        (n_syncs exact) and the Poisson workloads must agree within
        sampling error."""
        catalog, frequencies = self.setup_world(n=2000, seed=8)
        one_shot = make_sim(catalog, frequencies, 17, mode).run(4.0)
        chunked = make_sim(catalog, frequencies, 17, mode).run(
            4.0, chunk_periods=1)
        assert chunked.n_syncs == one_shot.n_syncs
        for attr in ("n_updates", "n_accesses"):
            a = getattr(one_shot, attr)
            b = getattr(chunked, attr)
            sigma = np.sqrt(max(a, 1.0))
            assert abs(a - b) < 6.0 * sigma, (attr, a, b)
        assert abs(one_shot.monitored_perceived_freshness
                   - chunked.monitored_perceived_freshness) < 0.05

    def test_chunk_sizes_agree_on_schedule(self):
        """Different slab sizes redraw the workload but replay the
        same deterministic sync schedule."""
        catalog, frequencies = self.setup_world()
        runs = [make_sim(catalog, frequencies, 29, "quiet").run(
                    3.0, chunk_periods=chunk)
                for chunk in (1, 2, 3)]
        assert len({run.n_syncs for run in runs}) == 1

    def test_chunk_periods_validated(self):
        catalog, frequencies = self.setup_world(n=10)
        sim = make_sim(catalog, frequencies, 1, "quiet")
        with pytest.raises(ValidationError):
            sim.run(2.0, chunk_periods=0)
        with pytest.raises(ValidationError):
            sim.run(2.0, chunk_periods=1.5)
        with pytest.raises(ValidationError):
            sim.run(2.0, engine="reference", chunk_periods=1)


class TestEventsBetween:
    def test_windows_partition_the_horizon(self):
        """Adjacent ``events_between`` windows must reproduce
        ``events_until`` exactly — same times, same elements, no
        event duplicated or dropped at a boundary."""
        rng = np.random.default_rng(2)
        for trial in range(20):
            n = int(rng.integers(2, 40))
            frequencies = rng.uniform(0.0, 5.0, n)
            schedule = SyncSchedule.from_frequencies(
                frequencies, period_length=1.0)
            horizon = float(rng.choice([2.0, 3.5, 5.0]))
            full_times, full_elements = schedule.events_until(horizon)
            cuts = np.sort(rng.uniform(0.0, horizon,
                                       int(rng.integers(1, 5))))
            bounds = [0.0, *cuts.tolist(), horizon]
            times_parts, element_parts = [], []
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi <= lo:
                    continue
                t, e = schedule.events_between(lo, hi)
                times_parts.append(t)
                element_parts.append(e)
            times = np.concatenate(times_parts)
            elements = np.concatenate(element_parts)
            assert times.tobytes() == full_times.tobytes(), trial
            assert np.array_equal(elements, full_elements), trial


class TestStableTimeArgsort:
    """The bucketed radix sort must equal a direct stable argsort."""

    def direct(self, times):
        return np.argsort(times, kind="stable")

    def test_small_inputs_fall_through(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0.0, 10.0, 1000)
        assert np.array_equal(events_mod._stable_time_argsort(times),
                              self.direct(times))

    def test_large_random_and_tie_heavy(self):
        rng = np.random.default_rng(1)
        big = events_mod._BUCKET_SORT_MIN + 1017
        smooth = rng.uniform(0.0, 4.0, big)
        ties = rng.integers(0, 50, big).astype(float) / 16.0
        for times in (smooth, ties):
            assert np.array_equal(
                events_mod._stable_time_argsort(times),
                self.direct(times))

    def test_degenerate_all_equal(self):
        times = np.full(events_mod._BUCKET_SORT_MIN + 3, 2.5)
        assert np.array_equal(events_mod._stable_time_argsort(times),
                              np.arange(times.shape[0]))

    def test_nonfinite_falls_back(self):
        rng = np.random.default_rng(4)
        times = rng.uniform(0.0, 1.0, events_mod._BUCKET_SORT_MIN + 5)
        times[::1000] = np.inf
        assert np.array_equal(events_mod._stable_time_argsort(times),
                              self.direct(times))


class TestMergeSortedBlocks:
    def test_matches_merge_kind_blocks(self):
        """Position-arithmetic merge of three pre-sorted streams ≡
        the argsort merge, across tie-heavy random tapes (grid times
        force cross-kind ties, exercising the update < sync < access
        priority)."""
        rng = np.random.default_rng(6)
        for trial in range(60):
            n = int(rng.integers(2, 20))

            def stream(count):
                times = np.sort(
                    rng.integers(0, 12, count).astype(float) / 4.0)
                elements = rng.integers(0, n, count)
                return times, elements.astype(np.int64)

            updates = stream(int(rng.integers(0, 30)))
            syncs = stream(int(rng.integers(0, 30)))
            accesses = stream(int(rng.integers(0, 30)))
            got = merge_sorted_blocks(*updates, *syncs, *accesses,
                                      n_elements=n)
            want = merge_kind_blocks(*updates, *syncs, *accesses,
                                     n_elements=n)
            for a, b in zip(got, want):
                assert np.array_equal(a, b), trial


class TestSortedDraws:
    """``draw_window_sorted`` is exactly distributed, pre-ordered."""

    def world(self, n=300):
        rng = np.random.default_rng(12)
        return random_catalog(rng, n)

    def test_update_draws_sorted_and_in_range(self):
        catalog = self.world()
        generator = UpdateGenerator(
            catalog, rng=np.random.default_rng(0))
        times, elements = generator.draw_window_sorted(2.0, 5.0)
        assert np.all(np.diff(times) >= 0.0)
        assert times.min() >= 2.0 and times.max() < 5.0
        assert elements.shape == times.shape

    def test_update_counts_match_poisson_rates(self):
        """Per-element totals over many windows are Poisson with the
        catalog rate: every element's count must sit within 6σ."""
        catalog = self.world(n=40)
        generator = UpdateGenerator(
            catalog, rng=np.random.default_rng(1))
        counts = np.zeros(40)
        windows = 200
        for _ in range(windows):
            _, elements = generator.draw_window_sorted(0.0, 1.0)
            counts += np.bincount(elements, minlength=40)
        mean = catalog.change_rates * windows
        z = (counts - mean) / np.sqrt(mean)
        assert np.abs(z).max() < 6.0, z

    def test_request_draws_follow_profile(self):
        catalog = self.world(n=30)
        generator = RequestGenerator(
            catalog, rate=500.0, rng=np.random.default_rng(2))
        counts = np.zeros(30)
        windows = 40
        for _ in range(windows):
            times, elements = generator.draw_window_sorted(0.0, 1.0)
            assert np.all(np.diff(times) >= 0.0)
            counts += np.bincount(elements, minlength=30)
        total = counts.sum()
        expected = catalog.access_probabilities * total
        z = (counts - expected) / np.sqrt(np.maximum(expected, 1.0))
        assert np.abs(z).max() < 6.0, z

    def test_time_instants_are_uniform(self):
        """Arrival instants from exponential spacings must be
        uniform over the window (first two moments within 6σ)."""
        generator = UpdateGenerator(
            self.world(), rng=np.random.default_rng(3))
        times, _ = generator.draw_window_sorted(0.0, 1.0)
        for _ in range(30):
            more, _ = generator.draw_window_sorted(0.0, 1.0)
            times = np.concatenate([times, more])
        count = times.shape[0]
        assert abs(times.mean() - 0.5) < 6.0 * np.sqrt(
            1.0 / 12.0 / count)
        assert abs(times.var() - 1.0 / 12.0) < 0.01


class TestArenaReuse:
    def test_no_growth_across_steady_windows(self):
        """Repeated same-length windows reuse the arena scratch: the
        footprint may step up while Poisson window sizes explore
        their range (geometric doubling, not per-window creep) and
        must then sit flat — the last three of a dozen windows all
        see an unchanged arena."""
        catalog = random_catalog(np.random.default_rng(7), 200)
        generator = UpdateGenerator(
            catalog, rng=np.random.default_rng(7))
        requests = RequestGenerator(
            catalog, rate=300.0, rng=np.random.default_rng(8))
        arena = ReplayArena()
        footprints = []
        for start in range(12):
            generator.draw_window_sorted(float(start),
                                         float(start + 1),
                                         arena=arena)
            requests.draw_window_sorted(float(start),
                                        float(start + 1),
                                        arena=arena)
            footprints.append(arena.nbytes())
        assert footprints == sorted(footprints), footprints
        assert len(set(footprints[-3:])) == 1, footprints
        # Doubling keeps total distinct sizes logarithmic: a dozen
        # windows must not have re-sized a dozen times.
        assert len(set(footprints)) <= 4, footprints

    def test_geometric_growth_path(self):
        """An outgrown slot doubles instead of creeping: repeated
        +1 requests must not reallocate every call."""
        arena = ReplayArena()
        arena.take("slot", 100, np.int64)
        first = arena.nbytes()
        arena.take("slot", 101, np.int64)
        doubled = arena.nbytes()
        assert doubled == 2 * first
        for size in range(102, 200):
            arena.take("slot", size, np.int64)
        assert arena.nbytes() == doubled

    def test_carry_nbytes_tracks_elements_only(self):
        small = ReplayCarry.start(100)
        large = ReplayCarry.start(1000)
        assert large.nbytes() == 10 * small.nbytes()
