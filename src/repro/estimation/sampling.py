"""Sampling-based change detection and greedy refresh (ref [6]).

Cho & Ntoulas' "Effective change detection using sampling" is the
other refresh baseline the paper discusses: elements are grouped by
*server*; each round the mirror polls a small sample from every
server, estimates the fraction of changed elements per server, ranks
servers by that ratio, and greedily spends the remaining bandwidth
refreshing servers from the highest ratio down.

It needs no change-rate knowledge at all — a useful comparison point
for PF scheduling under zero prior information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["SamplingRefreshPolicy", "SamplingRoundResult"]


@dataclass(frozen=True)
class SamplingRoundResult:
    """Outcome of one sampling round.

    Attributes:
        change_ratios: Estimated changed fraction per server.
        sampled: Element indices polled during the sampling phase.
        refreshed: Element indices refreshed during the greedy phase
            (includes the sampled ones — a sample poll refreshes too).
    """

    change_ratios: np.ndarray
    sampled: np.ndarray
    refreshed: np.ndarray


class SamplingRefreshPolicy:
    """Greedy sample-rank-refresh policy over server groups.

    Args:
        server_of: Server index per element, shape ``(N,)``.
        sample_size: Elements sampled per server per round, >= 1.
        rng: Seeded generator for sample selection.
    """

    def __init__(self, server_of: np.ndarray, *, sample_size: int,
                 rng: np.random.Generator) -> None:
        server_of = np.asarray(server_of, dtype=np.int64)
        if server_of.ndim != 1 or server_of.size == 0:
            raise ValidationError("server_of must be a non-empty 1-D array")
        if server_of.min() < 0:
            raise ValidationError("server indices must be nonnegative")
        if sample_size < 1:
            raise ValidationError(
                f"sample_size must be >= 1, got {sample_size}")
        self._server_of = server_of
        self._n_servers = int(server_of.max()) + 1
        self._sample_size = sample_size
        self._rng = rng
        self._members = [np.flatnonzero(server_of == server)
                         for server in range(self._n_servers)]
        if any(members.size == 0 for members in self._members):
            raise ValidationError("every server must own at least one element")

    @property
    def n_servers(self) -> int:
        """Number of server groups."""
        return self._n_servers

    def plan_round(self, is_stale: np.ndarray,
                   budget: int) -> SamplingRoundResult:
        """Plan one sample-and-refresh round.

        Args:
            is_stale: Ground-truth staleness per element (the policy
                only *observes* it for the elements it polls, exactly
                like a real sampling crawler).
            budget: Total polls allowed this round, >= the total
                sample size.

        Returns:
            The round's :class:`SamplingRoundResult`.

        Raises:
            ValidationError: If the budget cannot cover the samples.
        """
        is_stale = np.asarray(is_stale, dtype=bool)
        if is_stale.shape != self._server_of.shape:
            raise ValidationError(
                "is_stale must have one entry per element")
        total_sample = sum(min(self._sample_size, members.size)
                           for members in self._members)
        if budget < total_sample:
            raise ValidationError(
                f"budget {budget} cannot cover the {total_sample} sample "
                "polls")

        sampled_parts = []
        ratios = np.zeros(self._n_servers)
        for server, members in enumerate(self._members):
            take = min(self._sample_size, members.size)
            chosen = self._rng.choice(members, size=take, replace=False)
            sampled_parts.append(chosen)
            ratios[server] = float(is_stale[chosen].mean())
        sampled = np.concatenate(sampled_parts)

        refreshed = [sampled]
        remaining = budget - sampled.size
        already = set(sampled.tolist())
        # Greedy: walk servers from the highest estimated change ratio
        # and refresh their remaining members until the budget is gone.
        for server in np.argsort(-ratios, kind="stable"):
            if remaining <= 0:
                break
            members = self._members[server]
            pending = np.array([m for m in members.tolist()
                                if m not in already], dtype=np.int64)
            take = min(remaining, pending.size)
            if take > 0:
                refreshed.append(pending[:take])
                already.update(pending[:take].tolist())
                remaining -= take
        return SamplingRoundResult(change_ratios=ratios, sampled=sampled,
                                   refreshed=np.concatenate(refreshed))
