"""Sensitivity analyses and design-choice ablations.

The paper defers parameter sensitivity to its companion technical
report; these benches reconstruct that study and the ablations
DESIGN.md commits to (representative statistic, adaptive-loop
convergence, mirror selection strategies).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    adaptive_convergence,
    bandwidth_sensitivity,
    dispersion_sensitivity,
    representative_ablation,
    scale_sensitivity,
)
from repro.analysis.tables import format_sweep


def test_bandwidth_sensitivity(benchmark, report):
    sweep = benchmark.pedantic(bandwidth_sensitivity, rounds=1,
                               iterations=1)
    advantage = sweep.get("PF_ADVANTAGE").y
    # Profile-awareness matters most when bandwidth is scarce.
    assert advantage[0] > advantage[-1]
    assert (advantage >= -1e-9).all()
    report("sens_bandwidth", format_sweep(sweep))


def test_dispersion_sensitivity(benchmark, report):
    sweep = benchmark.pedantic(dispersion_sensitivity, rounds=1,
                               iterations=1)
    pf = sweep.get("PF_TECHNIQUE").y
    # Rate dispersion is exploitable structure: more σ, more PF.
    assert pf[-1] > pf[0]
    report("sens_dispersion", format_sweep(sweep))


def test_scale_sensitivity(benchmark, report):
    sweep = benchmark.pedantic(scale_sensitivity, rounds=1,
                               iterations=1)
    optimal = sweep.get("optimal").y
    gap = optimal - sweep.get("heuristic k=100").y
    assert (np.diff(optimal) > 0.0).all()
    assert gap[-1] > gap[0]  # fixed k cannot keep up with N
    report("sens_scale", format_sweep(sweep))


def test_representative_ablation(benchmark, report):
    sweep = benchmark.pedantic(representative_ablation, rounds=1,
                               iterations=1)
    best = sweep.get("best_case").y
    mean = sweep.get("mean").y
    assert (mean <= best + 1e-8).all()
    # The paper's plain-mean representative is competitive with the
    # alternatives everywhere.
    for label in ("median", "interest-weighted"):
        assert (mean >= sweep.get(label).y - 0.05).all()
    report("sens_representative", format_sweep(sweep))


def test_adaptive_convergence(benchmark, report):
    sweep = benchmark.pedantic(adaptive_convergence, rounds=1,
                               iterations=1)
    adaptive = sweep.get("adaptive manager").y
    oracle = sweep.get("oracle").y[0]
    blind = sweep.get("profile-blind").y[0]
    assert adaptive[-1] > blind
    assert adaptive[-1] > 0.85 * oracle
    report("sens_adaptive", format_sweep(sweep))


def test_burstiness_robustness(benchmark, report):
    from repro.analysis.sensitivity import burstiness_robustness

    sweep = benchmark.pedantic(burstiness_robustness, rounds=1,
                               iterations=1)
    measured = sweep.get("measured (bursty world)").y
    prediction = sweep.get("poisson prediction").y[0]
    # The Poisson plan is conservative on bursty sources: measured PF
    # matches at burstiness 0 and only rises with clustering.
    assert measured[0] == pytest.approx(prediction, abs=0.05)
    assert (measured >= prediction - 0.05).all()
    report("sens_burstiness", format_sweep(sweep))


def test_crawler_comparison(benchmark, report):
    from repro.analysis.sensitivity import crawler_comparison
    from repro.analysis.tables import format_table

    sweep = benchmark.pedantic(crawler_comparison, rounds=1,
                               iterations=1)
    scores = sweep.notes["scores"]
    # Knowledge hierarchy: full plan >= sampled knowledge >= blind.
    assert scores["PF_SCHEDULE"] > scores["RANDOM_POLLING"]
    assert scores["SAMPLING_CRAWLER"] > scores["RANDOM_POLLING"]
    rows = [(label, value) for label, value in scores.items()]
    report("sens_crawler", "crawler-comparison (perceived freshness)\n"
           + format_table(["policy", "perceived freshness"], rows))
