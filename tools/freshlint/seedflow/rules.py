"""The four project-wide seedflow rules (FL011-FL014).

Unlike the per-file rules, these run against a whole
:class:`~freshlint.seedflow.project.Project`:

* **FL011** — an RNG created from seed material that does not flow
  from ``SeedSequence``/``spawn``/``seed_rng``, in library scope.
  Non-CRN creation silently breaks common-random-numbers pairing
  between runs that share a seed.
* **FL012** — an RNG-kind value (or a ``functools.partial`` that
  captured one) handed to ``parallel_map`` or a process-pool
  ``submit``/``map``-family call.  A Generator pickled across a fork
  duplicates its stream in every worker.
* **FL013** — for every ``# seedflow: pair=<reference>`` annotation:
  (a) no *conditional* draws in the kernel member — a draw executed
  only on some inputs diverges from the reference stream; (b) the
  kernel's transitive draw-method set must be a subset of the
  reference's.  The reference closure follows resolved calls *and* a
  by-method-name fallback (an over-approximation that only ever
  enlarges the reference side, so it cannot create false positives).
* **FL014** — dtype discipline inside ``kernel_globs`` modules:
  ``np.array([...])`` literals without an explicit ``dtype=``,
  object-dtype upcasts (``dtype=object`` / ``.astype(object)``), and
  ``np.array_equal`` bit-identity comparisons that skip the
  ``.view(np.uint64)`` reinterpretation (float ``==`` treats
  ``-0.0 == 0.0`` and ``NaN != NaN``, masking real divergence).

Findings respect ``config.select`` / ``config.ignore`` and the same
``# freshlint: disable=`` pragmas as the per-file engine.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from freshlint.engine import (
    LintConfig,
    ModuleContext,
    Violation,
    filter_suppressed,
)
from freshlint.seedflow.project import (
    FunctionInfo,
    Project,
    build_project,
)
from freshlint.seedflow.provenance import analyze_function

__all__ = [
    "SEEDFLOW_CODES",
    "SEEDFLOW_RULES",
    "SeedflowRuleInfo",
    "run_seedflow",
    "seedflow_violations",
]


@dataclass(frozen=True)
class SeedflowRuleInfo:
    """Registry metadata for one project-wide rule."""

    code: str
    name: str
    summary: str


SEEDFLOW_RULES: tuple[SeedflowRuleInfo, ...] = (
    SeedflowRuleInfo(
        "FL011", "non-crn-rng-creation",
        "RNG created from a seed that does not flow from "
        "SeedSequence.spawn / seed_rng (breaks CRN pairing)"),
    SeedflowRuleInfo(
        "FL012", "rng-across-process-boundary",
        "RNG object reaching parallel_map / a process-pool "
        "submission or a pickled partial (duplicated streams)"),
    SeedflowRuleInfo(
        "FL013", "paired-draw-divergence",
        "draw-order divergence hazards between '# seedflow: pair=' "
        "engine paths (conditional or reference-unknown draws)"),
    SeedflowRuleInfo(
        "FL014", "kernel-dtype-discipline",
        "kernel-module dtype discipline: untyped np.array literals, "
        "object upcasts, non-uint64-view bit-identity comparisons"),
)

SEEDFLOW_CODES: tuple[str, ...] = tuple(r.code for r in SEEDFLOW_RULES)


def _library_scope(context: ModuleContext) -> bool:
    """FL011/FL012 apply to library code, not tests/entry points."""
    return (context.is_library and not context.is_test
            and not context.is_entry_point)


def _active_codes(config: LintConfig) -> set[str]:
    return {code for code in SEEDFLOW_CODES
            if (not config.select or code in config.select)
            and code not in config.ignore}


# -- FL011 / FL012 ----------------------------------------------------

def _creation_violations(info: FunctionInfo, project: Project,
                         memo: dict[str, object],
                         codes: set[str]) -> Iterable[Violation]:
    summary = analyze_function(info, project, memo)
    if "FL011" in codes:
        for creation in summary.creations:
            if creation.legacy:
                message = ("legacy numpy.random.RandomState is never "
                           "CRN-safe; use repro.parallel.seed_rng")
            else:
                message = (
                    f"RNG created via {creation.api}() from a seed "
                    f"with provenance "
                    f"'{creation.seed_provenance.value}'; route "
                    "seeds through numpy.random.SeedSequence (or "
                    "repro.parallel.seed_rng) to preserve common "
                    "random numbers")
            yield Violation(code="FL011", path=info.context.path,
                            line=creation.line, column=creation.col,
                            message=message)
    if "FL012" in codes:
        for hazard in summary.boundary_hazards:
            yield Violation(
                code="FL012", path=info.context.path,
                line=hazard.line, column=hazard.col,
                message=(
                    f"RNG crosses a process boundary via "
                    f"{hazard.api} ({hazard.detail}); ship integer "
                    "seeds and build per-worker generators with "
                    "seed_rng"))


# -- FL013 ------------------------------------------------------------

def _draw_closure(project: Project, start: FunctionInfo,
                  memo: dict[str, object], *,
                  method_fallback: bool) -> set[str]:
    """Transitive set of draw methods reachable from ``start``.

    ``method_fallback`` additionally follows attribute calls on
    statically-unknown receivers to every project method of that
    name — used on the reference side only (see module docstring).
    """
    seen = {start.qualname}
    stack = [start]
    draws: set[str] = set()
    while stack:
        info = stack.pop()
        summary = analyze_function(info, project, memo)
        draws.update(draw.method for draw in summary.draws)
        targets: list[FunctionInfo] = []
        for qualname in summary.calls:
            callee = project.functions.get(qualname)
            if callee is not None:
                targets.append(callee)
        if method_fallback:
            for name in summary.method_calls:
                targets.extend(project.methods_named(name))
        for target in targets:
            if target.qualname not in seen:
                seen.add(target.qualname)
                stack.append(target)
    return draws


def _pair_violations(project: Project,
                     memo: dict[str, object]) -> Iterable[Violation]:
    for pair in project.pairs:
        kernel = project.functions.get(pair.kernel)
        if kernel is None:  # pragma: no cover - owner always indexed
            continue
        reference = project.function_for_dotted(pair.reference)
        if reference is None:
            yield Violation(
                code="FL013", path=kernel.context.path,
                line=pair.annotation_line, column=0,
                message=(f"pair target '{pair.reference}' not found "
                         "in the analyzed file set"))
            continue
        summary = analyze_function(kernel, project, memo)
        for draw in summary.draws:
            if draw.conditional:
                yield Violation(
                    code="FL013", path=kernel.context.path,
                    line=draw.line, column=draw.col,
                    message=(
                        f"conditional draw '.{draw.method}()' in "
                        f"paired kernel '{kernel.qualname}': the "
                        "draw count depends on data, diverging from "
                        f"reference '{reference.qualname}'"))
        kernel_draws = _draw_closure(project, kernel, memo,
                                     method_fallback=False)
        reference_draws = _draw_closure(project, reference, memo,
                                        method_fallback=True)
        for method in sorted(kernel_draws - reference_draws):
            yield Violation(
                code="FL013", path=kernel.context.path,
                line=kernel.node.lineno, column=kernel.node.col_offset,
                message=(
                    f"paired kernel '{kernel.qualname}' draws via "
                    f"'.{method}()' but reference "
                    f"'{reference.qualname}' never draws "
                    f"'{method}' on any path"))


# -- FL014 ------------------------------------------------------------

def _is_object_dtype(node: ast.expr, context: ModuleContext) -> bool:
    if isinstance(node, ast.Name) and node.id == "object":
        return True
    if isinstance(node, ast.Constant) and node.value == "object":
        return True
    dotted = context.resolve_call_target(node) \
        if isinstance(node, ast.Attribute) else None
    return dotted in ("numpy.object_", "builtins.object")


def _is_view_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "view")


def _kernel_dtype_violations(context: ModuleContext
                             ) -> Iterable[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = context.resolve_call_target(node.func)
        for keyword in node.keywords:
            if keyword.arg == "dtype" and \
                    _is_object_dtype(keyword.value, context):
                yield Violation(
                    code="FL014", path=context.path,
                    line=node.lineno, column=node.col_offset,
                    message=("object-dtype upcast in kernel module; "
                             "kernels must stay on fixed-width "
                             "numeric dtypes"))
        if dotted == "numpy.array":
            literal = bool(node.args) and \
                isinstance(node.args[0], (ast.List, ast.Tuple))
            has_dtype = any(k.arg == "dtype" for k in node.keywords)
            if literal and not has_dtype:
                yield Violation(
                    code="FL014", path=context.path,
                    line=node.lineno, column=node.col_offset,
                    message=("np.array([...]) literal without an "
                             "explicit dtype= in kernel module; the "
                             "inferred dtype is platform-dependent"))
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr == "astype" and node.args and \
                _is_object_dtype(node.args[0], context):
            yield Violation(
                code="FL014", path=context.path,
                line=node.lineno, column=node.col_offset,
                message=("object-dtype upcast in kernel module; "
                         "kernels must stay on fixed-width numeric "
                         "dtypes"))
        elif dotted == "numpy.array_equal":
            if not any(_is_view_call(arg) for arg in node.args):
                yield Violation(
                    code="FL014", path=context.path,
                    line=node.lineno, column=node.col_offset,
                    message=("bit-identity comparison without a "
                             "uint64 view: float '==' masks "
                             "-0.0/NaN divergence; compare "
                             "a.view(np.uint64) against "
                             "b.view(np.uint64)"))


# -- driver -----------------------------------------------------------

def seedflow_violations(project: Project) -> list[Violation]:
    """Run every active seedflow rule over an indexed project."""
    codes = _active_codes(project.config)
    memo: dict[str, object] = {}
    raw: list[Violation] = []
    if codes & {"FL011", "FL012"}:
        for info in project.functions.values():
            if _library_scope(info.context):
                raw.extend(_creation_violations(info, project, memo,
                                                codes))
    if "FL013" in codes:
        raw.extend(_pair_violations(project, memo))
    if "FL014" in codes:
        for context in project.modules.values():
            if context.is_kernel_path:
                raw.extend(_kernel_dtype_violations(context))

    by_path = {context.path: context
               for context in project.modules.values()}
    grouped: dict[Path, list[Violation]] = defaultdict(list)
    for violation in raw:
        grouped[violation.path].append(violation)
    filtered: list[Violation] = []
    for path, violations in grouped.items():
        context = by_path.get(path)
        lines = context.lines if context is not None else ()
        filtered.extend(filter_suppressed(violations, lines))
    filtered.sort(key=lambda v: (str(v.path), v.line, v.column,
                                 v.code))
    return filtered


def run_seedflow(paths: Iterable[str | Path],
                 config: LintConfig | None = None, *,
                 root: Path | None = None) -> list[Violation]:
    """Build the project index for ``paths`` and run FL011-FL014."""
    config = config or LintConfig()
    project = build_project(paths, config, root=root)
    violations = list(project.parse_errors)
    violations.extend(seedflow_violations(project))
    violations.sort(key=lambda v: (str(v.path), v.line, v.column,
                                   v.code))
    return violations
