"""Tests for repro.profiles.profile."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.profiles.profile import UserProfile


class TestUserProfileValidation:
    def test_valid_profile(self):
        profile = UserProfile(probabilities=np.array([0.6, 0.4]))
        assert profile.n_elements == 2
        assert profile.importance == 1.0

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(ValidationError):
            UserProfile(probabilities=np.array([0.6, 0.6]))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            UserProfile(probabilities=np.array([1.4, -0.4]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            UserProfile(probabilities=np.empty(0))

    def test_rejects_nonpositive_importance(self):
        with pytest.raises(ValidationError):
            UserProfile(probabilities=np.array([1.0]), importance=0.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            UserProfile(probabilities=np.array([np.nan, 1.0]))

    def test_probabilities_immutable(self):
        profile = UserProfile(probabilities=np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            profile.probabilities[0] = 0.9


class TestConstructors:
    def test_from_weights_normalizes(self):
        profile = UserProfile.from_weights(np.array([3.0, 1.0]))
        assert profile.probabilities == pytest.approx([0.75, 0.25])

    def test_from_weights_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            UserProfile.from_weights(np.zeros(3))

    def test_from_weights_rejects_negative(self):
        with pytest.raises(ValidationError):
            UserProfile.from_weights(np.array([1.0, -1.0]))

    def test_from_access_counts_dense(self):
        profile = UserProfile.from_access_counts(
            np.array([2.0, 0.0, 6.0]), 3)
        assert profile.probabilities == pytest.approx([0.25, 0.0, 0.75])

    def test_from_access_counts_sparse(self):
        profile = UserProfile.from_access_counts({0: 1, 2: 3}, 4)
        assert profile.probabilities == pytest.approx(
            [0.25, 0.0, 0.75, 0.0])

    def test_from_access_counts_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            UserProfile.from_access_counts({5: 1}, 3)

    def test_from_access_counts_rejects_negative(self):
        with pytest.raises(ValidationError):
            UserProfile.from_access_counts({0: -1}, 3)

    def test_from_access_counts_rejects_wrong_shape(self):
        with pytest.raises(ValidationError):
            UserProfile.from_access_counts(np.array([1.0, 2.0]), 3)

    def test_from_attribute(self):
        # A day-trader profile: interest proportional to volatility.
        volatility = np.array([0.5, 2.0, 1.5])
        profile = UserProfile.from_attribute(volatility,
                                             lambda v: v ** 2)
        expected = volatility ** 2 / (volatility ** 2).sum()
        assert profile.probabilities == pytest.approx(expected)

    def test_from_attribute_rejects_shape_change(self):
        with pytest.raises(ValidationError):
            UserProfile.from_attribute(np.array([1.0, 2.0]),
                                       lambda v: v[:1])


class TestUniformMixture:
    def test_epsilon_zero_is_identity(self):
        profile = UserProfile(probabilities=np.array([0.9, 0.1]))
        blended = profile.uniform_mixture(0.0)
        assert np.allclose(blended.probabilities,
                           profile.probabilities)

    def test_epsilon_one_is_uniform(self):
        profile = UserProfile(probabilities=np.array([0.9, 0.1]))
        blended = profile.uniform_mixture(1.0)
        assert np.allclose(blended.probabilities, 0.5)

    def test_intermediate_mix(self):
        profile = UserProfile(probabilities=np.array([1.0, 0.0]))
        blended = profile.uniform_mixture(0.5)
        assert blended.probabilities == pytest.approx([0.75, 0.25])

    def test_rejects_bad_epsilon(self):
        profile = UserProfile(probabilities=np.array([1.0]))
        with pytest.raises(ValidationError):
            profile.uniform_mixture(1.5)
        with pytest.raises(ValidationError):
            profile.uniform_mixture(-0.1)
