"""k-means cluster refinement of partitions (paper §4.1.3).

Starting from the contiguous sort-based partitions, a few iterations
of k-means in the (p, λ̂) plane "clean up" clustering mistakes: the
Euclidean distance

    d(e₁, e₂) = √((p₁ − p₂)² + (λ̂₁ − λ̂₂)²),

with change rates normalized so Σλ̂ = 1 (the paper's footnote 6),
pulls together elements that the one-dimensional sort key separated.
The paper's striking observation — reproduced by Figures 8 and 9 —
is that a *small* number of iterations on a *coarse* partitioning
recovers most of the gap to the ideal solution at a fraction of the
optimization cost.

For the variable-size extension the feature space gains a normalized
size coordinate, mirroring how PF/s-partitioning folds size in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.contracts import (
    check_budget_feasible,
    check_nonnegative,
    check_partition_labels,
    postcondition,
)
from repro.core.allocation import AllocationPolicy, expand_partition_frequencies
from repro.core.freshness import FreshnessModel
from repro.core.metrics import perceived_freshness
from repro.core.partitioning import PartitionAssignment
from repro.core.representatives import (
    build_representatives,
    solve_transformed_problem,
)
from repro.errors import ValidationError
from repro.numerics.kmeans import kmeans_iterate
from repro.workloads.catalog import Catalog

__all__ = ["ClusterRefinementStep", "clustering_features",
           "refine_partitions"]


@dataclass(frozen=True)
class ClusterRefinementStep:
    """The heuristic solution after some k-means iterations.

    Attributes:
        iterations: Number of completed k-means iterations (0 = the
            initial sort-based partitioning).
        assignment: The partitioning at this step.
        frequencies: Per-element sync frequencies from solving the
            Transformed Problem at this step.
        perceived_freshness: Analytic PF of those frequencies.
        converged: True once k-means stopped moving points.
    """

    iterations: int
    assignment: PartitionAssignment
    frequencies: np.ndarray
    perceived_freshness: float
    converged: bool


def clustering_features(catalog: Catalog, *,
                        include_sizes: bool = False) -> np.ndarray:
    """Feature matrix for the refinement distance (footnote 6).

    Args:
        catalog: Workload description.
        include_sizes: Add a normalized size coordinate (used for the
            variable-size refinement of §5.3).

    Returns:
        Shape ``(N, 2)`` — columns (p, λ̂) — or ``(N, 3)`` with sizes.
    """
    p = catalog.access_probabilities
    lam_total = catalog.change_rates.sum()
    if lam_total <= 0.0:
        normalized_rates = np.zeros_like(p)
    else:
        normalized_rates = catalog.change_rates / lam_total
    columns = [p, normalized_rates]
    if include_sizes:
        columns.append(catalog.sizes / catalog.sizes.sum())
    return np.column_stack(columns)


def _check_refinement_steps(steps: "list[ClusterRefinementStep]",
                            arguments: Mapping[str, object]) -> None:
    """Postcondition: every step is a feasible heuristic solution.

    Each k-means step's expanded frequencies must stay within the
    bandwidth budget (FBA/FFA expansion preserves ``Σ sⱼfⱼ``) and its
    labels must remain a valid assignment — a point dropped by an
    empty-cluster edge case would silently leak profile mass.
    """
    catalog: Catalog = arguments["catalog"]  # type: ignore[assignment]
    bandwidth = float(arguments["bandwidth"])  # type: ignore[arg-type]
    where = "refine_partitions"
    for step in steps:
        check_partition_labels(step.assignment.labels,
                               step.assignment.n_partitions, where=where)
        check_nonnegative(step.frequencies, name="frequencies",
                          where=where)
        check_budget_feasible(catalog.sizes, step.frequencies,
                              bandwidth, where=where)


@postcondition(_check_refinement_steps)
def refine_partitions(catalog: Catalog, bandwidth: float,
                      initial: PartitionAssignment, *,
                      iterations: int,
                      model: FreshnessModel | None = None,
                      allocation: AllocationPolicy | str =
                      AllocationPolicy.FIXED_BANDWIDTH,
                      include_sizes: bool | None = None,
                      ) -> list[ClusterRefinementStep]:
    """Run k-means refinement, solving and scoring after each iteration.

    Args:
        catalog: Workload description.
        bandwidth: Sync bandwidth budget B, in size units per period.
        initial: Starting partitioning (typically PF-partitioning).
        iterations: Maximum k-means iterations to run.
        model: Freshness model for the transformed solves.
        allocation: Intra-partition allocation policy (irrelevant for
            uniform sizes; FBA by default per §5.3).
        include_sizes: Whether the clustering feature space includes
            sizes; defaults to True exactly when the catalog has
            non-uniform sizes.

    Returns:
        Steps 0..iterations — step 0 is the unrefined partitioning.
        The list is cut short if k-means converges early.
    """
    if iterations < 0:
        raise ValidationError(f"iterations must be >= 0, got {iterations}")
    use_sizes = (not catalog.has_uniform_sizes if include_sizes is None
                 else include_sizes)
    features = clustering_features(catalog, include_sizes=use_sizes)

    def evaluate(assignment: PartitionAssignment, completed: int,
                 converged: bool) -> ClusterRefinementStep:
        problem = build_representatives(catalog, assignment)
        solution = solve_transformed_problem(problem, bandwidth, model=model)
        frequencies = expand_partition_frequencies(
            catalog, problem, solution.frequencies, allocation)
        score = perceived_freshness(catalog, frequencies, model=model)
        return ClusterRefinementStep(iterations=completed,
                                     assignment=assignment,
                                     frequencies=frequencies,
                                     perceived_freshness=score,
                                     converged=converged)

    steps = [evaluate(initial, 0, converged=False)]
    if iterations == 0:
        return steps
    for state in kmeans_iterate(features, initial.labels,
                                initial.n_partitions):
        assignment = initial.with_labels(state.labels)
        steps.append(evaluate(assignment, state.iterations,
                              state.converged))
        if state.converged or state.iterations >= iterations:
            break
    return steps
