"""Generic water-filling for separable concave resource allocation.

Problems of the form ``max Σ uᵢ(xᵢ) s.t. Σ cᵢ·xᵢ = B, xᵢ ≥ 0`` with
each ``uᵢ`` smooth, increasing and strictly concave are solved exactly
by their KKT conditions: there is a multiplier ``μ ≥ 0`` such that

* ``uᵢ'(xᵢ) = μ·cᵢ`` for every item with ``xᵢ > 0``, and
* ``uᵢ'(0⁺) ≤ μ·cᵢ`` for every item with ``xᵢ = 0``.

The caller supplies ``allocate_at(μ)``, which inverts the marginal
conditions item-by-item (typically vectorized), and this module runs
the outer search for the ``μ`` whose total cost matches the budget.
Total cost is strictly decreasing in ``μ``, so plain bisection on a
bracket is exact and robust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Tuple

import numpy as np

from repro.contracts import (
    check_budget_feasible,
    check_nonnegative,
    postcondition,
)
from repro.errors import ConvergenceError, InfeasibleProblemError, ValidationError
from repro.obs import registry as obs

__all__ = ["WaterfillResult", "waterfill"]

#: Relative tolerance on the allocated budget.
DEFAULT_BUDGET_RTOL = 1e-10
#: Cap on outer bisection iterations.
DEFAULT_MAXITER = 200

#: ``allocate_at(μ)`` returns ``(allocations, total_cost)``.
AllocateAt = Callable[[float], Tuple[np.ndarray, float]]


@dataclass(frozen=True)
class WaterfillResult:
    """Outcome of a water-filling search.

    Attributes:
        allocations: Per-item allocation ``xᵢ`` (1-D float array).
        multiplier: The KKT multiplier ``μ`` at the solution.
        cost: Total cost ``Σ cᵢ·xᵢ`` of the returned allocations
            (equal to the budget up to the requested tolerance).
        iterations: Outer bisection iterations performed.
    """

    allocations: np.ndarray
    multiplier: float
    cost: float
    iterations: int


def _check_waterfill_result(result: "WaterfillResult",
                            arguments: Mapping[str, object]) -> None:
    """Postcondition: allocations ≥ 0, μ ≥ 0, and budget feasibility.

    The budget bound only applies on the ``snap=True`` path: with
    ``snap=False`` the caller asked for the raw bisection endpoint,
    which may sit on the over-budget side of a degenerate activation
    kink (the Core-Problem solver post-processes and re-snaps it, and
    its own contract checks the final allocation).
    """
    where = "waterfill"
    budget = float(arguments["budget"])  # type: ignore[arg-type]
    rtol = float(arguments["budget_rtol"])  # type: ignore[arg-type]
    check_nonnegative(result.allocations, name="allocations",
                      where=where)
    check_nonnegative(np.asarray([result.multiplier]),
                      name="multiplier", where=where)
    if arguments["snap"]:
        check_budget_feasible(np.ones(1), np.asarray([result.cost]),
                              budget, rtol=max(rtol * 4.0, 1e-12),
                              where=where)


def _record_telemetry(expansions: int, iterations: int, cost: float,
                      budget: float, *, saturated: bool) -> None:
    """Record one waterfill outcome into the telemetry registry.

    ``cost``/``budget`` are in the caller's cost units per period;
    the exit residual gauge is their relative gap (dimensionless).
    """
    if not obs.telemetry_enabled():
        return
    obs.counter_add("waterfill.calls")
    obs.counter_add("waterfill.iterations", iterations)
    obs.observe("waterfill.iterations", iterations)
    if expansions:
        obs.counter_add("waterfill.bracket_expansions", expansions)
    if saturated:
        obs.counter_add("waterfill.saturated_exits")
    obs.gauge_set("waterfill.exit_residual",
                  abs(cost - budget) / budget if budget else 0.0)


@postcondition(_check_waterfill_result)
def waterfill(allocate_at: AllocateAt, budget: float, mu_max: float, *,
              budget_rtol: float = DEFAULT_BUDGET_RTOL,
              maxiter: int = DEFAULT_MAXITER,
              snap: bool = True,
              bracket: Tuple[float, float] | None = None
              ) -> WaterfillResult:
    """Find the multiplier whose allocation consumes exactly ``budget``.

    Args:
        allocate_at: Maps a multiplier ``μ > 0`` to the KKT-optimal
            allocations and their total cost.  Cost must be continuous
            and nonincreasing in ``μ``.
        budget: Total budget ``B > 0``.
        mu_max: A multiplier at (or above) which every allocation is
            zero — i.e. ``max uᵢ'(0⁺)/cᵢ``.
        budget_rtol: Stop when ``|cost − budget| ≤ budget_rtol·budget``.
        maxiter: Cap on bisection iterations.
        snap: Rescale the final allocations onto the budget exactly.
            Callers that post-process degenerate (threshold) items —
            like the Core-Problem solver — pass False and snap
            themselves.
        bracket: Optional warm-start bracket ``(μ_lo, μ_hi)`` already
            known to satisfy ``cost(μ_lo) ≥ budget ≥ cost(μ_hi)`` —
            skips the geometric bracketing phase (used by the
            incremental solver).

    Returns:
        A :class:`WaterfillResult` whose allocations are rescaled so
        the cost matches ``budget`` exactly — unless the utilities
        saturate below the budget, in which case the saturated
        allocation is returned with ``multiplier`` 0 and its true
        (smaller) cost.

    Raises:
        InfeasibleProblemError: If ``budget`` or ``mu_max`` is not
            positive.
        ConvergenceError: If the iteration cap is exhausted without
            meeting the budget tolerance.
    """
    if budget <= 0.0:
        raise InfeasibleProblemError(f"budget must be positive, got {budget!r}")
    if not np.isfinite(budget):
        raise ValidationError(f"budget must be finite, got {budget!r}")
    if mu_max <= 0.0:
        raise InfeasibleProblemError(
            f"mu_max must be positive, got {mu_max!r}; "
            "no item has positive marginal utility"
        )

    expansions = 0
    if bracket is not None:
        mu_lo, mu_hi = bracket
        if not 0.0 < mu_lo < mu_hi:
            raise ValidationError(
                f"invalid warm bracket ({mu_lo}, {mu_hi})")
        _, cost_lo = allocate_at(mu_lo)
        _, cost_hi = allocate_at(mu_hi)
        if not cost_hi <= budget <= cost_lo:
            raise ValidationError(
                "warm bracket does not straddle the budget: "
                f"cost({mu_lo})={cost_lo}, cost({mu_hi})={cost_hi}, "
                f"budget={budget}")
    else:
        # Establish the bracket [mu_lo, mu_hi] with cost(mu_lo) >=
        # budget >= cost(mu_hi).  cost(mu_max) == 0 <= budget by
        # definition.
        mu_hi = mu_max
        mu_lo = mu_max
        cost_lo = 0.0
        cost_hi = 0.0
        for expansions in range(1, maxiter + 1):
            mu_lo *= 0.5
            _, cost_lo = allocate_at(mu_lo)
            if cost_lo >= budget:
                break
        else:
            # The utilities saturate: even an (effectively) zero price
            # does not spend the budget.  With the constraint read as
            # Σcᵢxᵢ ≤ B — the natural form for a resource *budget* —
            # the saturated allocation is optimal, so return it
            # unscaled.
            allocations, cost = allocate_at(mu_lo)
            _record_telemetry(expansions, maxiter, cost, budget,
                              saturated=True)
            return WaterfillResult(allocations=allocations,
                                   multiplier=0.0, cost=cost,
                                   iterations=maxiter)

    # Illinois (modified regula falsi) on f(μ) = cost(μ) − budget over
    # the bracket: superlinear on the smooth segments of the cost
    # curve, and the maintained bracket keeps it safe across the kinks
    # at activation thresholds.  Each evaluation is a full vectorized
    # allocation, so cutting evaluations from ~100 (bisection) to
    # ~10-20 matters at catalog scale.
    allocations, cost = allocate_at(mu_lo)
    mu = mu_lo
    f_lo = cost_lo - budget
    f_hi = cost_hi - budget
    last_side = 0
    iterations = 0
    for iterations in range(1, maxiter + 1):
        denom = f_hi - f_lo
        if denom < 0.0:
            mu = mu_hi - f_hi * (mu_hi - mu_lo) / denom
        else:
            mu = 0.5 * (mu_lo + mu_hi)
        if not mu_lo < mu < mu_hi:
            mu = 0.5 * (mu_lo + mu_hi)
        allocations, cost = allocate_at(mu)
        residual = cost - budget
        if abs(residual) <= budget_rtol * budget:
            break
        # The μ bracket can bottom out at float precision while the
        # cost residual is still above an aggressive tolerance (the
        # inner inversion has its own tolerance).  The final snap onto
        # the budget makes that residual harmless, so accept.
        if mu_hi - mu_lo <= 4.0 * np.finfo(float).eps * mu_hi:
            break
        if residual > 0.0:
            mu_lo, f_lo = mu, residual
            if last_side == 1:
                f_hi *= 0.5  # Illinois: halve the stagnant endpoint
            last_side = 1
        else:
            mu_hi, f_hi = mu, residual
            if last_side == -1:
                f_lo *= 0.5
            last_side = -1
    else:
        obs.counter_add("waterfill.convergence_failures")
        raise ConvergenceError(
            f"water-filling did not reach budget rtol {budget_rtol} in "
            f"{maxiter} iterations (cost={cost}, budget={budget})",
            iterations=maxiter, residual=abs(cost - budget),
        )

    _record_telemetry(expansions, iterations, cost, budget,
                      saturated=False)
    # Snap the (already extremely close) allocation onto the budget so
    # downstream equality checks hold exactly.
    if snap and cost > 0.0:
        allocations = allocations * (budget / cost)
        cost = budget
    return WaterfillResult(allocations=allocations, multiplier=mu,
                           cost=cost, iterations=iterations)
