"""FL001 — reproducible randomness.

Every experiment in the reproduction (Poisson change streams, Zipf
access draws, trace bootstraps) must be replayable from a seed, so the
legacy global-state ``numpy.random`` API is banned outright and
``default_rng()`` without a seed is confined to entry-point scripts.
Library code must *accept* a ``numpy.random.Generator`` and thread it
through rather than conjure ambient randomness.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["UnseededRandomness"]

#: Names under ``numpy.random`` that are fine to call or construct.
_ALLOWED_RANDOM_ATTRS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_LEGACY_PREFIXES = ("numpy.random.", "np.random.")


def _is_legacy_global_call(target: str) -> bool:
    for prefix in _LEGACY_PREFIXES:
        if target.startswith(prefix):
            attr = target[len(prefix):]
            return "." not in attr and attr not in _ALLOWED_RANDOM_ATTRS
    return False


class UnseededRandomness(Rule):
    """Ban legacy ``np.random.*`` and argless ``default_rng()``."""

    code = "FL001"
    name = "unseeded-randomness"
    summary = ("legacy np.random.* global-state API, and default_rng() "
               "without a seed outside entry points")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = context.resolve_call_target(node.func)
            if target is None:
                continue
            if _is_legacy_global_call(target):
                yield self.violation(
                    context, node,
                    f"call to legacy global-state RNG `{target}`; pass a "
                    "seeded np.random.Generator instead (np.random.* "
                    "draws are unreplayable and race across threads)")
            elif (target.endswith("numpy.random.default_rng")
                  or target == "numpy.random.default_rng"):
                if not node.args and not node.keywords \
                        and not context.is_entry_point \
                        and not context.is_test:
                    yield self.violation(
                        context, node,
                        "default_rng() without a seed in library code; "
                        "accept a Generator (or a seed) from the caller "
                        "so Poisson change streams are reproducible")
