"""Tests for repro.core.tuning — automatic partition-count search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import solve_core_problem
from repro.core.tuning import auto_tune_partitions
from repro.errors import ValidationError
from repro.workloads.presets import ExperimentSetup, build_catalog

SETUP = ExperimentSetup(n_objects=400, updates_per_period=800.0,
                        syncs_per_period=200.0, theta=1.0,
                        update_std_dev=1.5)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(SETUP, alignment="shuffled", seed=8)


class TestAutoTune:
    def test_converges_near_the_optimum(self, catalog):
        result = auto_tune_partitions(catalog,
                                      SETUP.syncs_per_period)
        optimum = solve_core_problem(
            catalog, SETUP.syncs_per_period).objective
        assert result.plan.perceived_freshness > 0.95 * optimum
        assert result.plan.perceived_freshness <= optimum + 1e-8

    def test_chooses_far_fewer_partitions_than_elements(self, catalog):
        result = auto_tune_partitions(catalog, SETUP.syncs_per_period,
                                      gain_tolerance=0.01)
        assert result.n_partitions < catalog.n_elements
        assert result.stopped_by in ("converged", "exhausted")

    def test_evaluations_are_doublings(self, catalog):
        result = auto_tune_partitions(catalog, SETUP.syncs_per_period,
                                      start=8)
        ks = [k for k, _, _ in result.evaluations]
        for before, after in zip(ks, ks[1:]):
            assert after == min(2 * before, catalog.n_elements)

    def test_best_plan_matches_best_evaluation(self, catalog):
        result = auto_tune_partitions(catalog, SETUP.syncs_per_period)
        best_pf = max(pf for _, pf, _ in result.evaluations)
        assert result.plan.perceived_freshness == pytest.approx(
            best_pf)

    def test_tight_tolerance_pushes_to_larger_k(self, catalog):
        loose = auto_tune_partitions(catalog, SETUP.syncs_per_period,
                                     gain_tolerance=0.05)
        tight = auto_tune_partitions(catalog, SETUP.syncs_per_period,
                                     gain_tolerance=1e-5)
        assert tight.n_partitions >= loose.n_partitions
        assert tight.plan.perceived_freshness >= \
            loose.plan.perceived_freshness - 1e-9

    def test_time_budget_halts_search(self, catalog):
        result = auto_tune_partitions(catalog, SETUP.syncs_per_period,
                                      gain_tolerance=1e-12,
                                      time_budget=1e-9)
        # The budget expires after the very first evaluation window.
        assert len(result.evaluations) <= 2
        assert result.stopped_by == "time"

    def test_tiny_catalog_exhausts(self, small_catalog):
        result = auto_tune_partitions(small_catalog, 3.0, start=2,
                                      gain_tolerance=1e-12)
        assert result.stopped_by in ("exhausted", "converged")
        ks = [k for k, _, _ in result.evaluations]
        assert ks[-1] <= small_catalog.n_elements

    def test_validation(self, small_catalog):
        with pytest.raises(ValidationError):
            auto_tune_partitions(small_catalog, 3.0, start=0)
        with pytest.raises(ValidationError):
            auto_tune_partitions(small_catalog, 3.0,
                                 gain_tolerance=0.0)
        with pytest.raises(ValidationError):
            auto_tune_partitions(small_catalog, 3.0, time_budget=0.0)

    def test_refinement_supported(self, catalog):
        result = auto_tune_partitions(catalog, SETUP.syncs_per_period,
                                      cluster_iterations=2,
                                      gain_tolerance=0.02)
        assert result.plan.metadata["cluster_iterations"] >= 1
