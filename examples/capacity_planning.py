"""Capacity planning: how much link do you need for a freshness SLO?

The inverse of the scheduling problem: operations asks "what is the
cheapest link that keeps perceived freshness at or above a target?"
This script:

1. sweeps the bandwidth budget and solves the Core Problem at each
   point, producing the PF-vs-bandwidth frontier;
2. picks the smallest budget meeting the SLO;
3. converts it to a physical link capacity with
   :meth:`~repro.sim.queueing.SyncLink.required_capacity` and
   validates the choice by replaying the actual timed schedule
   through the FIFO link model — confirming the rate-cap abstraction
   holds (bounded lateness, utilization < 1) at the provisioned
   capacity and collapses just below it.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import PerceivedFreshener, SyncLink, build_catalog
from repro.workloads import ExperimentSetup

SETUP = ExperimentSetup(n_objects=400, updates_per_period=800.0,
                        syncs_per_period=200.0, theta=1.1,
                        update_std_dev=1.5)
TARGET_PF = 0.75
HEADROOM = 1.15  # engineering margin over the offered load
HORIZON = 25.0   # periods replayed for validation


def main() -> None:
    catalog = build_catalog(SETUP, seed=13, size_shape=2.0)
    planner = PerceivedFreshener()

    print(f"target: perceived freshness >= {TARGET_PF}")
    print()
    print("bandwidth sweep (budget -> optimal PF):")
    budgets = SETUP.updates_per_period * np.array(
        [0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5])
    chosen_budget = None
    chosen_plan = None
    for budget in budgets:
        plan = planner.plan(catalog, float(budget))
        marker = ""
        if chosen_budget is None and \
                plan.perceived_freshness >= TARGET_PF:
            chosen_budget = float(budget)
            chosen_plan = plan
            marker = "  <- smallest budget meeting the SLO"
        print(f"  B = {budget:7.1f}  PF = "
              f"{plan.perceived_freshness:.4f}{marker}")
    if chosen_plan is None:
        raise SystemExit("SLO unreachable in the swept range")

    load = SyncLink(1.0).required_capacity(chosen_plan.frequencies,
                                           catalog.sizes)
    capacity = HEADROOM * load
    print()
    print(f"offered load at B = {chosen_budget:.0f}: "
          f"{load:.1f} bandwidth units / period")
    print(f"provision capacity = {capacity:.1f} "
          f"({HEADROOM:.2f}x headroom)")

    # Validate by replaying the timed schedule through the link.
    schedule = chosen_plan.schedule(period_length=1.0)
    times, elements = schedule.events_until(HORIZON)
    for label, factor in (("provisioned", HEADROOM),
                          ("underprovisioned", 0.8)):
        link = SyncLink(capacity=factor * load)
        result = link.replay(times, elements, catalog.sizes,
                             horizon=HORIZON)
        print(f"  {label:16s}: utilization {result.utilization:5.1%}, "
              f"max lateness {result.max_lateness:7.2f} periods, "
              f"backlog {result.backlog_at_end}")


if __name__ == "__main__":
    main()
