"""Stock-ticker scenario: interest aligned with volatility.

The paper's day-trader example: "volatile stocks might be more
interesting to day-traders purely due to their volatility".  This is
the *aligned* case where ignoring profiles is most costly — General
Freshening deliberately starves fast-changing elements (they are
expensive to keep fresh), but those are exactly the quotes the
traders watch.

User profiles are built from a measurable attribute (volatility) via
``UserProfile.from_attribute``, aggregated with importance weights
(the institutional desk counts 5x), and the PF/GF schedules are
compared analytically and in simulation.

Run:  python examples/stock_ticker.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Catalog,
    GeneralFreshener,
    PerceivedFreshener,
    Simulation,
    UserProfile,
    aggregate_profiles,
)

N_TICKERS = 400
BANDWIDTH = 200.0  # quote refreshes per period


def main() -> None:
    rng = np.random.default_rng(11)
    # Updates per period ~ trade intensity: a few meme stocks move
    # constantly, most tickers barely trade.
    volatility = rng.lognormal(mean=0.3, sigma=1.0, size=N_TICKERS)

    # Three user communities, each a density over the volatility
    # attribute (the paper's "importance vs ticker" profile form).
    day_traders = UserProfile.from_attribute(
        volatility, lambda v: v ** 2, importance=1.0,
        name="day-traders")
    index_fund = UserProfile.from_attribute(
        volatility, lambda v: np.ones_like(v), importance=1.0,
        name="index-fund")
    institutional = UserProfile.from_attribute(
        volatility, lambda v: np.sqrt(v), importance=5.0,
        name="institutional-desk")
    master = aggregate_profiles([day_traders, index_fund,
                                 institutional])

    catalog = Catalog(access_probabilities=master.probabilities,
                      change_rates=volatility)
    print(f"{N_TICKERS} tickers; the 10 most volatile attract "
          f"{master.probabilities[np.argsort(-volatility)[:10]].sum():.0%}"
          " of all quote lookups")

    pf_plan = PerceivedFreshener().plan(catalog, BANDWIDTH)
    gf_plan = GeneralFreshener().plan(catalog, BANDWIDTH)

    hot = np.argsort(-volatility)[:10]
    print()
    print("bandwidth granted to the 10 hottest tickers:")
    print(f"  PF schedule: {pf_plan.frequencies[hot].sum():6.1f} "
          "syncs/period")
    print(f"  GF schedule: {gf_plan.frequencies[hot].sum():6.1f} "
          "syncs/period   <- profile-blind starvation")

    print()
    print("perceived freshness:")
    print(f"  PF technique: {pf_plan.perceived_freshness:.4f}")
    print(f"  GF technique: {gf_plan.perceived_freshness:.4f}")

    # Watch real traders hit the mirror.
    results = {}
    for name, plan in (("PF", pf_plan), ("GF", gf_plan)):
        sim = Simulation(catalog, plan.frequencies,
                         request_rate=2000.0,
                         rng=np.random.default_rng(3))
        results[name] = sim.run(n_periods=30)
    print()
    print("simulated over 30 periods:")
    for name, result in results.items():
        print(f"  {name}: {result.monitored_perceived_freshness:.4f} of "
              f"{result.n_accesses} quote lookups saw a fresh price")

    assert (results["PF"].monitored_perceived_freshness
            > results["GF"].monitored_perceived_freshness)


if __name__ == "__main__":
    main()
