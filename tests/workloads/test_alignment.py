"""Tests for repro.workloads.alignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.alignment import Alignment, align_values


class TestAlignmentCoerce:
    def test_accepts_members(self):
        assert Alignment.coerce(Alignment.ALIGNED) is Alignment.ALIGNED

    def test_accepts_strings_case_insensitively(self):
        assert Alignment.coerce("ALIGNED") is Alignment.ALIGNED
        assert Alignment.coerce("reverse") is Alignment.REVERSE
        assert Alignment.coerce("Shuffled") is Alignment.SHUFFLED

    def test_rejects_unknown(self):
        with pytest.raises(ValidationError, match="unknown alignment"):
            Alignment.coerce("diagonal")


class TestAlignValues:
    def test_aligned_is_descending(self):
        values = np.array([2.0, 5.0, 1.0, 4.0])
        aligned = align_values(values, Alignment.ALIGNED)
        assert np.array_equal(aligned, [5.0, 4.0, 2.0, 1.0])

    def test_reverse_is_ascending(self):
        values = np.array([2.0, 5.0, 1.0, 4.0])
        reverse = align_values(values, Alignment.REVERSE)
        assert np.array_equal(reverse, [1.0, 2.0, 4.0, 5.0])

    def test_shuffled_preserves_multiset(self, rng):
        values = np.arange(100, dtype=float)
        shuffled = align_values(values, Alignment.SHUFFLED, rng=rng)
        assert sorted(shuffled.tolist()) == values.tolist()

    def test_shuffled_requires_rng(self):
        with pytest.raises(ValidationError, match="requires an rng"):
            align_values(np.ones(3), Alignment.SHUFFLED)

    def test_shuffled_reproducible(self):
        values = np.arange(50, dtype=float)
        first = align_values(values, "shuffled",
                             rng=np.random.default_rng(3))
        second = align_values(values, "shuffled",
                              rng=np.random.default_rng(3))
        assert np.array_equal(first, second)

    def test_does_not_mutate_input(self):
        values = np.array([3.0, 1.0, 2.0])
        original = values.copy()
        align_values(values, Alignment.ALIGNED)
        assert np.array_equal(values, original)

    def test_string_alignment_accepted(self):
        values = np.array([1.0, 3.0, 2.0])
        assert np.array_equal(align_values(values, "aligned"),
                              [3.0, 2.0, 1.0])
