"""FL010 — retry/backoff loops must inject their randomness and clock.

The repo's resilience layer (:mod:`repro.faults.retry`) runs retry
loops inside a *simulation*: backoff jitter comes from an injected
``numpy`` generator and "sleeping" advances an injected clock, so a
retry storm replays bit-identically from a seed.  Two idioms break
that discipline and are banned in library code:

* ``time.sleep(...)`` — blocks the host thread for real wall time.
  A backoff delay belongs to an injected ``sleep`` callable (or an
  advanced simulated timestamp), never to the process clock.
* a retry/backoff function with a loop but no ``rng`` parameter —
  its jitter is either missing (synchronized retry herds) or drawn
  from ambient randomness (unreplayable).  Decorrelated jitter wants
  an injected, seeded generator.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["RetryDiscipline"]

#: Function-name fragments that mark a retry/backoff implementation.
_RETRY_NAMES = ("retry", "backoff")


def _has_loop(function: ast.AST) -> bool:
    return any(isinstance(node, (ast.While, ast.For, ast.AsyncFor))
               for node in ast.walk(function))


def _has_rng_parameter(function: ast.FunctionDef
                       | ast.AsyncFunctionDef) -> bool:
    arguments = function.args
    names = [arg.arg for arg in (*arguments.posonlyargs,
                                 *arguments.args,
                                 *arguments.kwonlyargs)]
    return any(name == "rng" or name.endswith("_rng")
               for name in names)


class RetryDiscipline(Rule):
    """Flag wall-clock sleeps and rng-less retry loops in the library."""

    code = "FL010"
    name = "seeded-retry"
    summary = ("retry/backoff loops must take an injected rng; no "
               "time.sleep in library code")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_library or context.is_test \
                or context.is_entry_point:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                target = context.resolve_call_target(node.func)
                if target == "time.sleep":
                    yield self.violation(
                        context, node,
                        "time.sleep() blocks on the wall clock; "
                        "inject a sleep callable (or advance a "
                        "simulated timestamp) so retries replay "
                        "deterministically")
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                lowered = node.name.lower()
                if not any(part in lowered for part in _RETRY_NAMES):
                    continue
                if _has_loop(node) and not _has_rng_parameter(node):
                    yield self.violation(
                        context, node,
                        f"retry/backoff function {node.name!r} loops "
                        "without an injected rng parameter; backoff "
                        "jitter must come from a seeded generator "
                        "(see repro.faults.retry.RetryPolicy)")
