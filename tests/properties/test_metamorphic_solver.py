"""Metamorphic properties of the Core-Problem solver.

Each test states a transformation of the input whose effect on the
*optimal solution* is known a priori — powerful correctness checks
that need no reference values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import perceived_freshness
from repro.core.solver import solve_core_problem, solve_weighted_problem
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


class TestPermutationEquivariance:
    @given(seeds, st.integers(min_value=2, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_solution_permutes_with_catalog(self, seed, n):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        solution = solve_core_problem(catalog, 0.5 * n)
        permutation = rng.permutation(n)
        permuted = Catalog(
            access_probabilities=catalog.access_probabilities[permutation],
            change_rates=catalog.change_rates[permutation],
            sizes=catalog.sizes[permutation])
        permuted_solution = solve_core_problem(permuted, 0.5 * n)
        assert np.allclose(permuted_solution.frequencies,
                           solution.frequencies[permutation],
                           atol=1e-7)


class TestCloningIdentity:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_cloning_an_element_extends_the_solution(self, seed):
        """Add a clone of element 0 (same weight, rate, cost) and one
        clone's worth of extra budget: the clone and the original each
        take the original frequency and every other element's
        allocation is untouched — the KKT system extends verbatim."""
        rng = np.random.default_rng(seed)
        n = 10
        catalog = random_catalog(rng, n)
        bandwidth = 5.0
        weights = catalog.access_probabilities
        lam = catalog.change_rates
        costs = catalog.sizes
        base = solve_weighted_problem(weights, lam, costs, bandwidth)

        cloned_weights = np.concatenate([[weights[0]], weights])
        cloned_lam = np.concatenate([[lam[0]], lam])
        cloned_costs = np.concatenate([[costs[0]], costs])
        extra = float(costs[0] * base.frequencies[0])
        cloned = solve_weighted_problem(cloned_weights, cloned_lam,
                                        cloned_costs,
                                        bandwidth + extra
                                        if extra > 0 else bandwidth)
        assert cloned.frequencies[0] == pytest.approx(
            cloned.frequencies[1], rel=1e-6, abs=1e-9)
        assert cloned.frequencies[0] == pytest.approx(
            base.frequencies[0], rel=1e-4, abs=1e-6)
        assert np.allclose(cloned.frequencies[1:], base.frequencies,
                           atol=1e-5)


class TestScalingInvariances:
    @given(seeds, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_joint_rate_bandwidth_scaling(self, seed, factor):
        """Scaling all rates AND the budget by c scales frequencies by
        c and leaves freshness unchanged (time-unit change)."""
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 12)
        base = solve_core_problem(catalog, 6.0)
        scaled_catalog = catalog.with_change_rates(
            factor * catalog.change_rates)
        scaled = solve_core_problem(scaled_catalog, factor * 6.0)
        assert np.allclose(scaled.frequencies,
                           factor * base.frequencies, rtol=1e-5,
                           atol=1e-8)
        assert scaled.objective == pytest.approx(base.objective,
                                                 abs=1e-8)

    @given(seeds, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_joint_size_bandwidth_scaling(self, seed, factor):
        """Scaling all sizes and the budget by c leaves frequencies
        unchanged (bandwidth-unit change)."""
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 12, sized=True)
        base = solve_core_problem(catalog, 6.0)
        scaled = solve_core_problem(
            catalog.with_sizes(factor * catalog.sizes), factor * 6.0)
        assert np.allclose(scaled.frequencies, base.frequencies,
                           rtol=1e-6, atol=1e-9)


class TestMonotonicityProperties:
    @given(seeds, st.floats(min_value=1.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_pf_monotone_in_bandwidth(self, seed, factor):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 15)
        low = solve_core_problem(catalog, 3.0)
        high = solve_core_problem(catalog, 3.0 * factor)
        assert high.objective >= low.objective - 1e-10

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_boosting_an_elements_interest_never_lowers_its_bandwidth(
            self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 10)
        base = solve_core_problem(catalog, 5.0)
        # Double element 3's weight (unnormalized weighted problem, so
        # other weights stay fixed).
        boosted = catalog.access_probabilities.copy()
        boosted[3] *= 2.0
        boosted_solution = solve_weighted_problem(
            boosted, catalog.change_rates, catalog.sizes, 5.0)
        assert boosted_solution.frequencies[3] >= \
            base.frequencies[3] - 1e-8

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_dominated_element_gets_less_bandwidth(self, seed):
        """If element a has lower interest AND higher change rate AND
        larger size than element b, it cannot receive a higher sync
        frequency at the optimum."""
        rng = np.random.default_rng(seed)
        n = 8
        weights = rng.uniform(0.05, 1.0, size=n)
        rates = rng.uniform(0.2, 5.0, size=n)
        sizes = rng.uniform(0.5, 2.0, size=n)
        # Force domination: element 0 dominated by element 1.
        weights[0] = weights[1] * 0.5
        rates[0] = rates[1] * 2.0
        sizes[0] = sizes[1] * 1.5
        solution = solve_weighted_problem(weights, rates, sizes, 4.0)
        assert solution.frequencies[0] <= solution.frequencies[1] + 1e-8


class TestOptimalityCertificates:
    @given(seeds, st.integers(min_value=2, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_random_feasible_perturbations_never_improve(self, seed, n):
        """First-order optimality, checked directly: moving budget
        between any two elements of the optimum lowers PF."""
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        bandwidth = 0.6 * n
        solution = solve_core_problem(catalog, bandwidth)
        base_pf = solution.objective
        for _ in range(10):
            i, j = rng.integers(0, n, size=2)
            if i == j:
                continue
            shift = min(0.1, float(solution.frequencies[i]
                                   * catalog.sizes[i]))
            if shift <= 0.0:
                continue
            perturbed = solution.frequencies.copy()
            perturbed[i] -= shift / catalog.sizes[i]
            perturbed[j] += shift / catalog.sizes[j]
            assert perceived_freshness(catalog, perturbed) <= \
                base_pf + 1e-9
