"""Rule registry: every freshlint rule, in code order."""

from __future__ import annotations

from freshlint.rules.base import Rule
from freshlint.rules.fl001_rng import UnseededRandomness
from freshlint.rules.fl002_float_eq import FloatEqualityComparison
from freshlint.rules.fl003_all_exports import AllMatchesReexports
from freshlint.rules.fl004_units import UnitsInDocstring
from freshlint.rules.fl005_ndarray_mutation import NdarrayParamMutation
from freshlint.rules.fl006_exceptions import ExceptionDiscipline
from freshlint.rules.fl007_print import NoPrintInLibrary
from freshlint.rules.fl008_import_cycles import ImportCycles
from freshlint.rules.fl009_wall_clock import WallClockRead
from freshlint.rules.fl010_retry_discipline import RetryDiscipline

__all__ = [
    "ALL_RULES",
    "AllMatchesReexports",
    "ExceptionDiscipline",
    "FloatEqualityComparison",
    "ImportCycles",
    "NdarrayParamMutation",
    "NoPrintInLibrary",
    "RetryDiscipline",
    "Rule",
    "UnitsInDocstring",
    "UnseededRandomness",
    "WallClockRead",
    "rule_by_code",
]

ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomness(),
    FloatEqualityComparison(),
    AllMatchesReexports(),
    UnitsInDocstring(),
    NdarrayParamMutation(),
    ExceptionDiscipline(),
    NoPrintInLibrary(),
    ImportCycles(),
    WallClockRead(),
    RetryDiscipline(),
)


def rule_by_code(code: str) -> Rule:
    """Look up a rule instance by its ``FLxxx`` code."""
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(f"no freshlint rule with code {code!r}")
