"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.workloads import Catalog, ExperimentSetup

#: Repository root (tests/ lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent

# Make the in-repo tooling (tools/freshlint) importable from tests
# without an install step, mirroring how PYTHONPATH=src exposes repro.
_TOOLS_DIR = str(REPO_ROOT / "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_catalog() -> Catalog:
    """A hand-built five-element catalog with skewed interest."""
    return Catalog(
        access_probabilities=np.array([0.4, 0.25, 0.2, 0.1, 0.05]),
        change_rates=np.array([3.0, 0.5, 2.0, 1.0, 4.0]),
    )


@pytest.fixture
def sized_catalog() -> Catalog:
    """A five-element catalog with non-uniform object sizes."""
    return Catalog(
        access_probabilities=np.array([0.4, 0.25, 0.2, 0.1, 0.05]),
        change_rates=np.array([3.0, 0.5, 2.0, 1.0, 4.0]),
        sizes=np.array([0.5, 2.0, 1.0, 4.0, 0.25]),
    )


@pytest.fixture
def tiny_setup() -> ExperimentSetup:
    """A shrunken Table-2 setup for fast experiment tests."""
    return ExperimentSetup(n_objects=60, updates_per_period=120.0,
                           syncs_per_period=30.0, theta=1.0,
                           update_std_dev=1.0)


def random_catalog(rng: np.random.Generator, n: int, *,
                   sized: bool = False) -> Catalog:
    """A random valid catalog for property-based tests."""
    weights = rng.uniform(0.01, 1.0, size=n)
    rates = rng.uniform(0.05, 8.0, size=n)
    sizes = rng.uniform(0.2, 5.0, size=n) if sized else None
    return Catalog(access_probabilities=weights / weights.sum(),
                   change_rates=rates, sizes=sizes)
