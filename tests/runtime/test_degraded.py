"""Degraded-mode replanning tests for the adaptive manager.

Covers the fault-aware loop: loss-rate learning, bandwidth derating,
outage detection with confirmation debounce, recovery after the
window, and world drift layered on top of an outage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.breaker import CircuitBreaker
from repro.obs import registry as obs
from repro.faults.model import FaultPlan, OutageWindow
from repro.faults.retry import RetryPolicy
from repro.runtime.manager import AdaptiveMirrorManager
from repro.workloads.presets import ExperimentSetup, build_catalog

SETUP = ExperimentSetup(n_objects=40, updates_per_period=80.0,
                        syncs_per_period=20.0, theta=1.2,
                        update_std_dev=1.0)

#: The first quarter of the catalog, grouped into one breaker shard.
GROUP = tuple(range(10))


@pytest.fixture
def world():
    return build_catalog(SETUP, alignment="shuffled", seed=4)


def group_shards(n: int) -> np.ndarray:
    shards = np.zeros(n, dtype=np.int64)
    shards[len(GROUP):] = np.arange(1, n - len(GROUP) + 1)
    return shards


def make_manager(world, **kwargs):
    defaults = dict(request_rate=600.0,
                    rng=np.random.default_rng(0),
                    replan_every=2)
    defaults.update(kwargs)
    return AdaptiveMirrorManager(world, SETUP.syncs_per_period,
                                 **defaults)


def outage_manager(world, *, start: float, end: float, **kwargs):
    plan = FaultPlan(outages=(OutageWindow(start=start, end=end,
                                           elements=GROUP),))
    return make_manager(
        world, fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=2),
        breaker=CircuitBreaker(world.n_elements - len(GROUP) + 1,
                               failure_threshold=3, cooldown=0.5),
        shard_of=group_shards(world.n_elements), **kwargs)


class TestLossLearning:
    def test_believed_loss_tracks_the_injected_rate(self, world):
        manager = make_manager(world, fault_plan=FaultPlan.iid(0.3))
        manager.run(8)
        assert manager.beliefs.believed_loss_rate() == \
            pytest.approx(0.3, abs=0.12)

    def test_aware_manager_derates_planned_bandwidth(self, world):
        """The degraded plan spends B·(1−loss); a blind one spends B."""
        def planned_spend(fault_aware: bool) -> float:
            manager = make_manager(world,
                                   fault_plan=FaultPlan.iid(0.3),
                                   fault_aware=fault_aware)
            manager.run(8)
            return float(world.sizes @ manager.current_frequencies)

        blind = planned_spend(False)
        aware = planned_spend(True)
        assert blind == pytest.approx(SETUP.syncs_per_period, rel=0.02)
        assert aware < 0.85 * blind

    def test_fault_free_manager_believes_zero_loss(self, world):
        manager = make_manager(world)
        manager.run(4)
        assert manager.beliefs.believed_loss_rate() == 0.0


class TestOutageReplanning:
    def test_confirmed_outage_drops_to_probe_heartbeat(self, world):
        manager = outage_manager(world, start=1.0, end=9.0,
                                 probe_frequency=2.0)
        manager.run(6)
        freqs = manager.current_frequencies
        group = np.array(GROUP)
        # The dead group is down to the recovery heartbeat; the
        # reachable rest got the reallocated budget.
        assert np.all(freqs[group] == 2.0)
        reachable = np.setdiff1d(np.arange(world.n_elements), group)
        assert float(freqs[reachable].sum()) > 0.0

    def test_short_flap_never_confirms(self, world):
        """An outage shorter than the confirmation window must not
        trigger a degraded replan."""
        manager = outage_manager(world, start=2.0, end=3.0,
                                 outage_confirmation=2)
        with obs.telemetry() as registry:
            manager.run(6)
        freqs = manager.current_frequencies
        assert not np.all(freqs[np.array(GROUP)] == 2.0)
        # Drift/cadence replans may fire, but never an outage replan.
        assert registry.counters.get("manager.outage_replans", 0) == 0
        assert registry.events_of_kind("manager.degraded_plan") == []

    def test_recovery_restores_the_group(self, world):
        manager = outage_manager(world, start=1.0, end=6.0,
                                 probe_frequency=2.0)
        manager.run(5)
        during = manager.current_frequencies.copy()
        group = np.array(GROUP)
        assert np.all(during[group] == 2.0)
        manager.run(12)
        after = manager.current_frequencies
        # Post-recovery the group is planned again, not probed: the
        # solver's continuous output will not land every element on
        # exactly the probe value.
        assert not np.all(after[group] == 2.0)

    def test_reports_carry_fault_accounting(self, world):
        manager = make_manager(world,
                               fault_plan=FaultPlan.iid(0.25),
                               retry_policy=RetryPolicy(max_retries=2))
        reports = manager.run(4)
        assert sum(r.failed_polls for r in reports) > 0
        assert sum(r.retries for r in reports) > 0


class TestDriftUnderOutage:
    def test_interest_flip_during_an_outage_still_recovers(self, world):
        """replace_world drift combined with an outage window: the
        manager must ride out the outage *and* re-learn the flipped
        profile once polls flow again."""
        manager = outage_manager(world, start=8.0, end=13.0,
                                 replan_divergence=0.03)
        manager.run(8)
        drifted = world.with_profile(
            world.access_probabilities[::-1].copy())
        manager.replace_world(drifted)
        crash = manager.run_period(9)      # outage + stale profile
        recovery = manager.run(16)
        assert recovery[-1].achieved_pf > crash.achieved_pf + 0.05

    def test_deterministic_given_seed_under_faults(self, world):
        def run(seed: int):
            manager = outage_manager(
                world, start=1.0, end=5.0,
                rng=np.random.default_rng(seed))
            return [(r.monitored_pf, r.failed_polls, r.retries)
                    for r in manager.run(7)]

        assert run(3) == run(3)
        assert run(3) != run(4)
