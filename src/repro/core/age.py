"""The *age* metric and age-optimal scheduling (Cho & G-M, ref [5]).

Freshness is binary; **age** measures *how* stale a copy is: the time
since the first unseen update.  For a Poisson-updated element synced
every ``I = 1/f``, the expected age at time ``t`` after a sync is
``t − (1 − e^(−λt))/λ``, and its time average over the interval is

    Ā(λ, f) = 1/(2f) − 1/λ + f·(1 − e^(−λ/f))/λ²,

with the limits one expects: 0 as f→∞, ∞ as f→0 (for λ > 0), and
``1/(2f)`` as λ→∞ (a permanently stale copy ages at the polling
half-interval).  Ā is strictly convex in f (``∂²Ā/∂f² =
(1 − e^(−λ/f))/f³ > 0``), and — remarkably — shares its marginal
structure with freshness:

    ∂Ā/∂f = −1/(2f²) + g(λ/f)/λ²,

with the same kernel ``g(r) = 1 − (1+r)e^(−r)``.

**Perceived age** weights by the master profile, ``Σ pᵢ·Āᵢ``, and
:func:`solve_min_age_problem` minimizes it under the bandwidth
constraint by the same water-filling machinery as the Core Problem.
The qualitative difference matters: the marginal age reduction
diverges as f→0⁺, so the age-optimal schedule gives **every**
interesting element some bandwidth — whereas the freshness-optimal
schedule abandons fast changers entirely, driving their age (and the
mirror's perceived age) to infinity.  The ablation benchmark
quantifies this freshness/age tension.
"""

from __future__ import annotations

import numpy as np

from repro.core.freshness import marginal_gain
from repro.core.solver import ScheduleSolution
from repro.errors import InfeasibleProblemError, ValidationError
from repro.numerics.waterfill import waterfill
from repro.workloads.catalog import Catalog

__all__ = [
    "fixed_order_age",
    "age_marginal_reduction",
    "invert_age_marginal",
    "perceived_age",
    "solve_min_age_problem",
    "solve_weighted_age_problem",
]


def fixed_order_age(change_rates: np.ndarray,
                    frequencies: np.ndarray) -> np.ndarray:
    """Time-averaged age ``Ā(λ, f)`` under the Fixed-Order policy.

    Args:
        change_rates: Poisson change rates ``λ ≥ 0``, in changes per
            period.
        frequencies: Sync frequencies ``f ≥ 0``, in syncs per period.

    Returns:
        Element-wise ages in periods: 0 for static elements, ``inf``
        for changing elements that are never synced.
    """
    lam = np.asarray(change_rates, dtype=float)
    f = np.asarray(frequencies, dtype=float)
    lam, f = np.broadcast_arrays(lam, f)
    out = np.zeros(lam.shape, dtype=float)
    live = lam > 0.0
    starved = live & (f == 0.0)
    out[starved] = np.inf
    running = live & (f > 0.0)
    if running.any():
        lam_r = lam[running]
        f_r = f[running]
        r = lam_r / f_r
        # f(1−e^{−r})/λ² computed via expm1 for small-r accuracy.
        tail = -np.expm1(-r) * f_r / lam_r ** 2
        out[running] = 0.5 / f_r - 1.0 / lam_r + tail
        # Clamp epsilon negatives from cancellation at huge f.
        out[running] = np.maximum(out[running], 0.0)
    return out if out.ndim else float(out)


def age_marginal_reduction(change_rates: np.ndarray,
                           frequencies: np.ndarray) -> np.ndarray:
    """Marginal age reduction per unit frequency, ``−∂Ā/∂f``.

    Diverges as f→0⁺ — one more sync always helps an unsynced
    element's age, unlike its (bounded-marginal) freshness.

    Args:
        change_rates: Poisson change rates ``λ ≥ 0``, in changes per
            period.
        frequencies: Sync frequencies ``f > 0`` where λ > 0, in syncs
            per period.

    Returns:
        ``1/(2f²) − g(λ/f)/λ²`` element-wise (0 for static elements,
        ``inf`` at f = 0).
    """
    lam = np.asarray(change_rates, dtype=float)
    f = np.asarray(frequencies, dtype=float)
    lam, f = np.broadcast_arrays(lam, f)
    out = np.zeros(lam.shape, dtype=float)
    live = lam > 0.0
    out[live & (f == 0.0)] = np.inf
    running = live & (f > 0.0)
    if running.any():
        lam_r = lam[running]
        f_r = f[running]
        g = marginal_gain(lam_r / f_r)
        out[running] = 0.5 / f_r ** 2 - g / lam_r ** 2
    return out if out.ndim else float(out)


def invert_age_marginal(change_rates: np.ndarray, targets: np.ndarray,
                        *, iterations: int = 80) -> np.ndarray:
    """The frequency at which ``−∂Ā/∂f`` equals each target.

    The marginal is strictly decreasing from ∞ to 0, so bisection on
    the analytic bracket ``√(1/(2(t + 1/λ²))) ≤ f ≤ √(1/(2t))``
    converges unconditionally.

    Args:
        change_rates: Rates ``λ > 0``, in changes per period.
        targets: Required marginal reductions, ``> 0``.
        iterations: Bisection steps (2⁻⁸⁰ relative bracket).

    Returns:
        Frequencies ``f > 0``.
    """
    lam = np.asarray(change_rates, dtype=float)
    t = np.asarray(targets, dtype=float)
    lam, t = np.broadcast_arrays(lam, t)
    if (lam <= 0.0).any():
        raise ValidationError("age marginals require λ > 0")
    if (t <= 0.0).any():
        raise ValidationError("marginal targets must be positive")
    hi = np.sqrt(0.5 / t)
    lo = np.sqrt(0.5 / (t + 1.0 / lam ** 2))
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        too_high = age_marginal_reduction(lam, mid) > t
        lo = np.where(too_high, mid, lo)
        hi = np.where(too_high, hi, mid)
    return 0.5 * (lo + hi)


def perceived_age(catalog: Catalog, frequencies: np.ndarray) -> float:
    """Profile-weighted mean age, ``Σ pᵢ·Āᵢ`` (lower is better).

    Args:
        catalog: Workload description.
        frequencies: Sync frequencies per element, in syncs per
            period.

    Returns:
        The perceived age in periods; ``inf`` if any accessed,
        changing element is never synced.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.shape != (catalog.n_elements,):
        raise ValidationError(
            f"frequencies shape {frequencies.shape} does not match "
            f"catalog size {catalog.n_elements}")
    ages = fixed_order_age(catalog.change_rates, frequencies)
    p = catalog.access_probabilities
    relevant = p > 0.0
    if np.isinf(ages[relevant]).any():
        return float("inf")
    return float(p[relevant] @ ages[relevant])


def solve_weighted_age_problem(weights: np.ndarray,
                               change_rates: np.ndarray,
                               costs: np.ndarray, bandwidth: float, *,
                               budget_rtol: float = 1e-10
                               ) -> ScheduleSolution:
    """Minimize ``Σ wᵢ·Ā(λᵢ, fᵢ)`` s.t. ``Σ cᵢfᵢ = B``, ``f ≥ 0``.

    The weighted form serves both the direct problem (weights = the
    profile) and the transformed partition problem (weights = nₖp̄ₖ,
    costs = nₖs̄ₖ).  Every element with positive weight and rate gets
    positive frequency — the marginal age reduction diverges at 0.

    Args:
        weights: Nonnegative objective weights.
        change_rates: Poisson change rates ``λ ≥ 0``, in changes per
            period.
        costs: Strictly positive bandwidth cost per sync, in size
            units.
        bandwidth: Budget ``B > 0``, in size units per period.
        budget_rtol: Relative budget tolerance.

    Returns:
        A :class:`ScheduleSolution` whose ``objective`` is the
        achieved weighted age (lower is better).
    """
    weights = np.asarray(weights, dtype=float)
    change_rates = np.asarray(change_rates, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if not (weights.shape == change_rates.shape == costs.shape):
        raise ValidationError(
            "weights, change_rates and costs must have matching shapes")
    if (weights < 0.0).any():
        raise ValidationError("weights must be nonnegative")
    if (change_rates < 0.0).any():
        raise ValidationError("change rates must be nonnegative")
    if (costs <= 0.0).any():
        raise ValidationError("costs must be strictly positive")
    if bandwidth <= 0.0:
        raise InfeasibleProblemError(
            f"bandwidth must be positive, got {bandwidth!r}")

    frequencies = np.zeros(weights.shape[0])
    live = (weights > 0.0) & (change_rates > 0.0)
    if not live.any():
        ages = fixed_order_age(change_rates, frequencies)
        finite = weights > 0.0
        objective = float(weights[finite] @ ages[finite]) if \
            finite.any() else 0.0
        return ScheduleSolution(frequencies=frequencies, multiplier=0.0,
                                bandwidth=0.0, objective=objective,
                                iterations=0)

    w = weights[live]
    lam_live = change_rates[live]
    c = costs[live]

    def allocate_at(mu: float) -> tuple[np.ndarray, float]:
        targets = mu * c / w
        freqs = invert_age_marginal(lam_live, targets)
        return freqs, float(c @ freqs)

    # A multiplier high enough that the allocation fits the budget:
    # f ≤ √(w/(2μc)) per element ⇒ cost ≤ Σ√(wc/2)/√μ.
    sqrt_sum = float(np.sqrt(0.5 * w * c).sum())
    mu_max = max((sqrt_sum / bandwidth) ** 2 * 4.0, 1e-12)
    result = waterfill(allocate_at, bandwidth, mu_max,
                       budget_rtol=budget_rtol)
    frequencies[live] = result.allocations
    ages = fixed_order_age(change_rates, frequencies)
    relevant = weights > 0.0
    objective = (float("inf")
                 if np.isinf(ages[relevant]).any()
                 else float(weights[relevant] @ ages[relevant]))
    return ScheduleSolution(frequencies=frequencies,
                            multiplier=result.multiplier,
                            bandwidth=float(costs @ frequencies),
                            objective=objective,
                            iterations=result.iterations)


def solve_min_age_problem(catalog: Catalog, bandwidth: float, *,
                          budget_rtol: float = 1e-10
                          ) -> ScheduleSolution:
    """Minimize perceived age under the bandwidth constraint.

    ``min Σ pᵢ·Ā(λᵢ, fᵢ)`` s.t. ``Σ sᵢfᵢ = B``, ``f ≥ 0`` — convex,
    solved by water-filling on the marginal-reduction KKT conditions.
    Every element with ``pᵢ > 0`` and ``λᵢ > 0`` receives positive
    frequency (the marginal reduction at f = 0 is infinite).

    Args:
        catalog: Workload description.
        bandwidth: Budget ``B > 0``, in size units per period.
        budget_rtol: Relative budget tolerance.

    Returns:
        A :class:`ScheduleSolution` whose ``objective`` is the
        achieved perceived age (lower is better).
    """
    return solve_weighted_age_problem(catalog.access_probabilities,
                                      catalog.change_rates,
                                      catalog.sizes, bandwidth,
                                      budget_rtol=budget_rtol)
