"""The disabled-telemetry overhead bound (ISSUE acceptance criterion).

Mirrors the contracts overhead test: the facade's off-path is one
attribute load + branch, and the hot loops make O(1) facade calls per
unit of real work, so disabled telemetry must stay far inside the 3%
acceptance bar at solver/simulation call grain.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import solve_core_problem
from repro.obs import registry as obs
from repro.workloads import Catalog


def test_disabled_telemetry_overhead_is_negligible() -> None:
    """Per-call facade cost must be irrelevant at solver call grain.

    Strategy (robust to CI noise): measure the per-call cost of each
    disabled facade on a tight loop, then compare that against the
    measured cost of one real 1e5-element solve.  A real solve makes a
    bounded number of facade calls (one span, a handful of counters
    per waterfill invocation), so the relative regression is
    facade_cost / solve_cost — orders of magnitude below 3%.
    """
    obs.disable_telemetry()

    rng = np.random.default_rng(7)
    n = 100_000
    weights = rng.uniform(0.01, 1.0, size=n)
    catalog = Catalog(access_probabilities=weights / weights.sum(),
                      change_rates=rng.uniform(0.05, 8.0, size=n),
                      sizes=rng.uniform(0.2, 5.0, size=n))

    # One real instrumented solve at catalog scale, telemetry off.
    start = time.perf_counter()
    solve_core_problem(catalog, bandwidth=50_000.0)
    solve_time = time.perf_counter() - start

    # Per-call cost of every disabled facade, measured on tight loops.
    calls = 20_000
    start = time.perf_counter()
    for _ in range(calls):
        pass
    baseline = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(calls):
        obs.counter_add("c")
        obs.gauge_set("g", 1.0)
        obs.observe("h", 1.0)
        obs.event("e")
        with obs.span("s"):
            pass
    facade = time.perf_counter() - start
    per_iteration = max(0.0, (facade - baseline) / calls)

    # Five facade calls per loop iteration; one iteration's worth is a
    # generous stand-in for the facade traffic of one waterfill step.
    assert per_iteration < 0.03 * solve_time, (
        f"disabled facades cost {per_iteration:.2e}s/iteration "
        f"vs solve {solve_time:.3f}s")


def test_disabled_overhead_holds_with_sink_configured() -> None:
    """A configured sink must not change the off-path cost shape.

    Sinks hang off the *registry* (``registry.sinks``) and are only
    consulted inside ``event()`` after the enabled check, so with
    telemetry off the facades never reach them — the off path stays
    one attribute load + branch and nothing is buffered.
    """
    from repro.obs.sink import StatsdSink

    obs.disable_telemetry()
    registry = obs.reset_telemetry()
    sink = StatsdSink("127.0.0.1", 8125)
    registry.sinks.append(sink)

    calls = 20_000
    start = time.perf_counter()
    for _ in range(calls):
        pass
    baseline = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(calls):
        obs.counter_add("c")
        obs.event("e")
        with obs.span("s"):
            pass
    facade = time.perf_counter() - start
    per_iteration = max(0.0, (facade - baseline) / calls)

    assert not registry.events
    assert sink._buffer == []
    assert sink.dropped == 0
    # Same acceptance shape as the sink-less bound: facade traffic is
    # negligible against one real solve (~tens of ms); 3% of even a
    # 1 ms unit of work dwarfs a few hundred ns of facade calls.
    assert per_iteration < 3e-5, (
        f"disabled facades with a sink configured cost "
        f"{per_iteration:.2e}s/iteration")
    sink.close()


def test_disabled_facades_allocate_nothing() -> None:
    """The off path must not touch the registry at all."""
    obs.disable_telemetry()
    registry = obs.reset_telemetry()
    for _ in range(100):
        obs.counter_add("c")
        obs.event("e", payload=1)
        with obs.span("s"):
            pass
    assert not registry.counters
    assert not registry.events
    assert not registry.span_totals
    # The disabled span is a shared singleton — no per-call allocation.
    assert obs.span("a") is obs.span("b")
