"""User profiles: declarative interest specifications (paper §2).

A profile states the relative importance of each element in the
mirror.  The paper's model is deliberately simple — interest is
proportional to access frequency — and this module keeps that model
while supporting the refinements the paper mentions in passing:

* profiles may be given as raw interest *weights* (any nonnegative
  numbers) and are normalized to probabilities,
* individual profiles can carry an importance weight of their own
  ("generals or higher-paying customers") used during aggregation,
* a profile may be cast as a density over a measurable attribute of
  the objects (e.g. importance vs. ticker symbol) via
  :meth:`UserProfile.from_attribute`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.errors import ValidationError

__all__ = ["UserProfile"]


@dataclass(frozen=True)
class UserProfile:
    """One user's interest distribution over the mirror's elements.

    Attributes:
        probabilities: Access-probability vector (Σ = 1).
        importance: Relative weight of this user during aggregation
            (1.0 for ordinary users).
        name: Optional label for diagnostics.
    """

    probabilities: np.ndarray
    importance: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        p = np.asarray(self.probabilities, dtype=float)
        if p.ndim != 1 or p.size == 0:
            raise ValidationError("probabilities must be a non-empty vector")
        if not np.isfinite(p).all():
            raise ValidationError("probabilities must be finite")
        if (p < 0.0).any():
            raise ValidationError("probabilities must be nonnegative")
        if abs(p.sum() - 1.0) > 1e-8:
            raise ValidationError(
                f"probabilities must sum to 1, got {p.sum()!r}")
        if self.importance <= 0.0:
            raise ValidationError(
                f"importance must be > 0, got {self.importance}")
        p = p.copy()
        p.flags.writeable = False
        object.__setattr__(self, "probabilities", p)

    @property
    def n_elements(self) -> int:
        """Number of mirror elements the profile covers."""
        return int(self.probabilities.shape[0])

    @classmethod
    def from_weights(cls, weights: np.ndarray, *, importance: float = 1.0,
                     name: str = "") -> "UserProfile":
        """Build a profile from unnormalized interest weights.

        Args:
            weights: Nonnegative interest per element; at least one
                positive.
            importance: Aggregation weight of this user.
            name: Optional label.

        Returns:
            A normalized :class:`UserProfile`.
        """
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise ValidationError("weights must be a non-empty vector")
        if (w < 0.0).any():
            raise ValidationError("weights must be nonnegative")
        total = w.sum()
        if total <= 0.0:
            raise ValidationError("weights must include a positive entry")
        return cls(probabilities=w / total, importance=importance, name=name)

    @classmethod
    def from_access_counts(cls, counts: Mapping[int, int] | np.ndarray,
                           n_elements: int, *, importance: float = 1.0,
                           name: str = "") -> "UserProfile":
        """Build a profile from observed access counts.

        Args:
            counts: Either a dense count vector or a sparse
                ``{element: count}`` mapping.
            n_elements: Mirror size.
            importance: Aggregation weight.
            name: Optional label.

        Returns:
            The empirical profile ``pᵢ = mᵢ/M``.
        """
        if isinstance(counts, Mapping):
            dense = np.zeros(n_elements)
            for element, count in counts.items():
                if not 0 <= int(element) < n_elements:
                    raise ValidationError(
                        f"element {element} outside [0, {n_elements})")
                if count < 0:
                    raise ValidationError("counts must be nonnegative")
                dense[int(element)] = float(count)
        else:
            dense = np.asarray(counts, dtype=float)
            if dense.shape != (n_elements,):
                raise ValidationError(
                    f"counts shape {dense.shape} does not match "
                    f"n_elements={n_elements}")
        return cls.from_weights(dense, importance=importance, name=name)

    @classmethod
    def from_attribute(cls, attribute_values: np.ndarray,
                       density: Callable[[np.ndarray], np.ndarray], *,
                       importance: float = 1.0,
                       name: str = "") -> "UserProfile":
        """Profile as a density over a measurable object attribute.

        The paper's stock-market example: importance as a function of
        ticker volatility, price, or sector code.

        Args:
            attribute_values: The attribute per element (e.g. price).
            density: Maps attribute values to nonnegative interest.
            importance: Aggregation weight.
            name: Optional label.

        Returns:
            The induced :class:`UserProfile`.
        """
        values = np.asarray(attribute_values, dtype=float)
        weights = np.asarray(density(values), dtype=float)
        if weights.shape != values.shape:
            raise ValidationError(
                "density must return one weight per attribute value")
        return cls.from_weights(weights, importance=importance, name=name)

    def uniform_mixture(self, epsilon: float) -> "UserProfile":
        """Blend with the uniform distribution (exploration smoothing).

        Args:
            epsilon: Uniform mass in ``[0, 1]``.

        Returns:
            ``(1 − ε)·p + ε·uniform`` as a new profile.
        """
        if not 0.0 <= epsilon <= 1.0:
            raise ValidationError(f"epsilon must be in [0, 1], got {epsilon}")
        uniform = np.full(self.n_elements, 1.0 / self.n_elements)
        blended = (1.0 - epsilon) * self.probabilities + epsilon * uniform
        return UserProfile(probabilities=blended,
                           importance=self.importance, name=self.name)
