"""Age-metric and baseline-policy ablations.

* the Cho/Garcia-Molina policy ladder (proportional < uniform < GF <
  PF on perceived freshness);
* the freshness/age tension: freshness-optimal schedules abandon fast
  changers (infinite perceived age) while age-optimal schedules keep
  every element bounded at a modest freshness cost, with the convex
  blend tracing the trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sensitivity import (
    baseline_comparison,
    freshness_age_tradeoff,
)
from repro.analysis.tables import format_sweep


def test_baseline_comparison(benchmark, report):
    sweep = benchmark.pedantic(baseline_comparison, rounds=1,
                               iterations=1)
    proportional = sweep.get("PROPORTIONAL").y
    uniform = sweep.get("UNIFORM").y
    gf = sweep.get("GF_OPTIMAL").y
    pf = sweep.get("PF_OPTIMAL").y
    # PF dominates every policy on perceived freshness...
    for other in (gf, uniform, proportional):
        assert (pf >= other - 1e-9).all()
    # ...proportional's PF is exactly skew-invariant (shared r = Σλ/B),
    # and profile-blind GF falls below naive uniform at high skew.
    assert np.allclose(proportional, proportional[0], atol=1e-9)
    assert gf[-1] < uniform[-1]
    assert pf[-1] - gf[-1] > 0.3  # the profile-awareness payoff
    report("abl_baselines", format_sweep(sweep))


def test_freshness_age_tradeoff(benchmark, report):
    sweep = benchmark.pedantic(freshness_age_tradeoff, rounds=1,
                               iterations=1)
    pf = sweep.get("perceived freshness").y
    age = sweep.get("perceived age").y
    assert (np.diff(pf) >= -1e-9).all()
    assert np.isfinite(age[0])
    assert np.isinf(age[-1])  # freshness optimum starves something
    report("abl_freshness_age", format_sweep(sweep))
