"""Synthetic distributions used throughout the paper's experiments.

* **Zipf** access probabilities model user interest skew:
  ``pᵢ ∝ (1/i)^θ`` with θ = 0 uniform and θ up to 1.6 observed on busy
  web sites (Padmanabhan & Qiu, SIGCOMM 2000 — paper ref [17]).
* **Gamma** change rates model per-object update frequency; the
  paper's setups fix the mean updates per period and sweep the
  standard deviation.
* **Pareto** object sizes model the heavy-tailed size of web objects
  (Krishnamurthy & Rexford — paper ref [12]); shape 1.1 with mean 1.0
  in the paper's Figure 10.

All generators take an explicit :class:`numpy.random.Generator` so
experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "zipf_probabilities",
    "gamma_change_rates",
    "pareto_sizes",
    "pareto_mean",
]


def zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Zipf access-probability vector ``pᵢ ∝ (1/i)^θ``, hottest first.

    Args:
        n: Number of elements (>= 1).
        theta: Skew parameter θ >= 0; θ = 0 gives the uniform
            distribution.

    Returns:
        Probabilities in decreasing order, summing to 1.

    Raises:
        ValidationError: For invalid ``n`` or negative ``theta``.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if theta < 0.0:
        raise ValidationError(f"theta must be >= 0, got {theta}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -theta
    return weights / weights.sum()


def gamma_change_rates(n: int, *, mean: float, std_dev: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Sample per-object change rates from a gamma distribution.

    The paper parameterizes the update workload by the mean updates
    per object per sync period (2.0 in both setups) and the standard
    deviation ``σ`` (1.0 in Table 2, 2.0 in Table 3).

    Args:
        n: Number of elements.
        mean: Mean change rate per period, > 0.
        std_dev: Standard deviation of the change rate, > 0.
        rng: Seeded random generator.

    Returns:
        Strictly positive change rates (zeros from the sampler are
        nudged to a tiny positive floor so every element has a defined
        staleness process).
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if mean <= 0.0:
        raise ValidationError(f"mean must be > 0, got {mean}")
    if std_dev <= 0.0:
        raise ValidationError(f"std_dev must be > 0, got {std_dev}")
    shape = (mean / std_dev) ** 2
    scale = std_dev ** 2 / mean
    rates = rng.gamma(shape, scale, size=n)
    floor = mean * 1e-9
    return np.maximum(rates, floor)


def pareto_sizes(n: int, *, shape: float, mean: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Sample heavy-tailed object sizes from a Pareto distribution.

    A (Type I) Pareto with shape ``a`` and scale ``m`` has density
    ``a·mᵃ/xᵃ⁺¹`` on ``x >= m`` and mean ``a·m/(a−1)`` for ``a > 1``.
    The scale is chosen so the distribution has the requested mean,
    matching the paper's "Pareto with mean 1.0, shape 1.1".

    Args:
        n: Number of objects.
        shape: Tail index ``a > 1`` (1.1 in the paper: very heavy).
        mean: Desired distribution mean, > 0.
        rng: Seeded random generator.

    Returns:
        Strictly positive sizes.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if shape <= 1.0:
        raise ValidationError(
            f"shape must be > 1 for a finite mean, got {shape}")
    if mean <= 0.0:
        raise ValidationError(f"mean must be > 0, got {mean}")
    scale = mean * (shape - 1.0) / shape
    # numpy's pareto() is the Lomax form: scale*(1 + X) is Type I.
    return scale * (1.0 + rng.pareto(shape, size=n))


def pareto_mean(shape: float, scale: float) -> float:
    """Mean of a Type I Pareto: ``a·m/(a−1)``.

    Args:
        shape: Tail index ``a > 1``.
        scale: Minimum value ``m > 0``.

    Returns:
        The distribution mean.
    """
    if shape <= 1.0:
        raise ValidationError(
            f"shape must be > 1 for a finite mean, got {shape}")
    if scale <= 0.0:
        raise ValidationError(f"scale must be > 0, got {scale}")
    return shape * scale / (shape - 1.0)
