"""Sensitivity analyses and ablations.

The paper defers its parameter sensitivity study to the companion
technical report ([2], Carney/Lee/Zdonik, Brown CS 2002).  These
runners reconstruct that study for the parameters Table 2 exposes —
bandwidth ratio, update-rate dispersion σ, database size — plus the
design-choice ablations DESIGN.md commits to:

* representative statistic (mean vs median vs interest-weighted),
* clustering feature space (with vs without the size coordinate),
* adaptive-loop convergence (how fast the observe/estimate/replan
  runtime approaches the oracle schedule).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.series import Series, SweepResult
from repro.core.allocation import AllocationPolicy, expand_partition_frequencies
from repro.core.freshener import (
    Freshener,
    FresheningPlan,
    GeneralFreshener,
    PerceivedFreshener,
)
from repro.core.metrics import perceived_freshness
from repro.core.partitioning import PartitioningStrategy, partition_catalog
from repro.core.representatives import (
    REPRESENTATIVE_STATISTICS,
    build_representatives,
    solve_transformed_problem,
)
from repro.core.solver import solve_core_problem
from repro.errors import ValidationError
from repro.parallel import parallel_map, seed_rng
from repro.runtime.manager import AdaptiveMirrorManager
from repro.sim.bursty import BurstyUpdateGenerator
from repro.sim.simulation import Simulation
from repro.workloads.alignment import Alignment
from repro.workloads.catalog import Catalog
from repro.workloads.presets import ExperimentSetup, build_catalog

#: Warm-start bracket half-width for sweep loops, as a relative
#: factor: a previous point's μ seeds ``[μ/4, μ·4]``.  Sweep steps
#: move the budget by up to 2×, which moves μ further than the
#: incremental solver's tight window; a wide bracket still skips the
#: cold geometric expansion phase entirely.
_SWEEP_WARM_WINDOW = 4.0


def _plan_warm(planner: Freshener, catalog: Catalog,
               bandwidth: float,
               multiplier: float | None) -> FresheningPlan:
    """Plan with a warm μ bracket from the previous sweep point.

    Falls back to a cold solve when there is no usable previous
    multiplier or the warm bracket fails to straddle the budget
    (adjacent sweep points normally keep μ within the window, as
    :class:`~repro.core.incremental.IncrementalSolver` exploits).
    """
    if multiplier is not None and multiplier > 0.0:
        bracket = (multiplier / _SWEEP_WARM_WINDOW,
                   multiplier * _SWEEP_WARM_WINDOW)
        try:
            return planner.plan(catalog, bandwidth, bracket=bracket)
        except ValidationError:
            pass  # μ jumped out of the window: re-solve cold
    return planner.plan(catalog, bandwidth)

__all__ = [
    "bandwidth_sensitivity",
    "dispersion_sensitivity",
    "scale_sensitivity",
    "representative_ablation",
    "adaptive_convergence",
    "baseline_comparison",
    "freshness_age_tradeoff",
    "burstiness_robustness",
    "crawler_comparison",
]


def bandwidth_sensitivity(*, setup: ExperimentSetup | None = None,
                          ratios: np.ndarray | None = None,
                          theta: float = 1.0,
                          seed: int = 0) -> SweepResult:
    """PF and GF across the bandwidth-to-update ratio.

    Table 2 fixes B/U = 0.25; this sweep varies it.  Expected shape:
    both techniques improve with bandwidth; the PF advantage is
    largest in the starved regime and vanishes as bandwidth saturates
    (everything can be kept fresh).

    Args:
        setup: Base preset (Table 2 scaled by default).
        ratios: Bandwidth/updates ratios to sweep.
        theta: Access skew.
        seed: Workload seed.

    Returns:
        PF-technique and GF-technique curves plus their gap.
    """
    base = setup if setup is not None else ExperimentSetup(
        n_objects=500, updates_per_period=1000.0,
        syncs_per_period=250.0, theta=theta, update_std_dev=1.0)
    grid = (np.array([0.05, 0.1, 0.25, 0.5, 1.0, 2.0])
            if ratios is None else np.asarray(ratios, dtype=float))
    catalog = build_catalog(base, alignment=Alignment.SHUFFLED,
                            seed=seed, theta=theta)
    pf_scores = np.zeros_like(grid)
    gf_scores = np.zeros_like(grid)
    pf_planner = PerceivedFreshener()
    gf_planner = GeneralFreshener()
    pf_mu: float | None = None
    gf_mu: float | None = None
    for index, ratio in enumerate(grid):
        bandwidth = float(ratio) * base.updates_per_period
        pf_plan = _plan_warm(pf_planner, catalog, bandwidth, pf_mu)
        gf_plan = _plan_warm(gf_planner, catalog, bandwidth, gf_mu)
        pf_mu = pf_plan.metadata["multiplier"]
        gf_mu = gf_plan.metadata["multiplier"]
        pf_scores[index] = pf_plan.perceived_freshness
        gf_scores[index] = gf_plan.perceived_freshness
    return SweepResult(
        name="bandwidth-sensitivity",
        x_label="bandwidth / updates", y_label="perceived freshness",
        series=(Series(label="PF_TECHNIQUE", x=grid, y=pf_scores),
                Series(label="GF_TECHNIQUE", x=grid, y=gf_scores),
                Series(label="PF_ADVANTAGE", x=grid,
                       y=pf_scores - gf_scores)),
        notes={"theta": theta, "seed": seed})


def dispersion_sensitivity(*, setup: ExperimentSetup | None = None,
                           std_devs: np.ndarray | None = None,
                           seed: int = 0) -> SweepResult:
    """PF across the gamma update-rate standard deviation σ.

    Expected shape: higher dispersion helps the optimizer — with very
    unequal rates, concentrating bandwidth on keepable elements pays;
    with near-identical rates there is nothing to exploit.

    Args:
        setup: Base preset.
        std_devs: σ values to sweep.
        seed: Workload seed.

    Returns:
        Optimal-PF and GF-baseline curves vs σ.
    """
    base = setup if setup is not None else ExperimentSetup(
        n_objects=500, updates_per_period=1000.0,
        syncs_per_period=250.0, theta=1.0, update_std_dev=1.0)
    grid = (np.array([0.25, 0.5, 1.0, 2.0, 4.0])
            if std_devs is None else np.asarray(std_devs, dtype=float))
    pf_scores = np.zeros_like(grid)
    gf_scores = np.zeros_like(grid)
    pf_planner = PerceivedFreshener()
    gf_planner = GeneralFreshener()
    pf_mu: float | None = None
    gf_mu: float | None = None
    for index, sigma in enumerate(grid):
        varied = ExperimentSetup(
            n_objects=base.n_objects,
            updates_per_period=base.updates_per_period,
            syncs_per_period=base.syncs_per_period, theta=base.theta,
            update_std_dev=float(sigma))
        catalog = build_catalog(varied, alignment=Alignment.SHUFFLED,
                                seed=seed)
        pf_plan = _plan_warm(pf_planner, catalog,
                             base.syncs_per_period, pf_mu)
        gf_plan = _plan_warm(gf_planner, catalog,
                             base.syncs_per_period, gf_mu)
        pf_mu = pf_plan.metadata["multiplier"]
        gf_mu = gf_plan.metadata["multiplier"]
        pf_scores[index] = pf_plan.perceived_freshness
        gf_scores[index] = gf_plan.perceived_freshness
    return SweepResult(
        name="dispersion-sensitivity",
        x_label="update std dev (sigma)",
        y_label="perceived freshness",
        series=(Series(label="PF_TECHNIQUE", x=grid, y=pf_scores),
                Series(label="GF_TECHNIQUE", x=grid, y=gf_scores)),
        notes={"seed": seed})


def scale_sensitivity(*, n_objects: np.ndarray | None = None,
                      seed: int = 0) -> SweepResult:
    """PF across database size at a fixed per-object budget.

    Per-object statistics are held constant (2 updates and 0.5 syncs
    per object per period).  Two effects emerge:

    * optimal PF *rises* with N and flattens — a Zipf(θ=1) profile is
      not scale-free (the head holds 1/H_N of the mass), so larger
      catalogs give the optimizer more exploitable skew per unit of
      budget;
    * the fixed-k heuristic's gap to optimal *grows* with N (each
      partition averages over more heterogeneous elements) — the
      quantitative version of the paper's advice to scale partitions
      with the problem.

    Args:
        n_objects: Sizes to sweep.
        seed: Workload seed.

    Returns:
        Optimal and heuristic (k=100) PF curves vs N.
    """
    grid = (np.array([500, 2_000, 8_000, 32_000])
            if n_objects is None else np.asarray(n_objects, dtype=int))
    optimal = np.zeros(grid.shape[0])
    heuristic = np.zeros(grid.shape[0])
    from repro.core.freshener import PartitionedFreshener
    for index, n in enumerate(grid):
        setup = ExperimentSetup(n_objects=int(n),
                                updates_per_period=2.0 * n,
                                syncs_per_period=0.5 * n, theta=1.0,
                                update_std_dev=1.0)
        catalog = build_catalog(setup, alignment=Alignment.SHUFFLED,
                                seed=seed)
        optimal[index] = solve_core_problem(
            catalog, setup.syncs_per_period).objective
        heuristic[index] = PartitionedFreshener(100).plan(
            catalog, setup.syncs_per_period).perceived_freshness
    return SweepResult(
        name="scale-sensitivity", x_label="database size (N)",
        y_label="perceived freshness",
        series=(Series(label="optimal", x=grid.astype(float),
                       y=optimal),
                Series(label="heuristic k=100", x=grid.astype(float),
                       y=heuristic)),
        notes={"seed": seed})


def representative_ablation(*, setup: ExperimentSetup | None = None,
                            partition_counts: np.ndarray | None = None,
                            seed: int = 0) -> SweepResult:
    """Mean vs median vs interest-weighted representatives.

    The paper always uses partition means; this ablation quantifies
    how much that choice matters under a heavy-tailed (σ = 2)
    workload where means and medians diverge.

    Args:
        setup: Base preset.
        partition_counts: k grid.
        seed: Workload seed.

    Returns:
        One PF-vs-k curve per statistic, plus the optimal reference.
    """
    base = setup if setup is not None else ExperimentSetup(
        n_objects=2_000, updates_per_period=4_000.0,
        syncs_per_period=1_000.0, theta=1.0, update_std_dev=2.0)
    counts = (np.array([10, 25, 50, 100, 200])
              if partition_counts is None
              else np.asarray(partition_counts, dtype=int))
    catalog = build_catalog(base, alignment=Alignment.SHUFFLED,
                            seed=seed)
    curves = {statistic: np.zeros(counts.shape[0])
              for statistic in REPRESENTATIVE_STATISTICS}
    for index, k in enumerate(counts):
        assignment = partition_catalog(catalog, int(k),
                                       PartitioningStrategy.PF)
        for statistic in REPRESENTATIVE_STATISTICS:
            problem = build_representatives(catalog, assignment,
                                            statistic=statistic)
            solution = solve_transformed_problem(
                problem, base.syncs_per_period)
            frequencies = expand_partition_frequencies(
                catalog, problem, solution.frequencies,
                AllocationPolicy.FIXED_BANDWIDTH)
            curves[statistic][index] = perceived_freshness(catalog,
                                                           frequencies)
    best = solve_core_problem(catalog, base.syncs_per_period).objective
    series = [Series(label=statistic, x=counts.astype(float), y=values)
              for statistic, values in curves.items()]
    series.append(Series(label="best_case", x=counts.astype(float),
                         y=np.full(counts.shape[0], best)))
    return SweepResult(name="representative-ablation",
                       x_label="num partitions",
                       y_label="perceived freshness",
                       series=tuple(series), notes={"seed": seed})


def adaptive_convergence(*, setup: ExperimentSetup | None = None,
                         n_periods: int = 15, request_rate: float =
                         2000.0, seed: int = 0) -> SweepResult:
    """Convergence of the observe/estimate/replan runtime loop.

    The manager starts knowing nothing (uniform profile, prior rates)
    and must approach the oracle schedule from the request log and
    poll outcomes alone.

    Args:
        setup: Workload preset.
        n_periods: Loop length.
        request_rate: Accesses per period feeding the learner.
        seed: Workload and simulation seed.

    Returns:
        Achieved-PF per period, with oracle and profile-blind
        reference lines.
    """
    base = setup if setup is not None else ExperimentSetup(
        n_objects=200, updates_per_period=400.0,
        syncs_per_period=100.0, theta=1.2, update_std_dev=1.0)
    catalog = build_catalog(base, alignment=Alignment.SHUFFLED,
                            seed=seed)
    manager = AdaptiveMirrorManager(
        catalog, base.syncs_per_period, request_rate=request_rate,
        rng=seed_rng(seed + 100))
    reports = manager.run(n_periods)

    oracle = PerceivedFreshener().plan(
        catalog, base.syncs_per_period).perceived_freshness
    blind = GeneralFreshener().plan(
        catalog, base.syncs_per_period).perceived_freshness
    periods = np.arange(1, n_periods + 1, dtype=float)
    achieved = np.array([report.achieved_pf for report in reports])
    return SweepResult(
        name="adaptive-convergence", x_label="period",
        y_label="perceived freshness",
        series=(Series(label="adaptive manager", x=periods, y=achieved),
                Series(label="oracle", x=periods,
                       y=np.full(n_periods, oracle)),
                Series(label="profile-blind", x=periods,
                       y=np.full(n_periods, blind))),
        notes={"seed": seed,
               "replans": sum(r.replanned for r in reports)})


def baseline_comparison(*, setup: ExperimentSetup | None = None,
                        thetas: np.ndarray | None = None,
                        seed: int = 0) -> SweepResult:
    """PF vs GF vs the non-optimizing baselines across skew.

    On *average* freshness the classical ladder holds pointwise
    (proportional ≤ uniform ≤ GF-optimal — ref [5]'s theorem, asserted
    in the test suite).  On *perceived* freshness only PF-optimal is
    guaranteed on top, and the sweep surfaces two sharper facts:

    * under skew, profile-blind "optimal" GF can fall **below naive
      uniform polling** — optimizing the wrong objective is worse
      than not optimizing;
    * proportional allocation's perceived freshness is exactly
      θ-invariant: with ``fᵢ ∝ λᵢ`` every element shares the
      staleness ratio ``r = Σλ/B``, so every copy is equally (un)fresh
      no matter where the interest sits.

    Args:
        setup: Parameter preset (Table 2 by default).
        thetas: Skew grid.
        seed: Workload seed.

    Returns:
        One curve per policy.
    """
    from repro.core.baselines import ProportionalFreshener, UniformFreshener

    base = setup if setup is not None else ExperimentSetup(
        n_objects=500, updates_per_period=1000.0,
        syncs_per_period=250.0, theta=1.0, update_std_dev=1.0)
    grid = (np.arange(0.0, 1.601, 0.4) if thetas is None
            else np.asarray(thetas, dtype=float))
    planners = {
        "PF_OPTIMAL": PerceivedFreshener(),
        "GF_OPTIMAL": GeneralFreshener(),
        "UNIFORM": UniformFreshener(),
        "PROPORTIONAL": ProportionalFreshener(),
    }
    curves = {name: np.zeros_like(grid) for name in planners}
    for index, theta in enumerate(grid):
        catalog = build_catalog(base, alignment=Alignment.SHUFFLED,
                                seed=seed, theta=float(theta))
        for name, planner in planners.items():
            curves[name][index] = planner.plan(
                catalog, base.syncs_per_period).perceived_freshness
    series = tuple(Series(label=name, x=grid, y=values)
                   for name, values in curves.items())
    return SweepResult(name="baseline-comparison",
                       x_label="theta (zipf skew)",
                       y_label="perceived freshness", series=series,
                       notes={"seed": seed})


def freshness_age_tradeoff(*, setup: ExperimentSetup | None = None,
                           blend_weights: np.ndarray | None = None,
                           theta: float = 1.0,
                           seed: int = 0) -> SweepResult:
    """The perceived-freshness / perceived-age Pareto sketch.

    The freshness-optimal schedule abandons fast changers, driving
    perceived age to infinity; the age-optimal schedule spends
    bandwidth keeping every element's age bounded, sacrificing some
    freshness.  Because the bandwidth constraint is linear, any convex
    blend ``α·f_fresh + (1−α)·f_age`` is feasible — sweeping α traces
    the trade-off.

    Args:
        setup: Parameter preset.
        blend_weights: α grid in [0, 1] (1 = freshness-optimal).
        theta: Access skew.
        seed: Workload seed.

    Returns:
        Two curves over α: perceived freshness and perceived age
        (age is ``inf`` at α = 1 when any accessed element is
        starved; it is reported as-is).
    """
    from repro.core.age import perceived_age, solve_min_age_problem

    base = setup if setup is not None else ExperimentSetup(
        n_objects=500, updates_per_period=1000.0,
        syncs_per_period=250.0, theta=theta, update_std_dev=1.0)
    grid = (np.linspace(0.0, 1.0, 11) if blend_weights is None
            else np.asarray(blend_weights, dtype=float))
    catalog = build_catalog(base, alignment=Alignment.SHUFFLED,
                            seed=seed, theta=theta)
    fresh = solve_core_problem(catalog, base.syncs_per_period)
    aged = solve_min_age_problem(catalog, base.syncs_per_period)

    pf_values = np.zeros_like(grid)
    age_values = np.zeros_like(grid)
    for index, alpha in enumerate(grid):
        blend = (float(alpha) * fresh.frequencies
                 + (1.0 - float(alpha)) * aged.frequencies)
        pf_values[index] = perceived_freshness(catalog, blend)
        age_values[index] = perceived_age(catalog, blend)
    return SweepResult(
        name="freshness-age-tradeoff",
        x_label="blend weight (1 = freshness-optimal)",
        y_label="metric value",
        series=(Series(label="perceived freshness", x=grid,
                       y=pf_values),
                Series(label="perceived age", x=grid, y=age_values)),
        notes={"theta": theta, "seed": seed,
               "age_optimal_pf": float(perceived_freshness(
                   catalog, aged.frequencies)),
               "freshness_optimal_age": float(perceived_age(
                   catalog, fresh.frequencies))})


def _burstiness_point(spec: tuple[int, float], *, catalog: Catalog,
                      frequencies: np.ndarray, n_periods: int,
                      request_rate: float, seed: int) -> float:
    """Measure one burstiness level (module-level so it pickles).

    The generator and simulator share one per-point generator seeded
    ``seed + 1000 + index`` — the same derivation the serial loop
    always used, so results are jobs-invariant.
    """
    index, level = spec
    rng = seed_rng(seed + 1000 + index)
    generator = BurstyUpdateGenerator(catalog, burstiness=float(level),
                                      rng=rng)
    simulation = Simulation(catalog, frequencies,
                            request_rate=request_rate, rng=rng,
                            update_generator=generator)
    return simulation.run(n_periods=n_periods).monitored_time_perceived


def burstiness_robustness(*, setup: ExperimentSetup | None = None,
                          burstiness_levels: np.ndarray | None = None,
                          n_periods: int = 60,
                          request_rate: float = 2000.0,
                          seed: int = 0, jobs: int = 1) -> SweepResult:
    """Model misspecification: Poisson-planned schedules, bursty world.

    The schedule is the PF optimum for the catalog's *long-run* rates;
    updates actually arrive from a rate-matched two-state MMPP whose
    ``burstiness`` knob concentrates them into ever-shorter ON
    windows.  Measured shape (asserted by the benchmark): the Poisson
    prediction is **conservative** — burstiness *raises* measured
    freshness.  A burst of k updates costs the same single staleness
    window as one update, while the matching long OFF stretches leave
    copies fresh for whole sync intervals; rate-matched clustering
    therefore transfers update mass into fewer, denser staleness
    events.  Schedules planned under the paper's Poisson assumption
    are thus safe (never oversold) on bursty real-world sources.

    Args:
        setup: Workload preset.
        burstiness_levels: Knob values in [0, 1).
        n_periods: Simulated periods per point.
        request_rate: Accesses per period.
        seed: Workload and simulation seed.
        jobs: Worker processes for the sweep points (1 = serial,
            bit-identical; each point is independently seeded).

    Returns:
        Measured PF per burstiness level plus the flat Poisson
        prediction.
    """
    base = setup if setup is not None else ExperimentSetup(
        n_objects=200, updates_per_period=400.0,
        syncs_per_period=100.0, theta=1.0, update_std_dev=1.0)
    grid = (np.array([0.0, 0.25, 0.5, 0.75, 0.9])
            if burstiness_levels is None
            else np.asarray(burstiness_levels, dtype=float))
    catalog = build_catalog(base, alignment=Alignment.SHUFFLED,
                            seed=seed)
    plan = PerceivedFreshener().plan(catalog, base.syncs_per_period)
    prediction = plan.perceived_freshness

    point = partial(_burstiness_point, catalog=catalog,
                    frequencies=plan.frequencies, n_periods=n_periods,
                    request_rate=request_rate, seed=seed)
    measured = np.array(parallel_map(
        point, [(index, float(level)) for index, level in
                enumerate(grid)],
        jobs=jobs, label="parallel.burstiness"))
    return SweepResult(
        name="burstiness-robustness", x_label="burstiness",
        y_label="perceived freshness",
        series=(Series(label="measured (bursty world)", x=grid,
                       y=measured),
                Series(label="poisson prediction", x=grid,
                       y=np.full(grid.shape[0], prediction))),
        notes={"seed": seed, "n_periods": n_periods})


def crawler_comparison(*, setup: ExperimentSetup | None = None,
                       n_servers: int = 10, sample_size: int = 2,
                       n_rounds: int = 40,
                       requests_per_round: float = 2000.0,
                       seed: int = 0) -> SweepResult:
    """PF scheduling vs the sampling crawler vs random polling.

    All three policies spend the same poll budget per round; the
    sampling crawler (ref [6]) needs no change-rate knowledge, random
    polling needs nothing at all, and the PF schedule plans from the
    true rates and profile.  Perceived freshness is measured by
    round-based simulation (Definition 3 on actual accesses).

    Args:
        setup: Workload preset.
        n_servers: Server groups for the sampling crawler.
        sample_size: Sample polls per server per round.
        n_rounds: Rounds simulated.
        requests_per_round: Mean accesses per round.
        seed: Workload and simulation seed.

    Returns:
        One point per policy (x is a policy index; read the labels).
    """
    from repro.sim.rounds import (
        RandomPollPolicy,
        SamplingCrawlerPolicy,
        SchedulePolicy,
        simulate_rounds,
    )

    base = setup if setup is not None else ExperimentSetup(
        n_objects=200, updates_per_period=400.0,
        syncs_per_period=100.0, theta=1.0, update_std_dev=1.0)
    catalog = build_catalog(base, alignment=Alignment.SHUFFLED,
                            seed=seed)
    budget = int(base.syncs_per_period)
    plan = PerceivedFreshener().plan(catalog, float(budget))
    server_of = np.arange(base.n_objects) % n_servers

    policies = {
        "PF_SCHEDULE": SchedulePolicy(plan.frequencies),
        "SAMPLING_CRAWLER": SamplingCrawlerPolicy(
            server_of, sample_size=sample_size, budget=budget,
            rng=seed_rng(seed + 50)),
        "RANDOM_POLLING": RandomPollPolicy(base.n_objects, budget),
    }
    labels = []
    scores = []
    for label, policy in policies.items():
        result = simulate_rounds(
            catalog, policy, n_rounds=n_rounds,
            requests_per_round=requests_per_round,
            rng=seed_rng(seed + 99))
        labels.append(label)
        scores.append(result.perceived_freshness)
    x = np.arange(len(labels), dtype=float)
    series = tuple(Series(label=label, x=np.array([index], dtype=float),
                          y=np.array([score]))
                   for index, (label, score) in enumerate(
                       zip(labels, scores)))
    return SweepResult(name="crawler-comparison", x_label="policy",
                       y_label="perceived freshness", series=series,
                       notes={"seed": seed, "budget": budget,
                              "n_rounds": n_rounds,
                              "scores": dict(zip(labels, scores))})
