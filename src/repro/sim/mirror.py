"""The mirror: local copies refreshed by polling (Figure 4, right).

The mirror stores, per element, the source version it last copied.
Syncing an element polls the source and installs its current version;
serving an access reports whether the stored copy is up to date.
The mirror also counts the sync operations and bandwidth it spends,
so simulations can verify the schedule respected its budget.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.source import Source

__all__ = ["Mirror"]


class Mirror:
    """Local copies of a source's elements.

    Copies start synchronized (version 0 everywhere, matching a
    freshly cloned mirror).

    Args:
        source: The source this mirror replicates.
        sizes: Optional per-element sizes for bandwidth accounting
            (defaults to 1.0 each).
    """

    def __init__(self, source: Source,
                 sizes: np.ndarray | None = None) -> None:
        self._source = source
        n = source.n_elements
        if sizes is None:
            self._sizes = np.ones(n)
        else:
            self._sizes = np.asarray(sizes, dtype=float)
            if self._sizes.shape != (n,):
                raise SimulationError(
                    f"sizes shape {self._sizes.shape} does not match "
                    f"{n} elements")
            if (self._sizes <= 0.0).any():
                raise SimulationError("sizes must be strictly positive")
        self._copy_versions = source.versions().copy()
        self._sync_count = 0
        self._bandwidth_used = 0.0

    @property
    def n_elements(self) -> int:
        """Number of local copies."""
        return int(self._copy_versions.shape[0])

    @property
    def sizes(self) -> np.ndarray:
        """Per-element sizes used for bandwidth accounting, in size
        units (read-only view)."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def total_syncs(self) -> int:
        """Sync operations performed so far."""
        return self._sync_count

    @property
    def bandwidth_used(self) -> float:
        """Total bandwidth spent on syncs, ``Σ size of synced objects``."""
        return self._bandwidth_used

    def sync(self, element: int) -> bool:
        """Poll the source and refresh one local copy.

        Args:
            element: Element index.

        Returns:
            True if the poll found a new version (the copy actually
            changed), False if the sync was wasted on an unchanged
            element — the resource-waste signal the paper's
            introduction worries about.
        """
        self._check(element)
        current = self._source.version_of(element)
        changed = current != int(self._copy_versions[element])
        self._copy_versions[element] = current
        self._sync_count += 1
        self._bandwidth_used += float(self._sizes[element])
        return changed

    def is_fresh(self, element: int) -> bool:
        """Whether a local copy matches the source right now."""
        self._check(element)
        return (int(self._copy_versions[element])
                == self._source.version_of(element))

    def serve_access(self, element: int) -> bool:
        """Serve a user access; report whether it saw fresh data.

        This is the "keeping score at each access" of Definition 3.
        """
        return self.is_fresh(element)

    def freshness_vector(self) -> np.ndarray:
        """Instantaneous freshness of every copy (Definition 1/2)."""
        return (self._copy_versions == self._source.versions()).astype(float)

    def _check(self, element: int) -> None:
        if not 0 <= element < self.n_elements:
            raise SimulationError(
                f"element {element} outside [0, {self.n_elements})")
