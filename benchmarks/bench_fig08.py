"""Figure 8 — improvement in perceived freshness after clustering.

Starting from PF-partitioning, k-means refinement iterations are
swept.  Paper claim reproduced as an assertion: *very few iterations*
yield significant gains, especially at coarse partition counts.

Scale note: the paper ran this at the Table-3 (500 000-object) scale;
the default here is a 20 000-object workload with identical
per-object statistics so the harness completes in seconds.  Pass a
bigger setup to :func:`repro.analysis.experiments.figure8` to match
the paper exactly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure8
from repro.analysis.tables import format_sweep


def test_figure8(benchmark, report):
    counts = np.array([20, 50, 100, 200])
    sweep = benchmark.pedantic(
        lambda: figure8(partition_counts=counts), rounds=1, iterations=1)

    zero = sweep.get("0 iterations").y
    one = sweep.get("1 iterations").y
    ten = sweep.get("10 iterations").y

    # One iteration already recovers a significant share of the gap.
    assert (one >= zero).all()
    assert one[0] - zero[0] > 0.01
    # More iterations keep helping (weakly) and never hurt much.
    assert (ten >= one - 0.005).all()
    # Refined coarse partitions beat unrefined fine ones — the paper's
    # punchline.
    assert ten[0] > zero[-1]

    report("figure08", format_sweep(sweep))
