"""Numerical substrate: root finding, generic NLP, and k-means.

This subpackage replaces the proprietary IMSL numerical libraries the
paper used.  It contains:

* :mod:`repro.numerics.roots` — scalar root finding (bisection,
  Newton with bisection fallback) used by the exact water-filling
  solver.
* :mod:`repro.numerics.optimize` — a generic projected-gradient solver
  for concave maximization under a single linear constraint.  This is
  the "black-box NLP package" stand-in whose superlinear cost in the
  number of variables motivates the paper's heuristics.
* :mod:`repro.numerics.kmeans` — a seeded Lloyd's-algorithm k-means
  used by the cluster-refinement step (paper §4.1.3).
* :mod:`repro.numerics.waterfill` — generic water-filling machinery
  for separable concave resource allocation.
"""

from repro.numerics.kmeans import KMeansResult, kmeans, kmeans_iterate
from repro.numerics.optimize import NlpResult, ProjectedGradientSolver
from repro.numerics.roots import bisect, newton_bisect_increasing
from repro.numerics.stats import (
    ConfidenceInterval,
    mean_confidence_interval,
    t_critical_value,
)
from repro.numerics.waterfill import WaterfillResult, waterfill

__all__ = [
    "bisect",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "t_critical_value",
    "newton_bisect_increasing",
    "ProjectedGradientSolver",
    "NlpResult",
    "kmeans",
    "kmeans_iterate",
    "KMeansResult",
    "waterfill",
    "WaterfillResult",
]
