"""Tests for the simulator's generators and freshness monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError, ValidationError
from repro.sim.evaluator import FreshnessMonitor
from repro.sim.events import EventKind
from repro.sim.generators import RequestGenerator, UpdateGenerator
from repro.workloads.catalog import Catalog


@pytest.fixture
def catalog():
    return Catalog(access_probabilities=np.array([0.5, 0.3, 0.2]),
                   change_rates=np.array([4.0, 1.0, 0.5]))


class TestUpdateGenerator:
    def test_counts_match_rates(self, catalog, rng):
        generator = UpdateGenerator(catalog, rng=rng)
        stream = generator.generate(200.0)
        counts = np.bincount(stream.elements, minlength=3)
        expected = catalog.change_rates * 200.0
        assert np.allclose(counts, expected, rtol=0.15)

    def test_stream_sorted_and_typed(self, catalog, rng):
        stream = UpdateGenerator(catalog, rng=rng).generate(10.0)
        assert stream.kind is EventKind.UPDATE
        assert (np.diff(stream.times) >= 0.0).all()
        assert stream.times.max() < 10.0

    def test_period_length_scales_rates(self, catalog, rng):
        # Rates are per period: doubling the period halves the
        # per-clock-unit rate.
        slow = UpdateGenerator(catalog, period_length=2.0, rng=rng)
        stream = slow.generate(200.0)
        expected = catalog.change_rates.sum() * 100.0
        assert len(stream) == pytest.approx(expected, rel=0.15)

    def test_rejects_bad_parameters(self, catalog, rng):
        with pytest.raises(ValidationError):
            UpdateGenerator(catalog, period_length=0.0, rng=rng)
        with pytest.raises(ValidationError):
            UpdateGenerator(catalog, rng=rng).generate(0.0)

    def test_reproducible(self, catalog):
        one = UpdateGenerator(catalog,
                              rng=np.random.default_rng(5)).generate(5.0)
        two = UpdateGenerator(catalog,
                              rng=np.random.default_rng(5)).generate(5.0)
        assert np.array_equal(one.times, two.times)


class TestRequestGenerator:
    def test_profile_respected(self, catalog, rng):
        generator = RequestGenerator(catalog, rate=500.0, rng=rng)
        stream = generator.generate(20.0)
        counts = np.bincount(stream.elements, minlength=3)
        empirical = counts / counts.sum()
        assert np.allclose(empirical, catalog.access_probabilities,
                           atol=0.02)

    def test_rate_respected(self, catalog, rng):
        stream = RequestGenerator(catalog, rate=100.0,
                                  rng=rng).generate(50.0)
        assert len(stream) == pytest.approx(5000, rel=0.1)

    def test_rejects_bad_rate(self, catalog, rng):
        with pytest.raises(ValidationError):
            RequestGenerator(catalog, rate=0.0, rng=rng)


class TestFreshnessMonitor:
    def test_hand_computed_scenario(self):
        """One element: fresh [0, 0.3), stale [0.3, 0.7), fresh after."""
        monitor = FreshnessMonitor(1, horizon=1.0)
        monitor.note_update(0, 0.3)
        monitor.note_sync(0, 0.7)
        monitor.close()
        assert monitor.element_time_freshness()[0] == pytest.approx(0.6)

    def test_access_scoring(self):
        monitor = FreshnessMonitor(2, horizon=1.0)
        monitor.note_access(0, 0.1, fresh=True)
        monitor.note_access(0, 0.2, fresh=False)
        monitor.note_access(1, 0.3, fresh=True)
        assert monitor.access_counts().tolist() == [2, 1]
        assert monitor.fresh_access_counts().tolist() == [1, 1]

    def test_never_touched_element_stays_fresh(self):
        monitor = FreshnessMonitor(2, horizon=4.0)
        monitor.note_update(0, 1.0)
        monitor.close()
        freshness = monitor.element_time_freshness()
        assert freshness[0] == pytest.approx(0.25)
        assert freshness[1] == pytest.approx(1.0)

    def test_rejects_time_reversal(self):
        monitor = FreshnessMonitor(1, horizon=1.0)
        monitor.note_update(0, 0.5)
        with pytest.raises(SimulationError):
            monitor.note_sync(0, 0.2)

    def test_rejects_events_beyond_horizon(self):
        monitor = FreshnessMonitor(1, horizon=1.0)
        monitor.note_update(0, 2.0)
        with pytest.raises(SimulationError):
            monitor.close()

    def test_close_idempotent(self):
        monitor = FreshnessMonitor(1, horizon=1.0)
        monitor.note_update(0, 0.5)
        monitor.close()
        monitor.close()
        assert monitor.element_time_freshness()[0] == pytest.approx(0.5)

    def test_rejects_bad_construction(self):
        with pytest.raises(SimulationError):
            FreshnessMonitor(0, horizon=1.0)
        with pytest.raises(SimulationError):
            FreshnessMonitor(1, horizon=0.0)

    def test_interleaved_updates_and_syncs(self):
        monitor = FreshnessMonitor(1, horizon=2.0)
        monitor.note_update(0, 0.5)   # stale from 0.5
        monitor.note_update(0, 0.8)   # still stale
        monitor.note_sync(0, 1.0)     # fresh from 1.0
        monitor.note_update(0, 1.5)   # stale from 1.5
        monitor.close()
        # Fresh: [0, 0.5) + [1.0, 1.5) = 1.0 of 2.0.
        assert monitor.element_time_freshness()[0] == pytest.approx(0.5)
