"""Micro-benchmarks: the scalability story in isolation.

The paper's motivation is that generic NLP does not scale; these
benches measure the building blocks directly — the structured exact
solver across problem sizes, the generic NLP path, the marginal
inversion kernel, one k-means refinement step, and simulator event
throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.freshener import PartitionedFreshener, PerceivedFreshener
from repro.core.freshness import invert_marginal_gain
from repro.core.nlp_solver import solve_core_problem_nlp
from repro.core.solver import solve_core_problem
from repro.numerics.kmeans import kmeans
from repro.sim.simulation import Simulation
from repro.workloads.presets import ExperimentSetup, build_catalog


def scaled_setup(n: int) -> ExperimentSetup:
    return ExperimentSetup(n_objects=n, updates_per_period=2.0 * n,
                           syncs_per_period=0.5 * n, theta=1.0,
                           update_std_dev=2.0)


@pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
def test_exact_solver_scaling(benchmark, n):
    catalog = build_catalog(scaled_setup(n), seed=0)
    result = benchmark(solve_core_problem, catalog, 0.5 * n)
    assert result.bandwidth == pytest.approx(0.5 * n, rel=1e-6)


@pytest.mark.parametrize("n", [100, 500])
def test_generic_nlp_solver_scaling(benchmark, n):
    """The IMSL-substitute path: already slow at hundreds of items."""
    catalog = build_catalog(scaled_setup(n), seed=0)
    result = benchmark.pedantic(
        lambda: solve_core_problem_nlp(catalog, 0.5 * n),
        rounds=2, iterations=1)
    assert result.bandwidth == pytest.approx(0.5 * n, rel=1e-5)


def test_heuristic_pipeline_100k(benchmark):
    catalog = build_catalog(scaled_setup(100_000), seed=0)
    planner = PartitionedFreshener(100)
    plan = benchmark(planner.plan, catalog, 50_000.0)
    assert plan.perceived_freshness > 0.5


def test_marginal_inversion_kernel(benchmark):
    targets = np.linspace(1e-6, 1.0 - 1e-6, 500_000)
    ratios = benchmark(invert_marginal_gain, targets)
    assert ratios.shape == targets.shape


def test_kmeans_refinement_step_100k(benchmark):
    rng = np.random.default_rng(0)
    points = rng.uniform(size=(100_000, 2))
    labels = rng.integers(0, 100, size=100_000)
    result = benchmark(kmeans, points, labels, 100, iterations=1)
    assert result.iterations == 1


def test_simulation_throughput(benchmark):
    setup = scaled_setup(200)
    catalog = build_catalog(setup, seed=0)
    plan = PerceivedFreshener().plan(catalog, setup.syncs_per_period)

    def run():
        sim = Simulation(catalog, plan.frequencies, request_rate=500.0,
                         rng=np.random.default_rng(1))
        return sim.run(n_periods=5)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_accesses > 0


def test_incremental_warm_resolve(benchmark):
    """Warm-started re-solve after a small drift vs a cold solve."""
    from repro.core.incremental import IncrementalSolver

    catalog = build_catalog(scaled_setup(100_000), seed=0)
    solver = IncrementalSolver()
    solver.solve(catalog, 50_000.0)  # prime the multiplier
    rng = np.random.default_rng(1)

    def resolve():
        noise = rng.lognormal(0.0, 0.01, size=catalog.n_elements)
        drifted = catalog.with_change_rates(catalog.change_rates * noise)
        return solver.solve(drifted, 50_000.0)

    result = benchmark.pedantic(resolve, rounds=5, iterations=1)
    assert result.bandwidth == pytest.approx(50_000.0, rel=1e-6)
    assert solver.warm_hits >= 5


def test_sync_link_replay_throughput(benchmark):
    """Replaying 100k sync events through the FIFO link model."""
    from repro.sim.queueing import SyncLink

    setup = scaled_setup(2_000)
    catalog = build_catalog(setup, seed=0, size_shape=2.0)
    plan = PerceivedFreshener().plan(catalog, setup.syncs_per_period)
    schedule = plan.schedule()
    times, elements = schedule.events_until(100.0)
    load = SyncLink(1.0).required_capacity(plan.frequencies,
                                           catalog.sizes)
    link = SyncLink(capacity=1.2 * load)
    result = benchmark(link.replay, times, elements, catalog.sizes,
                       horizon=100.0)
    assert result.utilization < 1.0
