"""Integration tests: the full simulation against the analytic model.

The paper verifies every result with both evaluator modes — analytic
calculation and monitored measurement.  These tests reproduce that
verification: for optimal PF/GF schedules the simulated (monitored)
perceived freshness must match the closed form within sampling error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.freshener import GeneralFreshener, PerceivedFreshener
from repro.errors import ValidationError
from repro.sim.simulation import Simulation
from repro.workloads.catalog import Catalog
from repro.workloads.presets import ExperimentSetup, build_catalog


@pytest.fixture
def sim_catalog():
    setup = ExperimentSetup(n_objects=50, updates_per_period=100.0,
                            syncs_per_period=25.0, theta=1.0,
                            update_std_dev=1.0)
    return build_catalog(setup, alignment="shuffled", seed=2)


class TestSimulationMechanics:
    def test_budget_accounting(self, sim_catalog):
        plan = PerceivedFreshener().plan(sim_catalog, 25.0)
        sim = Simulation(sim_catalog, plan.frequencies,
                         request_rate=100.0,
                         rng=np.random.default_rng(0))
        result = sim.run(n_periods=8)
        # Syncs per period must match the planned budget.
        assert result.n_syncs / 8.0 == pytest.approx(25.0, rel=0.05)
        assert result.bandwidth_used / 8.0 == pytest.approx(25.0,
                                                            rel=0.05)

    def test_update_count_near_expectation(self, sim_catalog):
        plan = PerceivedFreshener().plan(sim_catalog, 25.0)
        sim = Simulation(sim_catalog, plan.frequencies,
                         request_rate=50.0,
                         rng=np.random.default_rng(1))
        result = sim.run(n_periods=10)
        expected = sim_catalog.change_rates.sum() * 10.0
        assert result.n_updates == pytest.approx(expected, rel=0.1)

    def test_deterministic_given_seed(self, sim_catalog):
        plan = PerceivedFreshener().plan(sim_catalog, 25.0)
        results = [
            Simulation(sim_catalog, plan.frequencies, request_rate=50.0,
                       rng=np.random.default_rng(3)).run(n_periods=3)
            for _ in range(2)
        ]
        assert results[0].n_updates == results[1].n_updates
        assert results[0].monitored_perceived_freshness == \
            results[1].monitored_perceived_freshness

    def test_rejects_bad_parameters(self, sim_catalog):
        plan = PerceivedFreshener().plan(sim_catalog, 25.0)
        with pytest.raises(ValidationError):
            Simulation(sim_catalog, plan.frequencies[:-1],
                       request_rate=50.0, rng=np.random.default_rng(0))
        with pytest.raises(ValidationError):
            Simulation(sim_catalog, plan.frequencies, request_rate=0.0,
                       rng=np.random.default_rng(0))
        sim = Simulation(sim_catalog, plan.frequencies,
                         request_rate=50.0,
                         rng=np.random.default_rng(0))
        with pytest.raises(ValidationError):
            sim.run(n_periods=0)

    def test_wasted_sync_fraction_in_range(self, sim_catalog):
        plan = PerceivedFreshener().plan(sim_catalog, 25.0)
        sim = Simulation(sim_catalog, plan.frequencies,
                         request_rate=50.0,
                         rng=np.random.default_rng(4))
        result = sim.run(n_periods=5)
        assert 0.0 <= result.wasted_sync_fraction <= 1.0


class TestMonitoredVsAnalytic:
    """The paper's two evaluator modes must agree."""

    def test_perceived_freshness_matches_closed_form(self, sim_catalog):
        plan = PerceivedFreshener().plan(sim_catalog, 25.0)
        sim = Simulation(sim_catalog, plan.frequencies,
                         request_rate=400.0,
                         rng=np.random.default_rng(7))
        result = sim.run(n_periods=40)
        analytic_pf, analytic_gf = result.analytic()
        assert result.monitored_time_perceived == pytest.approx(
            analytic_pf, abs=0.03)
        assert result.monitored_general_freshness == pytest.approx(
            analytic_gf, abs=0.03)
        assert result.monitored_perceived_freshness == pytest.approx(
            analytic_pf, abs=0.04)

    def test_gf_schedule_also_matches(self, sim_catalog):
        plan = GeneralFreshener().plan(sim_catalog, 25.0)
        sim = Simulation(sim_catalog, plan.frequencies,
                         request_rate=400.0,
                         rng=np.random.default_rng(8))
        result = sim.run(n_periods=40)
        analytic_pf, _ = result.analytic()
        assert result.monitored_time_perceived == pytest.approx(
            analytic_pf, abs=0.03)

    def test_pf_beats_gf_in_simulation(self, sim_catalog):
        """The headline claim holds under simulation, not just math."""
        seeds = np.random.default_rng(9)
        pf_plan = PerceivedFreshener().plan(sim_catalog, 25.0)
        gf_plan = GeneralFreshener().plan(sim_catalog, 25.0)
        pf_result = Simulation(sim_catalog, pf_plan.frequencies,
                               request_rate=300.0, rng=seeds).run(30)
        gf_result = Simulation(sim_catalog, gf_plan.frequencies,
                               request_rate=300.0, rng=seeds).run(30)
        assert pf_result.monitored_perceived_freshness > \
            gf_result.monitored_perceived_freshness

    def test_single_element_exact_rate(self):
        """F̄ = (f/λ)(1 − e^(−λ/f)) against a long single-element run."""
        catalog = Catalog(access_probabilities=np.array([1.0]),
                          change_rates=np.array([2.0]))
        sim = Simulation(catalog, np.array([2.0]), request_rate=50.0,
                         rng=np.random.default_rng(11))
        result = sim.run(n_periods=1500)
        expected = (1.0 - np.exp(-1.0))  # r = 1
        assert result.monitored_time_perceived == pytest.approx(
            expected, abs=0.02)

    def test_zero_schedule_all_stale_eventually(self):
        catalog = Catalog(access_probabilities=np.array([1.0]),
                          change_rates=np.array([10.0]))
        sim = Simulation(catalog, np.array([0.0]), request_rate=50.0,
                         rng=np.random.default_rng(12))
        result = sim.run(n_periods=50)
        # With rate 10/period and no syncs, staleness is near-total.
        assert result.monitored_time_perceived < 0.05
        assert result.n_syncs == 0
