"""Subprocess worker for the large-scale replay benchmark.

Each scaling point runs in its own interpreter because
``ru_maxrss`` is a process-lifetime high-water mark: measuring a
10⁵-element replay after a 10⁶-element one in the same process
would report the bigger run's peak.  A fresh process also lets an
optional ``resource.setrlimit`` address-space ceiling police one
replay without constraining the whole bench, which is how CI proves
the structure-of-arrays layout keeps million-element windows inside
a bounded footprint.

Usage::

    python benchmarks/scaling_worker.py '<json config>'

Config keys (defaults in parentheses): ``n_elements``, ``scenario``
(``quiet`` | ``iid20`` | ``burst``), ``engine`` (``auto``),
``n_periods`` (2.0), ``updates_factor`` (1.0), ``syncs_factor``
(0.3), ``request_factor`` (0.5), ``rlimit_bytes`` (none),
``chunk_periods`` (none — a positive integer routes the run through
the streaming slab engine), ``mode`` (``run`` | ``adapt`` — the
latter drives an :class:`AdaptiveMirrorManager` window-batched loop
through the slab engine instead of a bare simulation),
``compare_generation`` (false — additionally time the legacy
event-stream tape build against the fused route on fresh same-seed
simulations), ``freshener`` (``exact`` | ``partitioned`` — the exact
water-filling solve is superlinear in the catalog and dominates the
wall clock past a few million elements, so the 10⁷ streaming row
plans with the paper's scalable partitioned heuristic instead).
One JSON object is printed on stdout: replay, total
and stream-generation seconds, event counts, ``peak_rss_kb`` and a
freshness checksum the parent uses to confirm engines agree without
shipping arrays across the pipe.
"""

from __future__ import annotations

import hashlib
import json
import resource
import sys
import time


#: i.i.d. loss probability for the ``iid20`` scenario.
IID_LOSS = 0.2
#: Gilbert–Elliott transition rates for the ``burst`` scenario: a
#: sync has a 5% chance of entering a burst and bursts end with
#: probability 40% per attempt (mean burst length 2.5 attempts).
BURST_P_GOOD_TO_BAD = 0.05
BURST_P_BAD_TO_GOOD = 0.4
#: Ample explicit budget for the burst arm: with no retries this
#: routes the resolver onto the segmented-scan path, which is the
#: configuration the 10⁶-element claim is about.
BURST_BUDGET = 1e9


def run_point(config: dict) -> dict:
    """Run one scaling point and return its measurement row."""
    rlimit = config.get("rlimit_bytes")
    if rlimit is not None:
        resource.setrlimit(resource.RLIMIT_AS,
                           (int(rlimit), int(rlimit)))

    import numpy as np

    from repro.core.freshener import (PartitionedFreshener,
                                      PerceivedFreshener)
    from repro.faults.model import FaultPlan
    from repro.faults.retry import RetryPolicy
    from repro.obs import registry as obs
    from repro.sim.simulation import Simulation
    from repro.workloads.presets import ExperimentSetup, build_catalog

    n = int(config["n_elements"])
    scenario = config.get("scenario", "quiet")
    engine = config.get("engine", "auto")
    n_periods = float(config.get("n_periods", 2.0))
    setup = ExperimentSetup(
        n_objects=n,
        updates_per_period=float(config.get("updates_factor", 1.0)) * n,
        syncs_per_period=float(config.get("syncs_factor", 0.3)) * n,
        theta=1.0, update_std_dev=2.0)
    catalog = build_catalog(setup, seed=0)

    fault_kwargs: dict = {}
    if scenario == "iid20":
        fault_kwargs = dict(
            fault_plan=FaultPlan.iid(IID_LOSS),
            retry_policy=RetryPolicy(max_retries=3),
            fault_rng=np.random.default_rng(11))
    elif scenario == "burst":
        fault_kwargs = dict(
            fault_plan=FaultPlan.bursty(BURST_P_GOOD_TO_BAD,
                                        BURST_P_BAD_TO_GOOD),
            bandwidth_budget=BURST_BUDGET,
            fault_rng=np.random.default_rng(11))
    elif scenario != "quiet":
        raise ValueError(f"unknown scenario {scenario!r}")

    request_rate = float(config.get("request_factor", 0.5)) * n
    chunk_periods = config.get("chunk_periods")
    if chunk_periods is not None:
        chunk_periods = int(chunk_periods)

    if config.get("mode", "run") == "adapt":
        from repro.runtime.manager import AdaptiveMirrorManager

        manager_kwargs: dict = {}
        if scenario == "iid20":
            manager_kwargs = dict(
                fault_plan=FaultPlan.iid(IID_LOSS),
                retry_policy=RetryPolicy(max_retries=3))
        elif scenario == "burst":
            manager_kwargs = dict(
                fault_plan=FaultPlan.bursty(BURST_P_GOOD_TO_BAD,
                                            BURST_P_BAD_TO_GOOD))
        if config.get("freshener", "exact") == "partitioned":
            manager_kwargs["freshener"] = \
                PartitionedFreshener(n_partitions=64)
        manager = AdaptiveMirrorManager(
            catalog, setup.syncs_per_period,
            request_rate=request_rate,
            rng=np.random.default_rng(7), **manager_kwargs)
        with obs.telemetry() as registry:
            start = time.perf_counter()
            reports = manager.run(
                int(n_periods),
                batch=int(config.get("batch", 4)),
                slab_periods=(int(config["slab_periods"])
                              if "slab_periods" in config else None))
            total = time.perf_counter() - start
        _, replay = registry.span_totals["manager.simulate"]
        series = np.array([report.monitored_pf for report in reports])
        return {
            "n_elements": n,
            "scenario": scenario,
            "mode": "adapt",
            "n_periods": len(reports),
            "replans": int(registry.counters.get("manager.replans",
                                                 0)),
            "replay_seconds": replay,
            "total_seconds": total,
            "peak_rss_kb": resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss,
            "rlimit_bytes": rlimit,
            "freshness_checksum": hashlib.sha256(
                series.tobytes()).hexdigest()[:16],
        }

    freshener = (PartitionedFreshener(n_partitions=64)
                 if config.get("freshener", "exact") == "partitioned"
                 else PerceivedFreshener())
    plan = freshener.plan(catalog, setup.syncs_per_period)
    sim = Simulation(catalog, plan.frequencies,
                     request_rate=request_rate,
                     rng=np.random.default_rng(7), **fault_kwargs)
    with obs.telemetry() as registry:
        start = time.perf_counter()
        result = sim.run(n_periods, engine=engine,
                         chunk_periods=chunk_periods)
        total = time.perf_counter() - start
    _, replay = registry.span_totals["sim.run"]
    generation = registry.span_totals.get("sim.generate",
                                          (0, 0.0))[1]
    engines = {name: count
               for name, count in registry.counters.items()
               if name.startswith("sim.engine.")}
    checksum = hashlib.sha256(
        result.element_time_freshness.tobytes()).hexdigest()[:16]
    row = {
        "n_elements": n,
        "scenario": scenario,
        "engine": engine,
        "engines_used": engines,
        "chunk_periods": chunk_periods,
        "n_events": int(result.n_updates + result.n_syncs
                        + result.n_accesses),
        "attempted_polls": int(result.attempted_polls),
        "failed_polls": int(result.failed_polls),
        "replay_seconds": replay,
        "total_seconds": total,
        "generation_seconds": generation,
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
        "rlimit_bytes": rlimit,
        "freshness_checksum": checksum,
    }
    if config.get("compare_generation"):
        # Fresh same-seed simulations so each route draws its tape
        # from an identical rng state; only the build is timed.
        def tape_seconds(fused: bool) -> float:
            build_sim = Simulation(catalog, plan.frequencies,
                                   request_rate=request_rate,
                                   rng=np.random.default_rng(7))
            start = time.perf_counter()
            build_sim.build_tape(n_periods, fused=fused)
            return time.perf_counter() - start

        row["legacy_generation_seconds"] = tape_seconds(False)
        row["fused_generation_seconds"] = tape_seconds(True)
    return row


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: scaling_worker.py '<json config>'",
              file=sys.stderr)
        return 2
    row = run_point(json.loads(argv[1]))
    print(json.dumps(row))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
