"""Equivalence suite: the vectorized kernel vs the reference loop.

The fastpath's contract is **bit-identity**, not statistical
agreement: for every fault-free tape, :func:`repro.sim.fastpath.
replay_fastpath` must return a :class:`SimulationResult` whose every
field — floats included — equals the reference loop's exactly.  These
tests drive both engines from identically seeded simulations across
presets, phase policies, object sizes, partial final periods and a
bursty (non-Poisson) update process, then diff the results bit for
bit.  A seeded hypothesis sweep over random catalogs guards the
corners no fixture thought of.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshener import GeneralFreshener, PerceivedFreshener
from repro.errors import ValidationError
from repro.faults.model import (
    FaultPlan,
    GilbertElliottFaultModel,
    IIDFaultModel,
    LatencyFaultModel,
    OutageWindow,
    PollOutcome,
)
from repro.faults.retry import RetryPolicy
from repro.obs import registry as obs
from repro.sim.bursty import BurstyUpdateGenerator
from repro.sim.fastpath import replay_window_tapes
from repro.sim.simulation import Simulation
from repro.workloads.catalog import Catalog
from repro.workloads.presets import ExperimentSetup, build_catalog

from tests.conftest import random_catalog


def bits(array: np.ndarray) -> np.ndarray:
    """Reinterpret a float array's bytes for exact comparison."""
    return np.ascontiguousarray(np.asarray(array, dtype=np.float64)
                                ).view(np.uint64)


def assert_bit_identical(fast, reference) -> None:
    """Every ``SimulationResult`` field must match exactly."""
    for field in dataclasses.fields(reference):
        a = getattr(fast, field.name)
        b = getattr(reference, field.name)
        if isinstance(b, float):
            assert bits(np.array([a])) == bits(np.array([b])), field.name
        elif isinstance(b, np.ndarray) and b.dtype.kind == "f":
            assert np.array_equal(bits(a), bits(b)), field.name
        elif isinstance(b, np.ndarray):
            assert np.array_equal(a, b), field.name
        else:
            assert a == b, field.name


def run_engine(catalog: Catalog, frequencies: np.ndarray, *,
               engine: str, seed: int, n_periods: float,
               request_rate: float = 80.0, **kwargs):
    """One simulation run with a per-call generator (same seed ⇒
    identical event streams, so the engines see the same tape)."""
    if "update_generator" in kwargs:
        kwargs = dict(kwargs)
        factory = kwargs.pop("update_generator")
        kwargs["update_generator"] = factory(catalog)
    sim = Simulation(catalog, frequencies, request_rate=request_rate,
                     rng=np.random.default_rng(seed), **kwargs)
    return sim.run(n_periods=n_periods, engine=engine)


def assert_engines_agree(catalog: Catalog, frequencies: np.ndarray, *,
                         seed: int, n_periods: float, **kwargs) -> None:
    fast = run_engine(catalog, frequencies, engine="fastpath",
                      seed=seed, n_periods=n_periods, **kwargs)
    reference = run_engine(catalog, frequencies, engine="reference",
                           seed=seed, n_periods=n_periods, **kwargs)
    assert_bit_identical(fast, reference)


@pytest.fixture
def preset_catalog():
    setup = ExperimentSetup(n_objects=40, updates_per_period=80.0,
                            syncs_per_period=20.0, theta=1.0,
                            update_std_dev=1.0)
    return build_catalog(setup, alignment="shuffled", seed=11)


class TestBitIdentity:
    @pytest.mark.parametrize("theta", [0.0, 1.0, 1.6])
    def test_preset_catalogs(self, theta):
        setup = ExperimentSetup(n_objects=50, updates_per_period=100.0,
                                syncs_per_period=25.0, theta=theta,
                                update_std_dev=1.0)
        catalog = build_catalog(setup, alignment="shuffled", seed=3)
        plan = PerceivedFreshener().plan(catalog, 25.0)
        assert_engines_agree(catalog, plan.frequencies, seed=17,
                             n_periods=10.0)

    @pytest.mark.parametrize("phase_policy", ["staggered", "zero"])
    def test_phase_policies(self, preset_catalog, phase_policy):
        plan = GeneralFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies, seed=5,
                             n_periods=6.0, phase_policy=phase_policy)

    def test_variable_sizes(self, sized_catalog):
        plan = PerceivedFreshener().plan(sized_catalog, 6.0)
        assert_engines_agree(sized_catalog, plan.frequencies, seed=23,
                             n_periods=12.0, request_rate=40.0)

    @pytest.mark.parametrize("n_periods", [0.75, 7.25, 1.0])
    def test_partial_final_periods(self, preset_catalog, n_periods):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies, seed=31,
                             n_periods=n_periods)

    def test_non_unit_period_length(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies, seed=41,
                             n_periods=5.5, period_length=2.5)

    def test_bursty_updates(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(
            preset_catalog, plan.frequencies, seed=47, n_periods=8.0,
            update_generator=lambda catalog: BurstyUpdateGenerator(
                catalog, burstiness=0.7, cycle_length=2.0,
                rng=np.random.default_rng(99)))

    def test_zero_frequency_elements_idle(self, small_catalog):
        frequencies = np.array([4.0, 0.0, 2.0, 0.0, 1.0])
        assert_engines_agree(small_catalog, frequencies, seed=53,
                             n_periods=9.0, request_rate=30.0)

    def test_quiet_fault_plan_stays_on_fastpath(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        fast = run_engine(preset_catalog, plan.frequencies,
                          engine="auto", seed=61, n_periods=5.0,
                          fault_plan=FaultPlan.quiet())
        reference = run_engine(preset_catalog, plan.frequencies,
                               engine="reference", seed=61,
                               n_periods=5.0,
                               fault_plan=FaultPlan.quiet())
        assert_bit_identical(fast, reference)


class TestPropertyRandomCatalogs:
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_catalogs_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, int(rng.integers(3, 40)),
                                 sized=bool(rng.integers(0, 2)))
        bandwidth = float(catalog.sizes.sum()
                          * rng.uniform(0.2, 2.0))
        plan = PerceivedFreshener().plan(catalog, bandwidth)
        assert_engines_agree(
            catalog, plan.frequencies, seed=seed,
            n_periods=float(rng.uniform(0.5, 9.0)),
            request_rate=float(rng.uniform(5.0, 120.0)))


def _quiet_plan():
    return FaultPlan.quiet()


def _iid_plan():
    return FaultPlan.iid(0.4)


def _iid_timeout_plan():
    return FaultPlan.iid(0.3, failure=PollOutcome.TIMEOUT)


def _iid_unreachable_plan():
    return FaultPlan(models=(IIDFaultModel(
        0.3, failure=PollOutcome.UNREACHABLE),))


def _ge_plan():
    return FaultPlan(models=(GilbertElliottFaultModel(0.2, 0.5),))


def _ge_unreachable_plan():
    return FaultPlan(models=(GilbertElliottFaultModel(
        0.2, 0.5, failure=PollOutcome.UNREACHABLE),))


def _latency_plan():
    return FaultPlan(models=(LatencyFaultModel(0.05, 0.1),))


def _outage_plan():
    return FaultPlan(models=(IIDFaultModel(0.2),),
                     outages=(OutageWindow(start=1.0, end=2.0,
                                           elements=(0, 1)),))


def _multi_iid_plan():
    return FaultPlan(models=(IIDFaultModel(0.2), IIDFaultModel(0.1)))


#: (plan factory, expected engine under "auto"): the dispatch matrix.
#: Stateless single-model i.i.d. retryable loss takes the faulted
#: kernel, a single *retryable* Gilbert–Elliott chain takes the
#: scan-vectorized burst kernel; everything else — variable draw
#: shapes, fast-fail outcomes, outages, multiple models — stays on
#: the loop.
_DISPATCH_MATRIX = [
    (None, "fastpath"),
    (_quiet_plan, "fastpath"),
    (_iid_plan, "fastpath_faulted"),
    (_iid_timeout_plan, "fastpath_faulted"),
    (_iid_unreachable_plan, "reference"),
    (_ge_plan, "fastpath_ge"),
    (_ge_unreachable_plan, "reference"),
    (_latency_plan, "reference"),
    (_outage_plan, "reference"),
    (_multi_iid_plan, "reference"),
]


class TestDispatch:
    @pytest.mark.parametrize("factory,expected", _DISPATCH_MATRIX)
    def test_auto_dispatch_matrix(self, preset_catalog, factory,
                                  expected):
        """auto must route each plan class to its engine — and stay
        bit-identical to a forced reference run either way.  The
        ``sim.engine.*`` counters are the dispatch decision's public
        record, so the matrix reads them rather than inferring the
        path from side effects."""
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        # A fresh plan per run: Gilbert–Elliott chains carry hidden
        # per-element state across runs, so sharing one object would
        # leak the first run's bursts into the second.
        with obs.telemetry() as registry:
            auto = run_engine(
                preset_catalog, plan.frequencies, engine="auto",
                seed=71, n_periods=4.0,
                fault_plan=factory() if factory is not None else None)
        engines = {
            name: registry.counters.get(f"sim.engine.{name}", 0)
            for name in ("fastpath", "fastpath_faulted",
                         "fastpath_ge", "reference")}
        assert engines == {name: (1 if name == expected else 0)
                           for name in engines}
        reference = run_engine(
            preset_catalog, plan.frequencies, engine="reference",
            seed=71, n_periods=4.0,
            fault_plan=factory() if factory is not None else None)
        assert_bit_identical(auto, reference)

    def test_gated_retry_policy_stays_reference(self, preset_catalog):
        """A shared admission gate is cross-run stateful: even an
        otherwise kernel-eligible i.i.d. or GE plan must stay on the
        reference loop."""
        from repro.faults.retry import RetryAdmissionGate
        plan_freq = PerceivedFreshener().plan(preset_catalog, 20.0)
        for factory in (_iid_plan, _ge_plan):
            sim = Simulation(
                preset_catalog, plan_freq.frequencies,
                request_rate=40.0, rng=np.random.default_rng(0),
                fault_plan=factory(),
                retry_policy=RetryPolicy(
                    max_retries=2,
                    admission_gate=RetryAdmissionGate(
                        capacity=4.0, refill_rate=2.0)))
            assert sim.fault_kernel_args() is None
            with pytest.raises(ValidationError):
                sim.run(n_periods=2.0, engine="fastpath")

    @pytest.mark.parametrize(
        "factory,accepted",
        [(factory, expected != "reference")
         for factory, expected in _DISPATCH_MATRIX])
    def test_forced_fastpath_accepts_or_rejects(self, preset_catalog,
                                                factory, accepted):
        """engine='fastpath' runs exactly the kernel-eligible plans
        and raises for stateful ones instead of silently falling
        back."""
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        faults = factory() if factory is not None else None
        sim = Simulation(preset_catalog, plan.frequencies,
                         request_rate=40.0,
                         rng=np.random.default_rng(0),
                         fault_plan=faults)
        if accepted:
            sim.run(n_periods=2.0, engine="fastpath")
        else:
            with pytest.raises(ValidationError):
                sim.run(n_periods=2.0, engine="fastpath")

    def test_auto_iid_exercises_faults(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        auto = run_engine(preset_catalog, plan.frequencies,
                          engine="auto", seed=71, n_periods=5.0,
                          fault_plan=FaultPlan.iid(0.4))
        assert auto.failed_polls > 0

    def test_unknown_engine_rejected(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        sim = Simulation(preset_catalog, plan.frequencies,
                         request_rate=40.0,
                         rng=np.random.default_rng(0))
        with pytest.raises(ValidationError):
            sim.run(n_periods=2.0, engine="turbo")


class TestFaultedBitIdentity:
    """The faulted kernel's contract is the same bit-identity bar."""

    @pytest.mark.parametrize("probability", [0.0, 0.3, 1.0])
    def test_loss_rates(self, preset_catalog, probability):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies,
                             seed=101, n_periods=6.0,
                             fault_plan=FaultPlan.iid(probability),
                             retry_policy=RetryPolicy(max_retries=3))

    def test_dedicated_fault_rng(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        kwargs = dict(fault_plan=FaultPlan.iid(0.35),
                      retry_policy=RetryPolicy(max_retries=2))
        fast = run_engine(preset_catalog, plan.frequencies,
                          engine="fastpath", seed=103, n_periods=5.0,
                          fault_rng=np.random.default_rng(7),
                          **kwargs)
        reference = run_engine(preset_catalog, plan.frequencies,
                               engine="reference", seed=103,
                               n_periods=5.0,
                               fault_rng=np.random.default_rng(7),
                               **kwargs)
        assert_bit_identical(fast, reference)

    @pytest.mark.parametrize("budget_scale", [0.15, 0.6, 1.0])
    def test_tight_budgets_deny_identically(self, sized_catalog,
                                            budget_scale):
        plan = PerceivedFreshener().plan(sized_catalog, 6.0)
        budget = float(
            sized_catalog.sizes @ plan.frequencies) * budget_scale
        assert_engines_agree(sized_catalog, plan.frequencies,
                             seed=107, n_periods=8.0,
                             request_rate=40.0,
                             fault_plan=FaultPlan.iid(0.4),
                             retry_policy=RetryPolicy(max_retries=4),
                             bandwidth_budget=budget)

    def test_fault_trace_identical(self, sized_catalog):
        plan = PerceivedFreshener().plan(sized_catalog, 6.0)
        kwargs = dict(fault_plan=FaultPlan.iid(0.5),
                      retry_policy=RetryPolicy(max_retries=3),
                      record_fault_trace=True)
        fast = run_engine(sized_catalog, plan.frequencies,
                          engine="fastpath", seed=109, n_periods=4.0,
                          request_rate=30.0, **kwargs)
        reference = run_engine(sized_catalog, plan.frequencies,
                               engine="reference", seed=109,
                               n_periods=4.0, request_rate=30.0,
                               **kwargs)
        assert fast.fault_trace is not None
        assert fast.fault_trace == reference.fault_trace
        assert_bit_identical(fast, reference)

    def test_no_retry_policy(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies,
                             seed=113, n_periods=5.0,
                             fault_plan=FaultPlan.iid(0.3))

    def test_fault_time_offset(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies,
                             seed=127, n_periods=3.0,
                             fault_plan=FaultPlan.iid(0.3),
                             retry_policy=RetryPolicy(max_retries=3),
                             fault_time_offset=4.0)

    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_faulted_catalogs_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, int(rng.integers(3, 40)),
                                 sized=bool(rng.integers(0, 2)))
        bandwidth = float(catalog.sizes.sum()
                          * rng.uniform(0.2, 2.0))
        plan = PerceivedFreshener().plan(catalog, bandwidth)
        planned = float(catalog.sizes @ plan.frequencies)
        budget = (planned * float(rng.uniform(0.2, 1.5))
                  if planned > 0.0 and rng.integers(0, 2) else None)
        retry = (RetryPolicy(max_retries=int(rng.integers(0, 5)))
                 if rng.integers(0, 2) else None)
        failure = (PollOutcome.TIMEOUT if rng.integers(0, 2)
                   else PollOutcome.ERROR)
        assert_engines_agree(
            catalog, plan.frequencies, seed=seed,
            n_periods=float(rng.uniform(0.5, 9.0)),
            request_rate=float(rng.uniform(5.0, 120.0)),
            fault_plan=FaultPlan.iid(float(rng.uniform(0.0, 1.0)),
                                     failure=failure),
            retry_policy=retry, bandwidth_budget=budget,
            record_fault_trace=bool(rng.integers(0, 2)))


class TestGEBitIdentity:
    """The Gilbert–Elliott kernel meets the same bit-identity bar —
    results, fault trace, hidden chain state and post-run fault-rng
    stream position all must equal the reference channel's."""

    @staticmethod
    def _run(catalog, frequencies, engine, *, seed, n_periods,
             plan_factory, runs=1, request_rate=40.0, **kwargs):
        plan = plan_factory()
        fault_rng = np.random.default_rng(seed + 1)
        sim = Simulation(catalog, frequencies,
                         request_rate=request_rate,
                         rng=np.random.default_rng(seed),
                         fault_plan=plan, fault_rng=fault_rng,
                         **kwargs)
        result = None
        for _ in range(runs):
            result = sim.run(n_periods=n_periods, engine=engine)
        chain = plan.models[0].chain_states(catalog.n_elements)
        return result, fault_rng.bit_generator.state, chain

    def _agree(self, catalog, frequencies, **kwargs):
        fast, fast_state, fast_chain = self._run(
            catalog, frequencies, "fastpath", **kwargs)
        ref, ref_state, ref_chain = self._run(
            catalog, frequencies, "reference", **kwargs)
        assert_bit_identical(fast, ref)
        assert fast_state == ref_state
        assert np.array_equal(fast_chain, ref_chain)
        return fast, ref

    @pytest.mark.parametrize("loss_good,loss_bad",
                             [(0.0, 1.0), (0.1, 0.9), (0.0, 0.5)])
    def test_loss_rates(self, preset_catalog, loss_good, loss_bad):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        self._agree(
            preset_catalog, plan.frequencies, seed=211,
            n_periods=6.0,
            plan_factory=lambda: FaultPlan.bursty(
                0.2, 0.5, loss_good=loss_good, loss_bad=loss_bad))

    def test_retries(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        self._agree(
            preset_catalog, plan.frequencies, seed=223,
            n_periods=5.0,
            plan_factory=lambda: FaultPlan.bursty(0.3, 0.4),
            retry_policy=RetryPolicy(max_retries=3))

    @pytest.mark.parametrize("budget_scale", [0.15, 0.6, 1.0])
    def test_tight_budgets_deny_identically(self, sized_catalog,
                                            budget_scale):
        plan = PerceivedFreshener().plan(sized_catalog, 6.0)
        budget = float(
            sized_catalog.sizes @ plan.frequencies) * budget_scale
        self._agree(
            sized_catalog, plan.frequencies, seed=227,
            n_periods=8.0, request_rate=30.0,
            plan_factory=lambda: FaultPlan.bursty(0.25, 0.5),
            retry_policy=RetryPolicy(max_retries=4),
            bandwidth_budget=budget)

    def test_fault_trace_identical(self, sized_catalog):
        plan = PerceivedFreshener().plan(sized_catalog, 6.0)
        fast, ref = self._agree(
            sized_catalog, plan.frequencies, seed=229,
            n_periods=4.0, request_rate=30.0,
            plan_factory=lambda: FaultPlan.bursty(
                0.3, 0.4, loss_good=0.2, loss_bad=0.95),
            retry_policy=RetryPolicy(max_retries=3),
            record_fault_trace=True)
        assert fast.fault_trace is not None
        assert fast.fault_trace == ref.fault_trace

    def test_no_retry_scan_path(self, preset_catalog):
        """An ample budget with no retries takes the segmented-scan
        route (denial-free, fixed two draws per sync)."""
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        self._agree(
            preset_catalog, plan.frequencies, seed=233,
            n_periods=7.25,
            plan_factory=lambda: FaultPlan.bursty(0.2, 0.5),
            bandwidth_budget=1e9)

    def test_fault_time_offset(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        self._agree(
            preset_catalog, plan.frequencies, seed=239,
            n_periods=3.0,
            plan_factory=lambda: FaultPlan.bursty(0.2, 0.5),
            retry_policy=RetryPolicy(max_retries=2),
            fault_time_offset=4.0)

    @pytest.mark.parametrize("n_periods", [0.75, 4.5])
    def test_partial_periods(self, preset_catalog, n_periods):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        self._agree(
            preset_catalog, plan.frequencies, seed=241,
            n_periods=n_periods,
            plan_factory=lambda: FaultPlan.bursty(0.35, 0.3))

    def test_sequential_runs_thread_chain_state(self,
                                                preset_catalog):
        """Two runs on one plan object: the second run must start
        from the first run's committed burst states, exactly like
        the reference channel's hidden per-element dict."""
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        self._agree(
            preset_catalog, plan.frequencies, seed=251,
            n_periods=3.0, runs=2,
            plan_factory=lambda: FaultPlan.bursty(0.3, 0.3))

    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_ge_catalogs_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, int(rng.integers(3, 40)),
                                 sized=bool(rng.integers(0, 2)))
        bandwidth = float(catalog.sizes.sum()
                          * rng.uniform(0.2, 2.0))
        plan = PerceivedFreshener().plan(catalog, bandwidth)
        planned = float(catalog.sizes @ plan.frequencies)
        budget = (planned * float(rng.uniform(0.2, 1.5))
                  if planned > 0.0 and rng.integers(0, 2) else None)
        retry = (RetryPolicy(max_retries=int(rng.integers(0, 5)))
                 if rng.integers(0, 2) else None)
        failure = (PollOutcome.TIMEOUT if rng.integers(0, 2)
                   else PollOutcome.ERROR)
        p_gb = float(rng.uniform(0.0, 1.0))
        p_bg = float(rng.uniform(0.0, 1.0))
        loss_good = float(rng.uniform(0.0, 0.5))
        loss_bad = float(rng.uniform(0.5, 1.0))
        self._agree(
            catalog, plan.frequencies, seed=seed,
            n_periods=float(rng.uniform(0.5, 9.0)),
            request_rate=float(rng.uniform(5.0, 120.0)),
            plan_factory=lambda: FaultPlan.bursty(
                p_gb, p_bg, loss_good=loss_good, loss_bad=loss_bad,
                failure=failure),
            retry_policy=retry, bandwidth_budget=budget,
            record_fault_trace=bool(rng.integers(0, 2)))


class TestWindowReplay:
    """Tiled window batching vs separate per-period runs."""

    @staticmethod
    def _run_periods(catalog, frequencies, *, n_windows, seed, plan,
                     retry, budget, first_global, engine):
        rng = np.random.default_rng(seed)
        fault_rng = (np.random.default_rng(seed + 1)
                     if plan is not None else None)
        results = []
        for j in range(n_windows):
            sim = Simulation(
                catalog, frequencies, request_rate=25.0, rng=rng,
                fault_plan=plan, retry_policy=retry,
                bandwidth_budget=budget, fault_rng=fault_rng,
                fault_time_offset=float(first_global - 1 + j))
            results.append(sim.run(1, engine=engine))
        return results

    @pytest.mark.parametrize("faulty,budget_scale", [
        (False, None), (True, None), (True, 0.5)])
    def test_window_matches_per_period_runs(self, sized_catalog,
                                            faulty, budget_scale):
        frequencies = np.array([4.0, 1.5, 0.0, 2.0, 3.0])
        plan = FaultPlan.iid(0.3) if faulty else None
        retry = RetryPolicy(max_retries=3) if faulty else None
        budget = (float(sized_catalog.sizes @ frequencies)
                  * budget_scale if budget_scale else None)
        reference = self._run_periods(
            sized_catalog, frequencies, n_windows=4, seed=131,
            plan=plan, retry=retry, budget=budget, first_global=2,
            engine="reference")
        rng = np.random.default_rng(131)
        fault_rng = (np.random.default_rng(132) if faulty else None)
        tapes = []
        fault_args = None
        for j in range(4):
            sim = Simulation(
                sized_catalog, frequencies, request_rate=25.0,
                rng=rng, fault_plan=plan, retry_policy=retry,
                bandwidth_budget=budget, fault_rng=fault_rng,
                fault_time_offset=float(1 + j))
            tapes.append(sim.build_tape(1))
            fault_args = sim.fault_kernel_args()
        windowed, consumed = replay_window_tapes(
            sized_catalog, frequencies, tapes, period_length=1.0,
            first_global_period=2, fault_args=fault_args)
        assert len(windowed) == 4
        assert len(consumed) == 4
        for ref, win in zip(reference, windowed):
            assert_bit_identical(win, ref)
        if not faulty:
            assert consumed == [0, 0, 0, 0]

    def test_ge_window_matches_per_period_runs(self, sized_catalog):
        """A GE plan batches through the window replay: one batched
        resolve against the threaded chain state must equal four
        per-period reference runs, stream position included."""
        frequencies = np.array([4.0, 1.5, 0.0, 2.0, 3.0])
        retry = RetryPolicy(max_retries=2)
        reference = self._run_periods(
            sized_catalog, frequencies, n_windows=4, seed=151,
            plan=FaultPlan.bursty(0.3, 0.4), retry=retry,
            budget=None, first_global=2, engine="reference")
        rng = np.random.default_rng(151)
        fault_rng = np.random.default_rng(152)
        plan = FaultPlan.bursty(0.3, 0.4)
        tapes = []
        fault_args = None
        for j in range(4):
            sim = Simulation(
                sized_catalog, frequencies, request_rate=25.0,
                rng=rng, fault_plan=plan, retry_policy=retry,
                fault_rng=fault_rng,
                fault_time_offset=float(1 + j))
            tapes.append(sim.build_tape(1))
            fault_args = sim.fault_kernel_args()
        assert fault_args is not None and fault_args["kind"] == "ge"
        windowed, consumed = replay_window_tapes(
            sized_catalog, frequencies, tapes, period_length=1.0,
            first_global_period=2, fault_args=fault_args)
        assert len(windowed) == 4
        assert all(c > 0 for c in consumed)
        for ref, win in zip(reference, windowed):
            assert_bit_identical(win, ref)
        probe = np.random.default_rng(152)
        probe.random(int(sum(consumed)))
        assert (fault_rng.bit_generator.state["state"]
                == probe.bit_generator.state["state"])

    def test_interleaved_resolutions_shared_stream(self,
                                                   sized_catalog):
        """:func:`resolve_tape_faults` interleaved with tape
        building keeps a *shared* workload/fault stream
        bit-identical to per-period reference runs — the batched
        manager's shared-rng contract."""
        from repro.sim.fastpath import ReplayArena, resolve_tape_faults
        frequencies = np.array([4.0, 1.5, 1.0, 2.0, 3.0])

        rng = np.random.default_rng(157)
        ref_plan = FaultPlan.bursty(0.3, 0.4)
        reference = []
        for j in range(3):
            sim = Simulation(sized_catalog, frequencies,
                             request_rate=25.0, rng=rng,
                             fault_plan=ref_plan,
                             fault_time_offset=float(j))
            reference.append(sim.run(1, engine="reference"))
        ref_state = rng.bit_generator.state

        rng = np.random.default_rng(157)
        plan = FaultPlan.bursty(0.3, 0.4)
        sizes = np.asarray(sized_catalog.sizes, dtype=float)
        tapes = []
        resolutions = []
        fault_args = None
        chain = None
        for j in range(3):
            sim = Simulation(sized_catalog, frequencies,
                             request_rate=25.0, rng=rng,
                             fault_plan=plan,
                             fault_time_offset=float(j))
            tapes.append(sim.build_tape(1))
            if fault_args is None:
                fault_args = sim.fault_kernel_args()
                chain = fault_args["model"].chain_states(
                    sized_catalog.n_elements)
            resolution, chain = resolve_tape_faults(
                tapes[-1], sizes, fault_args=fault_args,
                period_length=1.0, fault_clock_offset=float(j),
                initial_bad=chain)
            resolutions.append(resolution)
        windowed, _ = replay_window_tapes(
            sized_catalog, frequencies, tapes, period_length=1.0,
            first_global_period=1, fault_args=fault_args,
            resolutions=resolutions, arena=ReplayArena())
        for ref, win in zip(reference, windowed):
            assert_bit_identical(win, ref)
        assert rng.bit_generator.state == ref_state
        assert np.array_equal(
            chain, ref_plan.models[0].chain_states(
                sized_catalog.n_elements))

    def test_consumed_rewinds_fault_stream(self, sized_catalog):
        """Replaying ``consumed[:k]`` draws from the window-start
        state must land the fault rng exactly where k accepted
        periods left it — the rollback contract."""
        frequencies = np.array([4.0, 1.5, 1.0, 2.0, 3.0])
        plan = FaultPlan.iid(0.4)
        retry = RetryPolicy(max_retries=3)
        rng = np.random.default_rng(137)
        fault_rng = np.random.default_rng(138)
        start = fault_rng.bit_generator.state
        tapes = []
        fault_args = None
        for j in range(3):
            sim = Simulation(
                sized_catalog, frequencies, request_rate=25.0,
                rng=rng, fault_plan=plan, retry_policy=retry,
                fault_rng=fault_rng,
                fault_time_offset=float(j))
            tapes.append(sim.build_tape(1))
            fault_args = sim.fault_kernel_args()
        _, consumed = replay_window_tapes(
            sized_catalog, frequencies, tapes, period_length=1.0,
            first_global_period=1, fault_args=fault_args)
        # Accept two periods, roll back the third.
        fault_rng.bit_generator.state = start
        fault_rng.random(int(sum(consumed[:2])))
        partial = fault_rng.bit_generator.state["state"]
        # A fresh two-period run from the same start must agree.
        probe = np.random.default_rng(139)
        probe.bit_generator.state = start
        rng2 = np.random.default_rng(137)
        for j in range(2):
            sim = Simulation(
                sized_catalog, frequencies, request_rate=25.0,
                rng=rng2, fault_plan=plan, retry_policy=retry,
                fault_rng=probe, fault_time_offset=float(j))
            sim.run(1, engine="reference")
        assert probe.bit_generator.state["state"] == partial


class TestTelemetryParity:
    """Both engines must emit the same period series and gauges."""

    @staticmethod
    def _tape(preset_catalog, engine: str, n_periods: float):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        with obs.telemetry() as registry:
            run_engine(preset_catalog, plan.frequencies, engine=engine,
                       seed=83, n_periods=n_periods)
        periods = [{k: v for k, v in record.items()
                    if k not in ("seq", "t")}
                   for record in registry.events_of_kind("sim.period")]
        return periods, dict(registry.counters), dict(registry.gauges)

    @pytest.mark.parametrize("n_periods", [6.0, 4.5])
    def test_period_series_match(self, preset_catalog, n_periods):
        fast_periods, fast_counters, fast_gauges = self._tape(
            preset_catalog, "fastpath", n_periods)
        ref_periods, ref_counters, ref_gauges = self._tape(
            preset_catalog, "reference", n_periods)
        assert fast_periods == ref_periods
        assert fast_gauges == ref_gauges
        assert fast_counters.pop("sim.fastpath_runs") == 1.0
        # The dispatch-decision counters differ by design; every
        # other counter must agree bit for bit.
        assert fast_counters.pop("sim.engine.fastpath") == 1.0
        assert ref_counters.pop("sim.engine.reference") == 1.0
        assert fast_counters == ref_counters


class TestLedgerParity:
    """The freshness ledger extends the bit-identity contract: both
    engines feed the same per-element refresh/stale folds — the
    reference loop one scalar event at a time, the kernels in bulk
    through ``np.bincount``/``np.maximum.at`` — and must land on
    *equal* ledgers, overflow bucket and timestamp offsets included."""

    @staticmethod
    def _ledger(preset_catalog, engine: str, **kwargs):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        with obs.telemetry() as registry:
            run_engine(preset_catalog, plan.frequencies, engine=engine,
                       seed=83, n_periods=5.0, **kwargs)
        return registry.ledger

    def test_quiet_engines_agree(self, preset_catalog):
        fast = self._ledger(preset_catalog, "fastpath")
        reference = self._ledger(preset_catalog, "reference")
        assert len(fast) > 0
        assert fast == reference

    def test_capped_labels_agree(self, preset_catalog, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_MAX_ELEMENTS", "10")
        obs.refresh_from_env()
        try:
            fast = self._ledger(preset_catalog, "fastpath")
            reference = self._ledger(preset_catalog, "reference")
        finally:
            monkeypatch.delenv("REPRO_TELEMETRY_MAX_ELEMENTS")
            obs.refresh_from_env()
        assert fast == reference
        assert "overflow" in fast.entries
        assert all(isinstance(label, str) or label < 10
                   for label in fast.entries)

    def test_faulted_engines_agree(self, preset_catalog):
        kwargs = dict(fault_plan=FaultPlan.iid(0.3),
                      retry_policy=RetryPolicy(max_retries=2))
        fast = self._ledger(preset_catalog, "fastpath", **kwargs)
        reference = self._ledger(preset_catalog, "reference", **kwargs)
        assert fast == reference
        # Faults delay refreshes, so some elements must be stale.
        assert any(entry.is_stale for entry in fast.entries.values())

    def test_fault_time_offset_shifts_ledger_times(
            self, preset_catalog):
        kwargs = dict(fault_plan=FaultPlan.iid(0.3),
                      retry_policy=RetryPolicy(max_retries=2))
        base = self._ledger(preset_catalog, "fastpath", **kwargs)
        shifted_fast = self._ledger(preset_catalog, "fastpath",
                                    fault_time_offset=3.0, **kwargs)
        shifted_ref = self._ledger(preset_catalog, "reference",
                                   fault_time_offset=3.0, **kwargs)
        assert shifted_fast == shifted_ref
        for label, entry in base.entries.items():
            if entry.refreshed_at is None:
                continue
            shifted = shifted_fast.entries[label]
            assert shifted.refreshed_at == pytest.approx(
                entry.refreshed_at + 3.0)

    def test_fastpath_counter_increments(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        with obs.telemetry() as registry:
            run_engine(preset_catalog, plan.frequencies, engine="auto",
                       seed=89, n_periods=3.0)
        assert registry.counters.get("sim.fastpath_runs") == 1.0
        spans = [record["path"]
                 for record in registry.span_records()]
        assert "sim.run" in spans
