"""Retry policies: exponential backoff with decorrelated jitter.

Backoff code is where wall clocks and ambient randomness sneak into
otherwise reproducible systems, so this module obeys (and freshlint
rule FL010 enforces) two injection rules:

* all jitter draws come from an injected ``np.random.Generator``;
* all sleeping and deadline arithmetic goes through injected
  callables (a ``sleep`` function and a *monotonic* ``clock``) — the
  simulator passes virtual time, production passes ``time.sleep`` /
  ``time.monotonic``.

The delay sequence is AWS-style *decorrelated jitter*: each delay is
drawn uniformly from ``[base, 3·previous]`` and clamped to a cap,
which spreads concurrent retriers apart instead of synchronizing
them the way plain exponential backoff does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.errors import ValidationError

__all__ = ["RetryAdmissionGate", "RetryBudgetExhaustedError",
           "RetryPolicy", "execute_with_retry"]

T = TypeVar("T")


class RetryAdmissionGate:
    """A shared per-source token bucket that admits retries.

    Decorrelated jitter spreads retriers *in time*; it cannot bound
    how many of them a source absorbs at once.  When a relay
    recovers, every descendant edge's pending retry fires inside one
    backoff window — the classic herding storm.  This gate is the
    missing aggregate bound: one bucket shared by every channel
    polling the same source, consulted before each retry.  A retry
    that finds no token is suppressed (the sync gives up as if its
    retry budget were exhausted) instead of piling on.

    The bucket runs on *simulated* time passed in by callers (FL010:
    no ambient clock) and refills monotonically — out-of-order admit
    times, which backoff arithmetic produces freely, never rewind it,
    so admission decisions are deterministic for a fixed sequence of
    calls.

    Args:
        capacity: Maximum banked tokens (burst size), > 0
            (dimensionless count; one token admits one retry).
        refill_rate: Tokens restored per unit of simulated time, in
            tokens per period, > 0.
    """

    def __init__(self, capacity: float, refill_rate: float) -> None:
        if capacity <= 0.0:
            raise ValidationError(
                f"capacity must be > 0, got {capacity}")
        if refill_rate <= 0.0:
            raise ValidationError(
                f"refill_rate must be > 0, got {refill_rate}")
        self._capacity = float(capacity)
        self._refill_rate = float(refill_rate)
        self._tokens = float(capacity)
        self._clock = 0.0
        self._admitted = 0
        self._suppressed = 0

    @property
    def capacity(self) -> float:
        """Maximum banked tokens (dimensionless count)."""
        return self._capacity

    @property
    def refill_rate(self) -> float:
        """Refill rate, in tokens per period."""
        return self._refill_rate

    @property
    def admitted(self) -> int:
        """Retries admitted over the gate's lifetime."""
        return self._admitted

    @property
    def suppressed(self) -> int:
        """Retries refused over the gate's lifetime."""
        return self._suppressed

    def admit(self, time: float) -> bool:
        """Spend one token for a retry at simulated ``time``.

        Args:
            time: Simulated clock time of the retry attempt, in
                period units.  Times earlier than the bucket's
                high-water mark refill nothing (monotonic clock).

        Returns:
            True when a token was available (the retry may proceed),
            False when the retry must be suppressed.
        """
        if time > self._clock:
            self._tokens = min(
                self._capacity,
                self._tokens + (time - self._clock) * self._refill_rate)
            self._clock = time
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self._admitted += 1
            return True
        self._suppressed += 1
        return False


class RetryBudgetExhaustedError(Exception):
    """Every allowed attempt failed; carries the last error.

    Attributes:
        attempts: Total attempts made (initial try + retries).
    """

    def __init__(self, message: str, *, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with decorrelated jitter.

    Attributes:
        max_retries: Retries allowed after the initial attempt, >= 0.
        base_delay: Lower bound of every jittered delay, in the
            caller's clock units (period units in the simulator,
            seconds in production), > 0.
        max_delay: Upper clamp on any single delay, in the same clock
            units, >= ``base_delay``.
        admission_gate: Optional shared :class:`RetryAdmissionGate`
            consulted before every retry — one bucket per *source*,
            shared across the channels polling it, bounding the
            aggregate retry rate (herding control).  None disables
            gating.  The gate is mutable shared state: give each
            independent run its own instance (see
            ``ChaosScenario.retry_policy_for_run``).
    """

    max_retries: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.25
    admission_gate: RetryAdmissionGate | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay <= 0.0:
            raise ValidationError(
                f"base_delay must be > 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValidationError(
                f"max_delay must be >= base_delay, got "
                f"{self.max_delay} < {self.base_delay}")

    def next_delay(self, previous: float,
                   rng: np.random.Generator) -> float:
        """Draw the next backoff delay.

        Args:
            previous: The previous delay in clock units (pass 0.0
                before the first retry).
            rng: Seeded generator supplying the jitter.

        Returns:
            The next delay, in the caller's clock units, inside
            ``[base_delay, max_delay]``.
        """
        anchor = max(3.0 * previous, self.base_delay)
        drawn = float(rng.uniform(self.base_delay, anchor))
        return min(drawn, self.max_delay)

    def delays(self, rng: np.random.Generator) -> list[float]:
        """The full delay sequence for one operation's retries.

        Args:
            rng: Seeded generator supplying the jitter.

        Returns:
            ``max_retries`` delays in clock units, in order.
        """
        out: list[float] = []
        previous = 0.0
        for _ in range(self.max_retries):
            previous = self.next_delay(previous, rng)
            out.append(previous)
        return out


def execute_with_retry(operation: Callable[[], T], *,
                       policy: RetryPolicy,
                       rng: np.random.Generator,
                       sleep: Callable[[float], None],
                       clock: Callable[[], float],
                       deadline: float | None = None,
                       retryable: tuple[type[BaseException], ...] =
                       (Exception,)) -> T:
    """Run ``operation`` under a retry policy with injected effects.

    The production-side counterpart of the simulator's
    :class:`~repro.faults.channel.SyncChannel` retry loop.  Both the
    sleeper and the clock are injected so callers control real time
    (``time.sleep`` / ``time.monotonic``) and tests control virtual
    time; per FL010 neither is read ambiently here.

    Args:
        operation: The zero-argument callable to attempt.
        policy: Backoff policy bounding retries and delays.
        rng: Seeded generator supplying the jitter.
        sleep: Called with each backoff delay, in clock units.
        clock: Monotonic clock; only differences are used, in the
            same clock units as the delays.
        deadline: Optional total budget in clock units measured from
            the first attempt; no retry starts past it.
        retryable: Exception types that trigger a retry; anything
            else propagates immediately.

    Returns:
        The first successful ``operation()`` result.

    Raises:
        RetryBudgetExhaustedError: When every allowed attempt failed;
            the final exception is attached as ``__cause__``.
    """
    started = clock()
    previous = 0.0
    attempts = 0
    while True:
        attempts += 1
        try:
            return operation()
        except retryable as error:
            if attempts > policy.max_retries:
                raise RetryBudgetExhaustedError(
                    f"operation failed after {attempts} attempts",
                    attempts=attempts) from error
            if policy.admission_gate is not None and \
                    not policy.admission_gate.admit(clock()):
                raise RetryBudgetExhaustedError(
                    f"retry suppressed by admission gate after "
                    f"{attempts} attempts", attempts=attempts) from error
            previous = policy.next_delay(previous, rng)
            if deadline is not None and \
                    (clock() - started) + previous > deadline:
                raise RetryBudgetExhaustedError(
                    f"retry deadline exhausted after {attempts} "
                    "attempts", attempts=attempts) from error
            sleep(previous)
