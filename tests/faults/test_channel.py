"""Tests for the retrying sync channel and fault determinism.

Covers the channel's ledger semantics directly, then the two
determinism guarantees the subsystem makes through the simulator:
same seed + same plan replays a byte-identical fault trace, and a
quiet plan is numerically indistinguishable from no plan at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contracts import contracts
from repro.core.freshener import PerceivedFreshener
from repro.errors import SimulationError, ValidationError
from repro.faults.breaker import CircuitBreaker
from repro.faults.channel import SyncChannel
from repro.faults.model import (FaultPlan, IIDFaultModel, OutageWindow,
                                PollOutcome)
from repro.faults.retry import RetryPolicy
from repro.sim.mirror import Mirror
from repro.sim.simulation import Simulation
from repro.sim.source import Source
from repro.workloads.presets import ExperimentSetup, build_catalog


def make_mirror(n: int = 4, sizes: np.ndarray | None = None) -> Mirror:
    return Mirror(Source(n), sizes=sizes)


FAULTY_SETUP = ExperimentSetup(n_objects=30, updates_per_period=60.0,
                               syncs_per_period=15.0, theta=1.0,
                               update_std_dev=1.0)


def faulty_simulation(seed: int, plan: FaultPlan | None, *,
                      record_trace: bool = False,
                      retry_policy: RetryPolicy | None = None,
                      breaker: CircuitBreaker | None = None):
    catalog = build_catalog(FAULTY_SETUP, seed=7)
    frequencies = PerceivedFreshener().plan(catalog, 15.0).frequencies
    return Simulation(catalog, frequencies, request_rate=120.0,
                      rng=np.random.default_rng(seed),
                      fault_plan=plan, retry_policy=retry_policy,
                      breaker=breaker,
                      record_fault_trace=record_trace)


class TestChannelLedger:
    def test_validation(self):
        mirror = make_mirror(3)
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            SyncChannel(mirror, plan=FaultPlan.quiet(), rng=rng,
                        shard_of=np.zeros(2, dtype=np.int64))
        with pytest.raises(ValidationError):
            SyncChannel(mirror, plan=FaultPlan.quiet(), rng=rng,
                        breaker=CircuitBreaker(2),
                        shard_of=np.array([0, 1, 2]))
        with pytest.raises(ValidationError):
            SyncChannel(mirror, plan=FaultPlan.quiet(), rng=rng,
                        bandwidth_budget=0.0)

    def test_failed_transfers_burn_budget_but_unreachable_is_free(self):
        mirror = make_mirror(2)
        channel = SyncChannel(
            mirror, plan=FaultPlan(
                models=(IIDFaultModel(1.0),),
                outages=(OutageWindow(start=0.0, end=10.0,
                                      elements=(1,)),)),
            rng=np.random.default_rng(1))
        errored = channel.sync(0, 0.1)
        assert errored.outcome is PollOutcome.ERROR
        assert errored.bandwidth == 1.0
        dead = channel.sync(1, 0.2)
        assert dead.outcome is PollOutcome.UNREACHABLE
        assert dead.bandwidth == 0.0
        assert channel.attempted_bandwidth == 1.0
        assert channel.failed_polls == 2
        assert channel.unreachable_polls == 1
        assert list(channel.unreachable_poll_counts()) == [0, 1]

    def test_saturated_period_denies_polls_until_it_rolls(self):
        mirror = make_mirror(1)
        channel = SyncChannel(mirror, plan=FaultPlan.iid(0.0),
                              rng=np.random.default_rng(2),
                              bandwidth_budget=2.0, period_length=1.0)
        assert channel.sync(0, 0.1).outcome is PollOutcome.OK
        assert channel.sync(0, 0.4).outcome is PollOutcome.OK
        # Third poll overdraws the 2-unit period ledger: denied
        # without touching the wire.
        denied = channel.sync(0, 0.7)
        assert denied.outcome is PollOutcome.UNREACHABLE
        assert denied.attempts == 0
        assert channel.denied_polls == 1
        # The next period starts a fresh ledger.
        assert channel.sync(0, 1.1).outcome is PollOutcome.OK

    def test_retries_are_charged_and_capped_by_the_ledger(self):
        mirror = make_mirror(1)
        channel = SyncChannel(
            mirror, plan=FaultPlan.iid(1.0),
            rng=np.random.default_rng(3),
            retry_policy=RetryPolicy(max_retries=10),
            bandwidth_budget=3.0, period_length=1.0)
        report = channel.sync(0, 0.0)
        assert report.outcome is PollOutcome.ERROR
        # 3-unit ledger, 1-unit element: exactly three attempts fit.
        assert report.attempts == 3
        assert report.retries == 2
        assert channel.denied_retries == 1
        assert channel.attempted_bandwidth == 3.0

    def test_open_breaker_fast_fails_without_attempts(self):
        mirror = make_mirror(2)
        breaker = CircuitBreaker(2, failure_threshold=1, cooldown=5.0)
        channel = SyncChannel(mirror, plan=FaultPlan.iid(1.0),
                              rng=np.random.default_rng(4),
                              breaker=breaker)
        channel.sync(0, 0.1)              # fails, trips shard 0
        skipped = channel.sync(0, 0.2)
        assert skipped.attempts == 0
        assert channel.breaker_skips == 1
        assert list(channel.unreachable_mask()) == [True, False]
        # The sibling shard is unaffected.
        assert channel.sync(1, 0.3).attempts == 1

    def test_trace_requires_opt_in(self):
        channel = SyncChannel(make_mirror(1), plan=FaultPlan.iid(0.5),
                              rng=np.random.default_rng(5))
        with pytest.raises(SimulationError):
            channel.trace()


class TestDeterminism:
    def test_same_seed_and_plan_replay_identical_trace_and_result(self):
        def run(seed: int):
            return faulty_simulation(
                seed, FaultPlan(models=(IIDFaultModel(0.25),)),
                record_trace=True,
                retry_policy=RetryPolicy(max_retries=2)).run(6)

        a, b = run(11), run(11)
        assert a.fault_trace == b.fault_trace
        assert a.n_updates == b.n_updates
        assert a.attempted_polls == b.attempted_polls
        assert a.failed_polls == b.failed_polls
        assert a.retries == b.retries
        assert a.monitored_perceived_freshness == \
            b.monitored_perceived_freshness
        assert np.array_equal(a.element_time_freshness,
                              b.element_time_freshness)
        assert run(12).fault_trace != a.fault_trace

    def test_quiet_plan_is_bit_identical_to_no_plan(self):
        bare = faulty_simulation(21, None).run(6)
        quiet = faulty_simulation(21, FaultPlan.quiet()).run(6)
        assert quiet.n_updates == bare.n_updates
        assert quiet.n_syncs == bare.n_syncs
        assert quiet.monitored_perceived_freshness == \
            bare.monitored_perceived_freshness
        assert np.array_equal(quiet.element_time_freshness,
                              bare.element_time_freshness)
        assert np.array_equal(quiet.access_counts, bare.access_counts)
        assert quiet.failed_polls == 0
        assert quiet.fault_trace is None

    def test_dedicated_fault_rng_keeps_workload_streams_paired(self):
        """Common random numbers: with a dedicated fault generator the
        update/access draws are identical whatever the faults do."""
        def run(plan: FaultPlan | None):
            catalog = build_catalog(FAULTY_SETUP, seed=7)
            freqs = PerceivedFreshener().plan(catalog,
                                              15.0).frequencies
            rng = np.random.default_rng(31)
            fault_rng = rng.spawn(1)[0]
            return Simulation(catalog, freqs, request_rate=120.0,
                              rng=rng, fault_plan=plan,
                              fault_rng=fault_rng).run(6)

        noisy = run(FaultPlan.iid(0.4))
        clean = run(None)
        assert noisy.n_updates == clean.n_updates
        assert np.array_equal(noisy.access_counts,
                              clean.access_counts)
        assert noisy.failed_polls > 0


class TestAttemptBudgetContract:
    def test_faulty_run_respects_the_attempt_budget(self):
        with contracts():
            result = faulty_simulation(
                41, FaultPlan.iid(0.3),
                retry_policy=RetryPolicy(max_retries=3)).run(8)
        assert result.failed_polls > 0
        # The ledger itself enforces what the contract re-checks:
        # attempts never outspend B per period (plus granularity).
        planned = float(result.catalog.sizes @ result.frequencies)
        slack = float(result.catalog.sizes.max())
        assert result.attempted_bandwidth <= \
            planned * 8.0 + slack * result.catalog.n_elements
