"""FL005 — no in-place mutation of ndarray parameters in the core.

The numeric core (``core/``, ``numerics/``) receives caller-owned
arrays — catalog columns, frequency vectors, partition labels — and
callers (the incremental solver, the simulator, the benchmark harness)
rely on them being unchanged across a solve.  A stray ``f[mask] = 0``
on a parameter corrupts the caller's state one frame up.

The rule is aliasing-aware: rebinding a parameter to a *copy*
(``x = x.copy()``, ``np.zeros_like``, ``np.array``, ``.astype``)
launders it, but rebinding through ``np.asarray`` / ``np.asanyarray``
/ ``np.ascontiguousarray`` / ``np.atleast_1d`` does **not** — those
return the *same buffer* when the input already has the right dtype,
which is exactly the common case here (float64 in, float64 out), so
mutating the result still mutates the caller's array.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule, function_params

__all__ = ["NdarrayParamMutation"]

#: Call names whose result is a fresh buffer (safe to mutate).
_COPYING_CALLS = {
    "copy", "array", "zeros_like", "empty_like", "ones_like",
    "full_like", "astype", "tolist", "repeat", "tile", "concatenate",
    "column_stack", "stack", "where", "clip", "sort_values",
}

#: Call names that may alias their argument (taint survives).
_ALIASING_CALLS = {
    "asarray", "asanyarray", "ascontiguousarray", "asfortranarray",
    "atleast_1d", "atleast_2d", "ravel", "reshape", "view", "squeeze",
}

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = {
    "fill", "sort", "partition", "put", "itemset", "resize",
    "setfield", "byteswap",
}

#: numpy module-level functions whose *first argument* is mutated.
_MUTATING_FIRST_ARG = {"copyto", "put", "place", "putmask", "fill_diagonal"}


def _call_basename(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` under nested subscripts/attributes, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _FunctionAuditor(ast.NodeVisitor):
    """Track tainted (caller-owned) names through one function body."""

    def __init__(self, rule: "NdarrayParamMutation",
                 context: ModuleContext,
                 node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.rule = rule
        self.context = context
        self.function = node
        self.tainted = set(function_params(node))
        self.violations: list[Violation] = []

    # -- taint bookkeeping -------------------------------------------------

    def _value_launders(self, value: ast.expr) -> bool:
        """True if assigning ``value`` yields a caller-independent object."""
        if isinstance(value, ast.Call):
            name = _call_basename(value)
            if name in _ALIASING_CALLS:
                return False
            return True  # copies, constructors, arbitrary calls
        if isinstance(value, ast.Name):
            return value.id not in self.tainted
        # Literals, arithmetic (creates a new array), comprehensions...
        return not isinstance(value, (ast.Subscript, ast.Attribute,
                                      ast.IfExp, ast.Starred))

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in self.tainted:
                if self._value_launders(node.value):
                    self.tainted.discard(target.id)
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                root = _root_name(target)
                if root in self.tainted:
                    self._report(target,
                                 f"in-place store into parameter `{root}`")

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        target = node.target
        if isinstance(target, ast.Name) and target.id in self.tainted \
                and node.value is not None \
                and self._value_launders(node.value):
            self.tainted.discard(target.id)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if root in self.tainted:
                self._report(target,
                             f"in-place store into parameter `{root}`")

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        root = _root_name(node.target)
        if root in self.tainted:
            self._report(node,
                         f"augmented assignment mutates parameter "
                         f"`{root}` in place (ndarray += writes through "
                         "the caller's buffer)")

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if func.attr in _MUTATING_METHODS \
                    and isinstance(receiver, ast.Name) \
                    and receiver.id in self.tainted:
                self._report(node,
                             f"`{receiver.id}.{func.attr}()` mutates the "
                             "parameter in place")
                return
            # ufunc.at(param, ...) and np.copyto(param, ...) style.
            if func.attr == "at" and node.args:
                root = _root_name(node.args[0])
                if root in self.tainted:
                    self._report(node,
                                 f"ufunc .at() scatters into parameter "
                                 f"`{root}` in place")
                return
            if func.attr in _MUTATING_FIRST_ARG and node.args:
                root = _root_name(node.args[0])
                if root in self.tainted:
                    self._report(node,
                                 f"np.{func.attr}() writes into parameter "
                                 f"`{root}` in place")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.function:
            return  # nested defs are audited separately
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _report(self, node: ast.AST, detail: str) -> None:
        self.violations.append(self.rule.violation(
            self.context, node,
            f"{detail}; callers own their arrays - work on a copy "
            "(note: np.asarray aliases, it does not copy)"))


class NdarrayParamMutation(Rule):
    """Ban in-place mutation of parameters in ``core/``/``numerics/``."""

    code = "FL005"
    name = "ndarray-param-mutation"
    summary = ("no in-place mutation of (possibly caller-owned) "
               "parameters in src/repro/core and src/repro/numerics")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_solver_path:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                auditor = _FunctionAuditor(self, context, node)
                auditor.visit(node)
                yield from auditor.violations
