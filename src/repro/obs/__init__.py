"""freshtrace — zero-overhead observability for the freshening stack.

Process-local metrics (counters, gauges, fixed-bucket histograms),
nested wall-time spans, and a structured event tape, gated behind the
``REPRO_TELEMETRY`` environment variable exactly like the runtime
contracts: when disabled every instrumentation point costs one
attribute load and one branch.

* :mod:`repro.obs.registry` — the :class:`MetricsRegistry`, the
  process gate, and the facade the hot paths call.
* :mod:`repro.obs.export` — the JSONL event tape, the Prometheus text
  format, and the human summary table.

See docs/OBSERVABILITY.md for the metric name catalogue and span
hierarchy.
"""

from repro.obs.export import (
    prometheus_text,
    read_jsonl,
    summary_text,
    write_jsonl,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_ELEMENTS,
    Histogram,
    MetricsRegistry,
    SpanHandle,
    counter_add,
    disable_telemetry,
    element_label,
    enable_telemetry,
    event,
    gauge_set,
    get_registry,
    max_element_labels,
    observe,
    refresh_from_env,
    reset_telemetry,
    span,
    telemetry,
    telemetry_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_ELEMENTS",
    "Histogram",
    "MetricsRegistry",
    "SpanHandle",
    "counter_add",
    "disable_telemetry",
    "element_label",
    "enable_telemetry",
    "event",
    "gauge_set",
    "get_registry",
    "max_element_labels",
    "observe",
    "prometheus_text",
    "read_jsonl",
    "refresh_from_env",
    "reset_telemetry",
    "span",
    "summary_text",
    "telemetry",
    "telemetry_enabled",
    "write_jsonl",
]
