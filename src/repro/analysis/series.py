"""Result containers for experiment sweeps.

Benchmarks, the CLI and the examples all consume the same shapes: a
:class:`Series` is one labeled curve; a :class:`SweepResult` is a
named figure's worth of curves sharing an x-axis meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError

__all__ = ["Series", "SweepResult"]


@dataclass(frozen=True)
class Series:
    """One labeled curve.

    Attributes:
        label: Legend entry (e.g. ``"PF_PARTITIONING"``).
        x: Abscissae.
        y: Ordinates, same length as ``x``.
    """

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.ndim != 1 or y.ndim != 1:
            raise ValidationError("series data must be 1-D")
        if x.shape != y.shape:
            raise ValidationError(
                f"x {x.shape} and y {y.shape} must have equal length")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __len__(self) -> int:
        return int(self.x.shape[0])


@dataclass(frozen=True)
class SweepResult:
    """A named experiment's curves.

    Attributes:
        name: Figure/table identifier (e.g. ``"figure5a"``).
        x_label: Meaning of the shared x-axis.
        y_label: Meaning of the y-axis.
        series: The curves.
        notes: Free-form provenance (parameters, seed, ...).
    """

    name: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: dict = field(default_factory=dict)

    def get(self, label: str) -> Series:
        """Look up a curve by its label.

        Args:
            label: The legend entry to find.

        Returns:
            The matching :class:`Series`.

        Raises:
            KeyError: If no curve has that label.
        """
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(
            f"no series {label!r} in {self.name}; have "
            f"{[series.label for series in self.series]}")

    @property
    def labels(self) -> list[str]:
        """All curve labels, in order."""
        return [series.label for series in self.series]
