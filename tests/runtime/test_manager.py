"""Tests for repro.runtime.manager — the adaptive loop."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.freshener import PartitionedFreshener, PerceivedFreshener
from repro.errors import ValidationError
from repro.faults.model import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.runtime.manager import AdaptiveMirrorManager
from repro.workloads.presets import ExperimentSetup, build_catalog

SETUP = ExperimentSetup(n_objects=80, updates_per_period=160.0,
                        syncs_per_period=40.0, theta=1.2,
                        update_std_dev=1.0)


@pytest.fixture
def world():
    return build_catalog(SETUP, alignment="shuffled", seed=4)


def make_manager(world, **kwargs):
    defaults = dict(request_rate=1500.0,
                    rng=np.random.default_rng(0))
    defaults.update(kwargs)
    return AdaptiveMirrorManager(world, SETUP.syncs_per_period,
                                 **defaults)


class TestConstruction:
    def test_validation(self, world):
        with pytest.raises(ValidationError):
            AdaptiveMirrorManager(world, 0.0, request_rate=10.0,
                                  rng=np.random.default_rng(0))
        with pytest.raises(ValidationError):
            make_manager(world, replan_divergence=1.5)
        with pytest.raises(ValidationError):
            make_manager(world, replan_every=-1)

    def test_no_schedule_before_first_period(self, world):
        manager = make_manager(world)
        assert manager.current_frequencies is None


class TestLoop:
    def test_first_period_always_replans(self, world):
        manager = make_manager(world)
        report = manager.run_period(1)
        assert report.replanned
        assert manager.current_frequencies is not None

    def test_learning_improves_achieved_pf(self, world):
        manager = make_manager(world)
        reports = manager.run(6)
        assert reports[-1].achieved_pf > reports[0].achieved_pf + 0.05

    def test_converges_near_oracle(self, world):
        manager = make_manager(world)
        reports = manager.run(10)
        oracle = PerceivedFreshener().plan(
            world, SETUP.syncs_per_period).perceived_freshness
        assert reports[-1].achieved_pf > 0.85 * oracle

    def test_never_reads_true_profile(self, world):
        """The manager's believed profile must come from observations:
        before any period it is uniform, not the true Zipf."""
        manager = make_manager(world)
        assert np.allclose(manager.beliefs.believed_profile(),
                           1.0 / world.n_elements)

    def test_replan_cadence(self, world):
        manager = make_manager(world, replan_divergence=1.0,
                               replan_every=2)
        reports = manager.run(6)
        # Period 1 plans; divergence never triggers (threshold 1.0);
        # cadence forces replans at periods 3 and 5.
        assert [r.replanned for r in reports] == [True, False, True,
                                                  False, True, False]

    def test_divergence_trigger(self, world):
        manager = make_manager(world, replan_divergence=0.01)
        reports = manager.run(4)
        # With a hair trigger the early drift always replans.
        assert sum(r.replanned for r in reports) >= 3

    def test_reports_well_formed(self, world):
        manager = make_manager(world)
        reports = manager.run(3)
        for index, report in enumerate(reports, start=1):
            assert report.period == index
            assert 0.0 <= report.achieved_pf <= 1.0
            assert 0.0 <= report.monitored_pf <= 1.0
            assert 0.0 <= report.wasted_polls <= 1.0
            assert report.n_accesses > 0

    def test_run_validates(self, world):
        manager = make_manager(world)
        with pytest.raises(ValidationError):
            manager.run(0)

    def test_partitioned_planner_supported(self, world):
        manager = make_manager(
            world, freshener=PartitionedFreshener(10))
        reports = manager.run(5)
        assert reports[-1].achieved_pf > reports[0].achieved_pf

    def test_deterministic_given_seed(self, world):
        first = make_manager(world).run(4)
        second = make_manager(world).run(4)
        assert [r.achieved_pf for r in first] == \
            [r.achieved_pf for r in second]


class TestWorldDrift:
    def test_replace_world_validates(self, world):
        manager = make_manager(world)
        tiny = build_catalog(
            ExperimentSetup(n_objects=10, updates_per_period=20.0,
                            syncs_per_period=5.0, theta=1.0,
                            update_std_dev=1.0), seed=0)
        with pytest.raises(ValidationError):
            manager.replace_world(tiny)

    def test_recovers_after_interest_flip(self, world):
        manager = make_manager(world, replan_divergence=0.03)
        manager.run(8)
        drifted = world.with_profile(
            world.access_probabilities[::-1].copy())
        manager.replace_world(drifted)
        crash = manager.run_period(9)
        recovery = manager.run(14)
        assert recovery[-1].achieved_pf > crash.achieved_pf + 0.1


class TestRateDrift:
    def test_rate_decay_tracks_drifting_change_rates(self, world):
        """When the world's change rates shift, a decaying belief
        state recovers faster than a never-forgetting one."""
        from repro.runtime.beliefs import BeliefState

        def run_with(rate_decay):
            beliefs = BeliefState(
                world.n_elements, sizes=world.sizes,
                prior_rate=float(world.change_rates.mean()),
                rate_decay=rate_decay)
            manager = make_manager(world, beliefs=beliefs,
                                   replan_divergence=0.03)
            manager.run(10)
            # The world's volatility landscape reverses.
            drifted = world.with_change_rates(
                world.change_rates[::-1].copy())
            manager.replace_world(drifted)
            reports = manager.run(15)
            estimates = manager.beliefs.believed_rates()
            error = float(np.abs(estimates
                                 - drifted.change_rates).mean())
            return reports[-1].achieved_pf, error

        _, decayed_error = run_with(0.6)
        _, frozen_error = run_with(1.0)
        assert decayed_error < frozen_error

    def test_rate_decay_validated(self):
        from repro.errors import ValidationError
        from repro.runtime.beliefs import BeliefState
        import pytest as _pytest
        with _pytest.raises(ValidationError):
            BeliefState(2, rate_decay=0.0)
        with _pytest.raises(ValidationError):
            BeliefState(2, rate_decay=1.5)


class TestBatchedWindows:
    """run(batch=...) must be bit-identical to the sequential loop."""

    @staticmethod
    def _reports_equal(sequential, batched):
        assert len(sequential) == len(batched)
        for seq, bat in zip(sequential, batched):
            assert dataclasses.asdict(seq) == dataclasses.asdict(bat)

    def test_fault_free_batched_matches_sequential(self, world):
        sequential = make_manager(world, replan_every=3).run(
            12, batch=1)
        batched = make_manager(world, replan_every=3).run(12)
        self._reports_equal(sequential, batched)

    def test_iid_batched_matches_sequential(self, world):
        def runner(batch):
            return make_manager(
                world, fault_plan=FaultPlan.iid(0.25),
                retry_policy=RetryPolicy(max_retries=3),
                replan_every=4).run(12, batch=batch)

        self._reports_equal(runner(1), runner(None))

    def test_drift_rollback_matches_sequential(self, world):
        """Drift-triggered mid-window replans exercise the rollback
        path: the rewound rng must replay the discarded periods
        exactly as the sequential loop first ran them."""
        def runner(batch):
            return make_manager(
                world, fault_plan=FaultPlan.iid(0.25),
                retry_policy=RetryPolicy(max_retries=3),
                replan_every=0, replan_divergence=0.03).run(
                14, batch=batch)

        sequential = runner(1)
        batched = runner(8)
        assert any(r.replanned for r in sequential[1:])
        self._reports_equal(sequential, batched)

    def test_ge_batched_matches_sequential(self, world):
        """Gilbert–Elliott plans batch through the scan kernel now;
        the windowed run must stay bit-identical, chain threading
        included."""
        from repro.faults.model import GilbertElliottFaultModel

        def runner(batch):
            return make_manager(
                world,
                fault_plan=FaultPlan(
                    models=(GilbertElliottFaultModel(0.2, 0.5),)),
                retry_policy=RetryPolicy(max_retries=2),
                replan_every=4).run(12, batch=batch)

        self._reports_equal(runner(1), runner(None))

    @pytest.mark.parametrize("kind", ["iid", "ge"])
    def test_shared_fault_rng_batched_matches_sequential(
            self, world, kind):
        """share_fault_rng=True interleaves workload and fault draws
        on one stream; the batched loop resolves each period's
        faults right after its tape, so it must still match."""
        from repro.faults.model import GilbertElliottFaultModel

        def plan():
            if kind == "iid":
                return FaultPlan.iid(0.25)
            return FaultPlan(
                models=(GilbertElliottFaultModel(0.2, 0.5),))

        def runner(batch):
            return make_manager(
                world, fault_plan=plan(), share_fault_rng=True,
                replan_every=4).run(12, batch=batch)

        self._reports_equal(runner(1), runner(None))

    def test_ge_drift_rollback_matches_sequential(self, world):
        """A mid-window drift replan on a GE plan must restore the
        fault stream *and* the chain-state snapshot before re-running
        the tail."""
        from repro.faults.model import GilbertElliottFaultModel

        def runner(batch):
            return make_manager(
                world,
                fault_plan=FaultPlan(
                    models=(GilbertElliottFaultModel(0.25, 0.4),)),
                retry_policy=RetryPolicy(max_retries=2),
                replan_every=0, replan_divergence=0.03).run(
                14, batch=batch)

        sequential = runner(1)
        batched = runner(8)
        assert any(r.replanned for r in sequential[1:])
        self._reports_equal(sequential, batched)

    def test_gated_retries_fall_back_to_sequential(self, world):
        """A shared admission gate keeps the loop per-period (its
        token bucket is cross-attempt stateful) — and reports must
        still agree because batch collapses to the sequential
        path."""
        from repro.faults.retry import RetryAdmissionGate

        def runner(batch):
            manager = make_manager(
                world, fault_plan=FaultPlan.iid(0.25),
                retry_policy=RetryPolicy(
                    max_retries=2,
                    admission_gate=RetryAdmissionGate(
                        capacity=4.0, refill_rate=2.0)),
                replan_every=4)
            assert not manager._batchable()
            return manager.run(6, batch=batch)

        self._reports_equal(runner(1), runner(4))

    def test_batch_validated(self, world):
        with pytest.raises(ValidationError):
            make_manager(world).run(3, batch=0)

class TestSlabGroups:
    """Window batching split into slab groups stays bit-identical."""

    @staticmethod
    def _reports_equal(left, right):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    @pytest.mark.parametrize("kind", ["quiet", "iid", "ge"])
    def test_slabbed_window_matches_unsplit(self, world, kind):
        """Splitting a window's kernel calls into 2-period slabs must
        not change any report: tapes are drawn in period order either
        way, and per-period results do not depend on the grouping."""
        from repro.faults.model import GilbertElliottFaultModel

        def runner(slab_periods):
            kwargs = {}
            if kind == "iid":
                kwargs = dict(fault_plan=FaultPlan.iid(0.25),
                              retry_policy=RetryPolicy(max_retries=3))
            elif kind == "ge":
                kwargs = dict(
                    fault_plan=FaultPlan(
                        models=(GilbertElliottFaultModel(0.2, 0.5),)),
                    retry_policy=RetryPolicy(max_retries=2))
            return make_manager(world, replan_every=4, **kwargs).run(
                12, batch=4, slab_periods=slab_periods)

        unsplit = runner(None)
        self._reports_equal(unsplit, runner(2))
        self._reports_equal(unsplit, runner(1))

    def test_slabbed_drift_rollback_matches_sequential(self, world):
        """A drift replan landing mid-slab-group must roll the tail
        back exactly as the unsplit window does."""
        def runner(batch, slab_periods=None):
            return make_manager(
                world, fault_plan=FaultPlan.iid(0.25),
                retry_policy=RetryPolicy(max_retries=3),
                replan_every=0, replan_divergence=0.03).run(
                14, batch=batch, slab_periods=slab_periods)

        sequential = runner(1)
        slabbed = runner(8, slab_periods=3)
        assert any(r.replanned for r in sequential[1:])
        self._reports_equal(sequential, slabbed)

    def test_slab_periods_validated(self, world):
        with pytest.raises(ValidationError):
            make_manager(world).run(3, slab_periods=0)
