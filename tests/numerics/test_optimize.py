"""Tests for repro.numerics.optimize (the IMSL-substitute NLP path)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleProblemError, ValidationError
from repro.numerics.optimize import (
    ProjectedGradientSolver,
    project_onto_scaled_simplex,
)


class TestProjection:
    def test_feasible_point_costs_budget(self):
        y = np.array([3.0, -1.0, 0.5])
        costs = np.array([1.0, 2.0, 0.5])
        x = project_onto_scaled_simplex(y, costs, budget=2.0)
        assert (x >= 0.0).all()
        assert float(costs @ x) == pytest.approx(2.0, rel=1e-9)

    def test_projection_is_idempotent(self):
        y = np.array([5.0, 0.0, 1.0])
        costs = np.ones(3)
        x = project_onto_scaled_simplex(y, costs, budget=3.0)
        again = project_onto_scaled_simplex(x, costs, budget=3.0)
        assert np.allclose(x, again, atol=1e-8)

    def test_uniform_point_projects_to_itself(self):
        x = np.full(4, 0.25)
        projected = project_onto_scaled_simplex(x, np.ones(4), budget=1.0)
        assert np.allclose(projected, x, atol=1e-9)

    def test_matches_known_simplex_projection(self):
        # Projection of (1, 0.5) onto the probability simplex is
        # (0.75, 0.25): shift both by tau = 0.25.
        x = project_onto_scaled_simplex(np.array([1.0, 0.5]), np.ones(2),
                                        budget=1.0)
        assert x == pytest.approx([0.75, 0.25], abs=1e-8)

    def test_negative_coordinates_clipped(self):
        x = project_onto_scaled_simplex(np.array([10.0, -50.0]),
                                        np.ones(2), budget=1.0)
        assert x == pytest.approx([1.0, 0.0], abs=1e-8)

    def test_rejects_bad_budget_and_costs(self):
        with pytest.raises(InfeasibleProblemError):
            project_onto_scaled_simplex(np.ones(2), np.ones(2), budget=0.0)
        with pytest.raises(ValidationError):
            project_onto_scaled_simplex(np.ones(2),
                                        np.array([1.0, 0.0]), budget=1.0)

    @given(st.integers(min_value=1, max_value=12),
           st.floats(min_value=0.1, max_value=20.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_projection_feasibility_random(self, n, budget, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(scale=3.0, size=n)
        costs = rng.uniform(0.2, 4.0, size=n)
        x = project_onto_scaled_simplex(y, costs, budget)
        assert (x >= 0.0).all()
        assert float(costs @ x) == pytest.approx(budget, rel=1e-6)

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_projection_is_nearest_feasible_point(self, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(scale=2.0, size=n)
        costs = rng.uniform(0.5, 2.0, size=n)
        budget = 3.0
        x = project_onto_scaled_simplex(y, costs, budget)
        # Any random feasible point must be at least as far from y.
        raw = rng.uniform(0.0, 1.0, size=n)
        feasible = raw * (budget / float(costs @ raw))
        assert (np.linalg.norm(x - y)
                <= np.linalg.norm(feasible - y) + 1e-6)


class TestProjectedGradientSolver:
    def test_solves_separable_quadratic(self):
        # max 4a - a^2 + 2b - b^2 s.t. a + b = 1:  a - b = 1 => (1, 0).
        def objective(x):
            value = 4.0 * x[0] - x[0] ** 2 + 2.0 * x[1] - x[1] ** 2
            grad = np.array([4.0 - 2.0 * x[0], 2.0 - 2.0 * x[1]])
            return float(value), grad

        solver = ProjectedGradientSolver(objective)
        result = solver.solve(np.ones(2), budget=1.0)
        assert result.x == pytest.approx([1.0, 0.0], abs=1e-5)
        assert result.converged

    def test_interior_optimum(self):
        # max -(a-0.3)^2 - (b-0.7)^2 s.t. a + b = 1: (0.3, 0.7).
        def objective(x):
            value = -((x[0] - 0.3) ** 2) - ((x[1] - 0.7) ** 2)
            grad = np.array([-2.0 * (x[0] - 0.3), -2.0 * (x[1] - 0.7)])
            return float(value), grad

        result = ProjectedGradientSolver(objective).solve(np.ones(2), 1.0)
        assert result.x == pytest.approx([0.3, 0.7], abs=1e-5)

    def test_respects_costs(self):
        # max log-like utility with uneven costs; optimum must be
        # feasible and improve on the uniform start.
        def objective(x):
            value = float(np.sum(np.log1p(x)))
            grad = 1.0 / (1.0 + x)
            return value, grad

        costs = np.array([1.0, 3.0])
        result = ProjectedGradientSolver(objective).solve(costs, 2.0)
        assert float(costs @ result.x) == pytest.approx(2.0, rel=1e-6)
        uniform = np.full(2, 2.0 / costs.sum())
        assert result.value >= objective(uniform)[0] - 1e-12

    def test_custom_start_point(self):
        def objective(x):
            return float(-np.sum(x ** 2)), -2.0 * x

        solver = ProjectedGradientSolver(objective)
        result = solver.solve(np.ones(3), 1.0,
                              x0=np.array([1.0, 0.0, 0.0]))
        assert result.x == pytest.approx(np.full(3, 1.0 / 3.0), abs=1e-4)

    def test_rejects_empty_problem(self):
        solver = ProjectedGradientSolver(lambda x: (0.0, x))
        with pytest.raises(ValidationError):
            solver.solve(np.empty(0), 1.0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValidationError):
            ProjectedGradientSolver(lambda x: (0.0, x), max_iterations=0)
        with pytest.raises(ValidationError):
            ProjectedGradientSolver(lambda x: (0.0, x), tolerance=0.0)

    def test_iterate_stays_feasible_throughout(self):
        seen = []

        def objective(x):
            seen.append(x.copy())
            return float(np.sum(np.sqrt(np.maximum(x, 0.0)))), \
                0.5 / np.sqrt(np.maximum(x, 1e-12))

        costs = np.array([1.0, 2.0, 0.5])
        ProjectedGradientSolver(objective, max_iterations=50).solve(
            costs, 4.0)
        for x in seen:
            assert (x >= -1e-12).all()
            assert float(costs @ x) == pytest.approx(4.0, rel=1e-6)
