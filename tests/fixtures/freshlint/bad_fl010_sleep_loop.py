"""Bad: wall-clock sleeps and an rng-less retry loop (FL010)."""

from __future__ import annotations

import time

__all__ = ["poll_with_retry", "settle"]


def poll_with_retry(operation, attempts: int):
    """Retry loop with no injected rng: jitterless retry herd."""
    for attempt in range(attempts):
        try:
            return operation()
        except OSError:
            time.sleep(2 ** attempt)
    raise OSError("exhausted")


def settle():
    """A lone wall-clock sleep outside any retry context."""
    time.sleep(0.5)
