"""The adaptive mirror manager: observe → estimate → replan → run.

The paper (§3) motivates its heuristics with exactly this loop: "for
large real-world problems for which the contents of the mirror or the
user interests might change, we would need to periodically solve the
Core Problem".  :class:`AdaptiveMirrorManager` runs that loop against
the discrete-event simulator:

1. plan a schedule from the current :class:`~repro.runtime.beliefs.
   BeliefState` (profile learned from the request log, rates
   estimated from poll outcomes);
2. execute one period in the simulator against the *true* (hidden)
   workload;
3. fold the period's observations back into the beliefs;
4. replan when the believed profile has drifted past a threshold (or
   on a fixed cadence), using either the exact solver or the scalable
   partitioned pipeline.

Nothing in the manager ever reads the true catalog's profile or
rates — only sizes (known to any mirror) and the observable event
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.freshener import Freshener, PerceivedFreshener
from repro.core.metrics import perceived_freshness
from repro.errors import ValidationError
from repro.obs import registry as obs
from repro.runtime.beliefs import BeliefState
from repro.sim.simulation import Simulation
from repro.workloads.catalog import Catalog

__all__ = ["PeriodReport", "AdaptiveMirrorManager"]


@dataclass(frozen=True)
class PeriodReport:
    """What happened in one period of the adaptive loop.

    Attributes:
        period: 1-based period index.
        replanned: Whether a new schedule was computed this period.
        believed_pf: PF the manager *expected* (scored on its
            beliefs).
        achieved_pf: PF actually delivered (analytic, on the true
            workload).
        monitored_pf: Fraction of simulated accesses that saw fresh
            data.
        profile_divergence: TV distance between beliefs and the
            profile the active schedule was planned on, measured
            before the replan decision.
        n_accesses: Accesses served this period.
        wasted_polls: Fraction of polls that found no change.
    """

    period: int
    replanned: bool
    believed_pf: float
    achieved_pf: float
    monitored_pf: float
    profile_divergence: float
    n_accesses: int
    wasted_polls: float


class AdaptiveMirrorManager:
    """Runs the observe/estimate/replan loop against a hidden workload.

    Args:
        true_catalog: The real workload (hidden: the manager only uses
            its sizes and the simulated event outcomes).
        bandwidth: Sync bandwidth budget per period.
        request_rate: User accesses per period.
        rng: Drives the simulator.
        freshener: Planner used at each replan (exact
            :class:`PerceivedFreshener` by default; pass a
            :class:`~repro.core.freshener.PartitionedFreshener` for
            catalog-scale runs).
        beliefs: Initial belief state; a fresh uniform-profile,
            prior-rate state by default.
        replan_divergence: Replan when the believed profile drifts
            this far (TV distance) from the planned-on profile.
        replan_every: Also replan unconditionally every this many
            periods (0 disables the cadence).
    """

    def __init__(self, true_catalog: Catalog, bandwidth: float, *,
                 request_rate: float, rng: np.random.Generator,
                 freshener: Freshener | None = None,
                 beliefs: BeliefState | None = None,
                 replan_divergence: float = 0.05,
                 replan_every: int = 0) -> None:
        if bandwidth <= 0.0:
            raise ValidationError(
                f"bandwidth must be > 0, got {bandwidth}")
        if not 0.0 <= replan_divergence <= 1.0:
            raise ValidationError(
                "replan_divergence must be in [0, 1], got "
                f"{replan_divergence}")
        if replan_every < 0:
            raise ValidationError(
                f"replan_every must be >= 0, got {replan_every}")
        self._true_catalog = true_catalog
        self._bandwidth = bandwidth
        self._request_rate = request_rate
        self._rng = rng
        self._freshener = (freshener if freshener is not None
                           else PerceivedFreshener())
        mean_rate = float(true_catalog.change_rates.mean())
        self._beliefs = beliefs if beliefs is not None else BeliefState(
            true_catalog.n_elements, sizes=true_catalog.sizes,
            prior_rate=max(mean_rate, 1e-6))
        self._replan_divergence = replan_divergence
        self._replan_every = replan_every
        self._planned_profile: np.ndarray | None = None
        self._frequencies: np.ndarray | None = None
        self._periods_since_replan = 0

    @property
    def beliefs(self) -> BeliefState:
        """The manager's current belief state."""
        return self._beliefs

    @property
    def current_frequencies(self) -> np.ndarray | None:
        """The active schedule (None before the first period)."""
        return self._frequencies

    def replace_world(self, true_catalog: Catalog) -> None:
        """Swap the hidden true workload (for drift experiments).

        The manager's beliefs and active schedule are deliberately
        left untouched — discovering the change from observations is
        the point.

        Args:
            true_catalog: The new hidden workload; must have the same
                number of elements.
        """
        if true_catalog.n_elements != self._true_catalog.n_elements:
            raise ValidationError(
                f"new world has {true_catalog.n_elements} elements, "
                f"expected {self._true_catalog.n_elements}")
        self._true_catalog = true_catalog

    def _replan(self) -> float:
        with obs.span("manager.plan"):
            believed = self._beliefs.believed_catalog()
            plan = self._freshener.plan(believed, self._bandwidth)
        self._frequencies = plan.frequencies
        self._planned_profile = believed.access_probabilities.copy()
        self._periods_since_replan = 0
        return plan.perceived_freshness

    def run_period(self, period: int) -> PeriodReport:
        """Execute one period of the adaptive loop.

        Args:
            period: 1-based index, for the report.

        Returns:
            The :class:`PeriodReport`.
        """
        if self._planned_profile is None:
            divergence = 1.0
        else:
            divergence = self._beliefs.profile_divergence_from(
                self._planned_profile)
        cadence_due = (self._replan_every > 0 and
                       self._periods_since_replan >= self._replan_every)
        drift_due = (self._frequencies is not None
                     and divergence > self._replan_divergence)
        replanned = (self._frequencies is None or drift_due or cadence_due)
        tel = obs.telemetry_enabled()
        if replanned:
            if tel:
                obs.counter_add("manager.replans")
                if drift_due:
                    obs.counter_add("manager.drift_replans")
                elif cadence_due:
                    obs.counter_add("manager.cadence_replans")
            believed_pf = self._replan()
        else:
            believed_pf = perceived_freshness(
                self._beliefs.believed_catalog(), self._frequencies)
        assert self._frequencies is not None

        simulation = Simulation(self._true_catalog, self._frequencies,
                                request_rate=self._request_rate,
                                rng=self._rng)
        with obs.span("manager.simulate"):
            result = simulation.run(n_periods=1)
        with obs.span("manager.estimate"):
            self._beliefs.observe_period(result.access_counts,
                                         result.poll_counts,
                                         result.changed_poll_counts,
                                         self._frequencies)
        self._periods_since_replan += 1

        achieved = perceived_freshness(self._true_catalog,
                                       self._frequencies)
        if tel:
            obs.counter_add("manager.periods")
            obs.gauge_set("manager.profile_divergence", divergence)
            obs.gauge_set("manager.achieved_pf", achieved)
            obs.event("manager.period", period=period,
                      replanned=replanned, believed_pf=believed_pf,
                      achieved_pf=achieved,
                      monitored_pf=result.monitored_perceived_freshness,
                      profile_divergence=divergence,
                      wasted_polls=result.wasted_sync_fraction)
        return PeriodReport(
            period=period,
            replanned=replanned,
            believed_pf=believed_pf,
            achieved_pf=achieved,
            monitored_pf=result.monitored_perceived_freshness,
            profile_divergence=divergence,
            n_accesses=result.n_accesses,
            wasted_polls=result.wasted_sync_fraction,
        )

    def run(self, n_periods: int) -> list[PeriodReport]:
        """Run the loop for ``n_periods`` periods.

        Args:
            n_periods: Number of periods, >= 1.

        Returns:
            One :class:`PeriodReport` per period.
        """
        if n_periods < 1:
            raise ValidationError(
                f"n_periods must be >= 1, got {n_periods}")
        return [self.run_period(period)
                for period in range(1, n_periods + 1)]
