"""The simulation orchestrator: wire up Figure 4 and replay events.

A :class:`Simulation` connects the update generator to the
:class:`~repro.sim.source.Source`, the synchronization schedule and
request generator to the :class:`~repro.sim.mirror.Mirror`, and the
:class:`~repro.sim.evaluator.FreshnessMonitor` to everything, then
replays the merged event tape in time order.

Typical use::

    plan = PerceivedFreshener().plan(catalog, bandwidth=250.0)
    sim = Simulation(catalog, plan.frequencies, request_rate=1000.0,
                     rng=np.random.default_rng(0))
    result = sim.run(n_periods=20)
    result.monitored_perceived_freshness   # what users actually saw
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_sync_conservation, contracts_enabled
from repro.core.scheduler import PhasePolicy, SyncSchedule
from repro.errors import ValidationError
from repro.obs import registry as obs
from repro.sim.events import EventKind, EventStream, merge_streams
from repro.sim.evaluator import FreshnessMonitor, SimulationResult
from repro.sim.generators import RequestGenerator, UpdateGenerator
from repro.sim.mirror import Mirror
from repro.sim.source import Source
from repro.workloads.catalog import Catalog

__all__ = ["Simulation"]


class _PeriodTracker:
    """Per-period telemetry accumulator for :meth:`Simulation.run`.

    Only instantiated when telemetry is enabled, so the event loop
    pays a single ``is not None`` test per event otherwise.  Emits one
    ``"sim.period"`` event per completed sync period carrying the
    series the paper's figures are built from: syncs issued, budget
    utilization, accesses and their fresh fraction, and the mirror's
    instantaneous mean freshness at the period boundary.
    """

    __slots__ = ("_sizes", "_period_length", "_mirror", "_planned",
                 "_period", "syncs", "bandwidth", "updates",
                 "accesses", "fresh_accesses")

    def __init__(self, catalog: Catalog, frequencies: np.ndarray,
                 period_length: float, mirror: Mirror) -> None:
        self._sizes = catalog.sizes
        self._period_length = period_length
        self._mirror = mirror
        self._planned = float(catalog.sizes @ frequencies)
        self._period = 0
        self.syncs = 0
        self.bandwidth = 0.0
        self.updates = 0
        self.accesses = 0
        self.fresh_accesses = 0

    def advance_to(self, time: float) -> None:
        """Flush any periods fully elapsed before ``time``."""
        period = int(time / self._period_length)
        while self._period < period:
            self._flush()
            self._period += 1

    def note_sync(self, element: int) -> None:
        """Record one sync of ``element`` in the current period."""
        self.syncs += 1
        self.bandwidth += float(self._sizes[element])

    def note_access(self, fresh: bool) -> None:
        """Record one served access and whether it saw fresh data."""
        self.accesses += 1
        if fresh:
            self.fresh_accesses += 1

    def finish(self, n_periods: float) -> None:
        """Flush through the final (possibly partial) period."""
        last = max(int(np.ceil(n_periods)) - 1, 0)
        while self._period < last:
            self._flush()
            self._period += 1
        self._flush()

    def _flush(self) -> None:
        utilization = (self.bandwidth / self._planned
                       if self._planned else 0.0)
        obs.event(
            "sim.period",
            period=self._period,
            syncs=self.syncs,
            bandwidth=self.bandwidth,
            budget_utilization=utilization,
            updates=self.updates,
            accesses=self.accesses,
            fresh_fraction=(self.fresh_accesses / self.accesses
                            if self.accesses else 1.0),
            mean_freshness=float(self._mirror.freshness_vector().mean()),
        )
        obs.counter_add("sim.periods")
        obs.gauge_set("sim.budget_utilization", utilization)
        self.syncs = 0
        self.bandwidth = 0.0
        self.updates = 0
        self.accesses = 0
        self.fresh_accesses = 0


class Simulation:
    """A configured mirror-freshening simulation.

    Args:
        catalog: Workload description (profile, change rates, sizes).
        frequencies: Sync frequency per element, per period.
        request_rate: User accesses per period (the paper assumes
            "many users frequently access the mirror").
        rng: Seeded generator driving updates, requests and phases.
        period_length: Clock length of one sync period.
        phase_policy: How sync phases are staggered.
        update_generator: Optional replacement source-update process
            (anything with a ``generate(horizon) -> EventStream`` of
            UPDATE events — e.g. :class:`~repro.sim.bursty.
            BurstyUpdateGenerator` for model-misspecification
            studies).  Defaults to the catalog's Poisson processes.
    """

    def __init__(self, catalog: Catalog, frequencies: np.ndarray, *,
                 request_rate: float, rng: np.random.Generator,
                 period_length: float = 1.0,
                 phase_policy: PhasePolicy | str =
                 PhasePolicy.STAGGERED,
                 update_generator: UpdateGenerator | None = None
                 ) -> None:
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.shape != (catalog.n_elements,):
            raise ValidationError(
                f"frequencies shape {frequencies.shape} does not match "
                f"catalog size {catalog.n_elements}")
        if request_rate <= 0.0:
            raise ValidationError(
                f"request_rate must be > 0, got {request_rate}")
        self._catalog = catalog
        self._frequencies = frequencies
        self._period_length = period_length
        self._rng = rng
        self._schedule = SyncSchedule.from_frequencies(
            frequencies, period_length=period_length,
            phase_policy=phase_policy, rng=rng)
        self._updates = (update_generator if update_generator is not None
                         else UpdateGenerator(catalog,
                                              period_length=period_length,
                                              rng=rng))
        self._requests = RequestGenerator(
            catalog, rate=request_rate / period_length, rng=rng)

    @property
    def schedule(self) -> SyncSchedule:
        """The timed Fixed-Order schedule the mirror executes."""
        return self._schedule

    def run(self, n_periods: float) -> SimulationResult:
        """Simulate ``n_periods`` sync periods.

        Args:
            n_periods: Number of periods to simulate, > 0 (several
                periods are needed for the monitored metrics to settle
                near the analytic values).

        Returns:
            The measured :class:`SimulationResult`.
        """
        if n_periods <= 0.0:
            raise ValidationError(f"n_periods must be > 0, got {n_periods}")
        horizon = n_periods * self._period_length

        sync_times, sync_elements = self._schedule.events_until(horizon)
        streams = [
            self._updates.generate(horizon),
            EventStream(kind=EventKind.SYNC, times=sync_times,
                        elements=sync_elements),
            self._requests.generate(horizon),
        ]
        times, elements, kinds = merge_streams(streams)

        source = Source(self._catalog.n_elements)
        mirror = Mirror(source, sizes=self._catalog.sizes)
        monitor = FreshnessMonitor(self._catalog.n_elements, horizon)

        useful_syncs = 0
        n_updates = 0
        n_accesses = 0
        fresh_accesses = 0
        polls = np.zeros(self._catalog.n_elements, dtype=np.int64)
        changed_polls = np.zeros(self._catalog.n_elements, dtype=np.int64)
        update_kind = int(EventKind.UPDATE)
        sync_kind = int(EventKind.SYNC)
        # Per-period series tracker: hoisted to a local so the event
        # loop pays one bool test per event when telemetry is off.
        tracker = (_PeriodTracker(self._catalog, self._frequencies,
                                  self._period_length, mirror)
                   if obs.telemetry_enabled() else None)
        sim_span = obs.span("sim.run")
        with sim_span:
            for time, element, kind in zip(times.tolist(),
                                           elements.tolist(),
                                           kinds.tolist()):
                if tracker is not None:
                    tracker.advance_to(time)
                if kind == update_kind:
                    source.apply_update(element)
                    monitor.note_update(element, time)
                    n_updates += 1
                    if tracker is not None:
                        tracker.updates += 1
                elif kind == sync_kind:
                    polls[element] += 1
                    if mirror.sync(element):
                        useful_syncs += 1
                        changed_polls[element] += 1
                    monitor.note_sync(element, time)
                    if tracker is not None:
                        tracker.note_sync(element)
                else:
                    fresh = mirror.serve_access(element)
                    monitor.note_access(element, time, fresh)
                    n_accesses += 1
                    if fresh:
                        fresh_accesses += 1
                    if tracker is not None:
                        tracker.note_access(fresh)
            if tracker is not None:
                tracker.finish(n_periods)
        monitor.close()

        if contracts_enabled():
            # Conservation law (ROADMAP): the schedule may not spend
            # more sync bandwidth than planned, up to Fixed-Order
            # granularity (at most one extra sync per scheduled
            # element over the horizon).
            scheduled = self._frequencies > 0.0
            check_sync_conservation(
                mirror.bandwidth_used,
                float(self._catalog.sizes @ self._frequencies),
                n_periods,
                float(self._catalog.sizes[scheduled].sum()),
                where="Simulation.run")

        element_freshness = monitor.element_time_freshness()
        element_age = monitor.element_time_age()
        p = self._catalog.access_probabilities
        perceived_by_accesses = (fresh_accesses / n_accesses
                                 if n_accesses else float(p @ element_freshness))
        if tracker is not None:
            obs.counter_add("sim.runs")
            obs.counter_add("sim.syncs", mirror.total_syncs)
            obs.counter_add("sim.useful_syncs", useful_syncs)
            obs.counter_add("sim.updates", n_updates)
            obs.counter_add("sim.accesses", n_accesses)
            obs.gauge_set("sim.bandwidth_used", mirror.bandwidth_used)
            obs.gauge_set("sim.monitored_perceived_freshness",
                          float(perceived_by_accesses))
            obs.gauge_set("sim.monitored_general_freshness",
                          float(element_freshness.mean()))
        return SimulationResult(
            catalog=self._catalog,
            frequencies=self._frequencies,
            horizon=horizon,
            period_length=self._period_length,
            n_updates=n_updates,
            n_syncs=mirror.total_syncs,
            n_accesses=n_accesses,
            useful_syncs=useful_syncs,
            bandwidth_used=mirror.bandwidth_used,
            monitored_perceived_freshness=float(perceived_by_accesses),
            monitored_time_perceived=float(p @ element_freshness),
            monitored_general_freshness=float(element_freshness.mean()),
            element_time_freshness=element_freshness,
            element_time_age=element_age,
            monitored_perceived_age=float(p @ element_age),
            access_counts=monitor.access_counts(),
            poll_counts=polls,
            changed_poll_counts=changed_polls,
        )
