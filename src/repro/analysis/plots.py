"""Minimal ASCII line plots for terminal-friendly experiment output.

No plotting dependency is available offline, so the CLI renders
sweeps as character rasters — good enough to eyeball the *shapes*
the reproduction is judged on (who wins, where curves cross).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.series import SweepResult
from repro.errors import ValidationError

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def ascii_plot(sweep: SweepResult, *, width: int = 64,
               height: int = 18) -> str:
    """Render a sweep's curves as an ASCII chart.

    Args:
        sweep: The curves to draw (each gets a distinct marker).
        width: Plot area width in characters.
        height: Plot area height in characters.

    Returns:
        The chart with a y-range gutter and a legend.
    """
    if width < 8 or height < 4:
        raise ValidationError("plot area must be at least 8x4")
    if not sweep.series:
        return f"{sweep.name}: (no series)"

    xs = np.concatenate([series.x for series in sweep.series])
    ys = np.concatenate([series.y for series in sweep.series])
    finite = np.isfinite(xs) & np.isfinite(ys)
    if not finite.any():
        return f"{sweep.name}: (no finite data)"
    x_min, x_max = float(xs[finite].min()), float(xs[finite].max())
    y_min, y_max = float(ys[finite].min()), float(ys[finite].max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(sweep.series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(series.x, series.y):
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            column = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][column] = marker

    left_labels = [f"{y_max:9.4f} ", " " * 10, f"{y_min:9.4f} "]
    lines = [f"{sweep.name}  ({sweep.y_label} vs {sweep.x_label})"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            gutter = left_labels[0]
        elif row_index == height - 1:
            gutter = left_labels[2]
        else:
            gutter = left_labels[1]
        lines.append(gutter + "|" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 11 + f"{x_min:g}".ljust(width - 8) + f"{x_max:g}")
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} {series.label}"
        for index, series in enumerate(sweep.series))
    lines.append("legend: " + legend)
    return "\n".join(lines)
