"""The paper's primary contribution: perceived-freshness scheduling.

Layers, bottom up:

* :mod:`repro.core.freshness` — time-averaged freshness models per
  synchronization policy.
* :mod:`repro.core.metrics` — general and perceived freshness
  (Definitions 1–4).
* :mod:`repro.core.solver` — exact Core-Problem solver (KKT
  water-filling); :mod:`repro.core.nlp_solver` — the generic-NLP path.
* :mod:`repro.core.partitioning`, :mod:`repro.core.representatives`,
  :mod:`repro.core.clustering`, :mod:`repro.core.allocation` — the
  scalable heuristics of §3–§5.
* :mod:`repro.core.scheduler` — timed Fixed-Order schedules.
* :mod:`repro.core.freshener` — the high-level facade.
"""

from repro.core.age import (
    age_marginal_reduction,
    fixed_order_age,
    invert_age_marginal,
    perceived_age,
    solve_min_age_problem,
    solve_weighted_age_problem,
)
from repro.core.allocation import AllocationPolicy, expand_partition_frequencies
from repro.core.baselines import ProportionalFreshener, UniformFreshener
from repro.core.clustering import (
    ClusterRefinementStep,
    clustering_features,
    refine_partitions,
)
from repro.core.incremental import IncrementalSolver
from repro.core.tuning import TuningResult, auto_tune_partitions
from repro.core.freshener import (
    Freshener,
    FresheningPlan,
    GeneralFreshener,
    PartitionedFreshener,
    PerceivedFreshener,
)
from repro.core.freshness import (
    FixedOrderPolicy,
    FreshnessModel,
    PoissonSyncPolicy,
    fixed_order_freshness,
    invert_marginal_gain,
    marginal_gain,
)
from repro.core.metrics import (
    element_freshness,
    general_freshness,
    perceived_freshness,
    perceived_freshness_of_accesses,
    weighted_freshness,
)
from repro.core.nlp_solver import solve_core_problem_nlp, solve_weighted_problem_nlp
from repro.core.partitioning import (
    PartitionAssignment,
    PartitioningStrategy,
    contiguous_labels,
    partition_catalog,
    sort_key,
)
from repro.core.representatives import (
    RepresentativeProblem,
    build_representatives,
    solve_transformed_problem,
)
from repro.core.scheduler import PhasePolicy, SyncSchedule
from repro.core.selection import (
    MirrorSelection,
    SelectionStrategy,
    plan_selected_mirror,
    select_mirror,
)
from repro.core.solver import (
    ScheduleSolution,
    kkt_residual,
    solve_core_problem,
    solve_weighted_problem,
)

__all__ = [
    "age_marginal_reduction",
    "AllocationPolicy",
    "fixed_order_age",
    "IncrementalSolver",
    "auto_tune_partitions",
    "TuningResult",
    "invert_age_marginal",
    "perceived_age",
    "ProportionalFreshener",
    "solve_min_age_problem",
    "solve_weighted_age_problem",
    "UniformFreshener",
    "ClusterRefinementStep",
    "clustering_features",
    "contiguous_labels",
    "element_freshness",
    "expand_partition_frequencies",
    "FixedOrderPolicy",
    "fixed_order_freshness",
    "Freshener",
    "FresheningPlan",
    "FreshnessModel",
    "GeneralFreshener",
    "general_freshness",
    "invert_marginal_gain",
    "kkt_residual",
    "marginal_gain",
    "PartitionAssignment",
    "PartitionedFreshener",
    "PartitioningStrategy",
    "partition_catalog",
    "PerceivedFreshener",
    "perceived_freshness",
    "perceived_freshness_of_accesses",
    "PhasePolicy",
    "MirrorSelection",
    "plan_selected_mirror",
    "PoissonSyncPolicy",
    "refine_partitions",
    "SelectionStrategy",
    "select_mirror",
    "RepresentativeProblem",
    "build_representatives",
    "ScheduleSolution",
    "SyncSchedule",
    "solve_core_problem",
    "solve_core_problem_nlp",
    "solve_transformed_problem",
    "solve_weighted_problem",
    "solve_weighted_problem_nlp",
    "sort_key",
    "weighted_freshness",
]
