"""The parallel experiment executor and its jobs-invariance contract.

``--jobs 1`` must be *bit-identical* to the pre-executor serial code,
and ``--jobs N`` must return the very same values in the very same
order — the workers only move where the arithmetic happens, never
what it computes (each task reseeds from its own ``SeedSequence``).
The multi-process tests here use tiny workloads: on a small box the
spawn cost dwarfs the work, which is fine — they check equality, not
speed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.chaos import run_chaos
from repro.analysis.replication import simulated_pf_interval
from repro.analysis.sensitivity import burstiness_robustness
from repro.core.freshener import PerceivedFreshener
from repro.errors import ValidationError
from repro.obs import registry as obs
from repro.parallel import parallel_map, resolve_jobs, seed_rng
from repro.workloads.presets import ExperimentSetup, build_catalog

#: A deliberately tiny workload so spawn-based tests stay quick.
TINY = ExperimentSetup(n_objects=20, updates_per_period=40.0,
                       syncs_per_period=10.0, theta=1.0,
                       update_std_dev=1.0)


def _instrumented_square(x: int) -> int:
    """A worker task that records telemetry (module-level: picklable)."""
    obs.counter_add("test.work", 1.0)
    obs.counter_add("test.sum", float(x))
    obs.event("test.task", item=x)
    obs.gauge_set("test.last_item", float(x))
    return x * x


class TestExecutor:
    def test_serial_map_preserves_order_and_values(self):
        assert parallel_map(abs, [-3, 2, -1]) == [3, 2, 1]

    def test_process_map_matches_serial(self):
        items = list(range(8))
        assert parallel_map(str, items, jobs=2) == \
            parallel_map(str, items, jobs=1)

    def test_empty_input(self):
        assert parallel_map(abs, []) == []

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValidationError):
            resolve_jobs(-1)

    def test_seed_rng_matches_default_rng(self):
        """The CRN guarantee: SeedSequence(seed) draws the stream of
        default_rng(seed) bit for bit."""
        a = seed_rng(12345).random(64)
        b = np.random.default_rng(12345).random(64)
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64))

    def test_telemetry_counts_tasks_and_times_them(self):
        with obs.telemetry() as registry:
            parallel_map(abs, [-1, 2, -3], label="parallel.test")
        assert registry.counters["parallel.tasks"] == 3.0
        assert registry.gauges["parallel.jobs"] == 1.0
        histogram = registry.histograms["parallel.task_seconds"]
        assert histogram.count == 3
        assert any(record["path"] == "parallel.test"
                   for record in registry.span_records())


class TestWorkerTelemetryMerge:
    """Regression: telemetry recorded inside worker processes used to
    vanish (each worker counted into its own registry, which died with
    the process).  ``parallel_map`` now captures per-worker registries
    and folds them into the parent."""

    def test_worker_counters_are_not_lost(self):
        items = list(range(6))
        with obs.telemetry() as registry:
            result = parallel_map(_instrumented_square, items, jobs=2)
        assert result == [x * x for x in items]
        assert registry.counters["test.work"] == 6.0
        assert registry.counters["test.sum"] == float(sum(items))

    def test_worker_events_carry_worker_labels(self):
        with obs.telemetry() as registry:
            parallel_map(_instrumented_square, [1, 2, 3], jobs=2)
        task_events = registry.events_of_kind("test.task")
        assert sorted(record["item"] for record in task_events) == \
            [1, 2, 3]
        # Worker labels are the task indices, and seq stays monotone.
        assert {record["worker"] for record in task_events} == \
            {"0", "1", "2"}
        seqs = [record["seq"] for record in registry.events]
        assert seqs == sorted(seqs)

    def test_serial_and_parallel_counters_identical(self):
        items = list(range(5))
        with obs.telemetry() as serial:
            parallel_map(_instrumented_square, items, jobs=1)
        with obs.telemetry() as parallel:
            parallel_map(_instrumented_square, items, jobs=2)
        assert serial.counters == parallel.counters
        assert serial.gauges["test.last_item"] == \
            parallel.gauges["test.last_item"]

    def test_telemetry_off_captures_nothing(self):
        obs.disable_telemetry()
        registry = obs.reset_telemetry()
        parallel_map(_instrumented_square, [1, 2], jobs=2)
        assert not registry.counters
        assert not registry.events

    def test_analysis_sweep_counters_match_across_jobs(self):
        """The acceptance-criterion shape on a real fan-out path:
        a burstiness sweep reports the same merged simulation counters
        serial and parallel."""
        levels = np.array([0.0, 0.5])
        kwargs = dict(setup=TINY, burstiness_levels=levels,
                      n_periods=3, request_rate=40.0)
        with obs.telemetry() as serial:
            burstiness_robustness(jobs=1, **kwargs)
        with obs.telemetry() as parallel:
            burstiness_robustness(jobs=2, **kwargs)
        assert serial.counters == parallel.counters
        assert serial.ledger == parallel.ledger


class TestJobsInvariance:
    def test_replication_samples_identical(self):
        catalog = build_catalog(TINY, seed=1)
        plan = PerceivedFreshener().plan(catalog,
                                         TINY.syncs_per_period)
        serial = simulated_pf_interval(
            catalog, plan.frequencies, n_replications=3, n_periods=3,
            request_rate=30.0, jobs=1)
        parallel = simulated_pf_interval(
            catalog, plan.frequencies, n_replications=3, n_periods=3,
            request_rate=30.0, jobs=2)
        assert np.array_equal(serial.samples.view(np.uint64),
                              parallel.samples.view(np.uint64))
        assert serial.interval == parallel.interval

    def test_burstiness_sweep_identical(self):
        levels = np.array([0.0, 0.5])
        serial = burstiness_robustness(setup=TINY,
                                       burstiness_levels=levels,
                                       n_periods=4, request_rate=40.0,
                                       jobs=1)
        parallel = burstiness_robustness(setup=TINY,
                                         burstiness_levels=levels,
                                         n_periods=4,
                                         request_rate=40.0, jobs=2)
        assert np.array_equal(
            serial.series[0].y.view(np.uint64),
            parallel.series[0].y.view(np.uint64))

    def test_chaos_arms_identical(self):
        kwargs = dict(setup=TINY, n_periods=5, warmup=2, seed=0,
                      request_rate=60.0)
        serial = run_chaos("iid20", jobs=1, **kwargs)
        parallel = run_chaos("iid20", jobs=3, **kwargs)
        for field in ("baseline_pf", "blind_pf", "aware_pf",
                      "blind_failed", "aware_failed"):
            assert np.array_equal(getattr(serial, field),
                                  getattr(parallel, field)), field
