"""FL003-clean package surface: __all__ matches the re-exports."""

from math import sqrt
from os.path import join

__version__ = "0.0.1"

__all__ = ["__version__", "join", "sqrt"]
