"""Simulation engine benchmarks: kernel speedup and ``--jobs`` scaling.

Two benches, one durable record.  The first replays identical event
tapes through the reference per-event loop and the vectorized
fastpath kernel and compares *replay-only* time — the ``sim.run``
telemetry span covers exactly the replay in both engines (streams are
generated before the span opens), so the ratio isolates the kernel
from shared stream generation.  The second runs a 16-point burstiness
sweep serially and through the process-pool executor and records the
wall-clock ratio.  Both write machine-readable rows to
``benchmarks/results/BENCH_sim.json`` for CI's perf-smoke job to
archive and diff.

On a single-core box the executor resolves to one inline worker, so
the scaling assertion only fires where it is meaningful (workers > 1);
the equality assertions — fastpath bit-identical to reference, jobs>1
bit-identical to serial — always fire.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.sensitivity import burstiness_robustness
from repro.core.freshener import PerceivedFreshener
from repro.faults.model import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs import registry as obs
from repro.parallel import resolve_jobs
from repro.sim.simulation import Simulation
from repro.workloads.presets import ExperimentSetup, build_catalog

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Catalog sizes for the kernel comparison (elements).
KERNEL_SIZES = (1_000, 10_000)
#: The paper-scale size at which the >=5x claim is asserted.
CLAIM_SIZE = 10_000
CLAIM_SPEEDUP = 5.0

SWEEP_POINTS = 16

SWEEP_SETUP = ExperimentSetup(n_objects=40, updates_per_period=80.0,
                              syncs_per_period=20.0, theta=1.0,
                              update_std_dev=1.0)


def _engine_timing(catalog, frequencies, *, engine: str,
                   n_periods: float, request_rate: float) -> dict:
    """One full run; replay-only seconds come from the sim.run span."""
    sim = Simulation(catalog, frequencies,
                     request_rate=request_rate,
                     rng=np.random.default_rng(7))
    with obs.telemetry() as registry:
        start = time.perf_counter()
        result = sim.run(n_periods, engine=engine)
        total = time.perf_counter() - start
    _, replay = registry.span_totals["sim.run"]
    return {"engine": engine, "total_seconds": total,
            "replay_seconds": replay, "result": result}


def _kernel_row(n: int) -> dict:
    setup = ExperimentSetup(n_objects=n, updates_per_period=2.0 * n,
                            syncs_per_period=0.5 * n, theta=1.0,
                            update_std_dev=2.0)
    catalog = build_catalog(setup, seed=0)
    plan = PerceivedFreshener().plan(catalog, setup.syncs_per_period)
    kwargs = dict(n_periods=10.0, request_rate=float(n))
    # Warm caches (imports, allocator) off the small engine first so
    # the measured pair sees comparable conditions.
    _engine_timing(catalog, plan.frequencies, engine="fastpath",
                   **kwargs)
    reference = _engine_timing(catalog, plan.frequencies,
                               engine="reference", **kwargs)
    fastpath = _engine_timing(catalog, plan.frequencies,
                              engine="fastpath", **kwargs)
    ref_result, fast_result = reference["result"], fastpath["result"]
    assert fast_result.monitored_perceived_freshness == \
        ref_result.monitored_perceived_freshness
    assert fast_result.n_syncs == ref_result.n_syncs
    assert np.array_equal(
        fast_result.element_time_freshness.view(np.uint64),
        ref_result.element_time_freshness.view(np.uint64))
    return {
        "n_elements": n,
        "n_events": int(ref_result.n_updates + ref_result.n_syncs
                        + ref_result.n_accesses),
        "reference_replay_seconds": reference["replay_seconds"],
        "fastpath_replay_seconds": fastpath["replay_seconds"],
        "reference_total_seconds": reference["total_seconds"],
        "fastpath_total_seconds": fastpath["total_seconds"],
        "kernel_speedup": (reference["replay_seconds"]
                           / fastpath["replay_seconds"]),
        "end_to_end_speedup": (reference["total_seconds"]
                               / fastpath["total_seconds"]),
    }


def test_kernel_speedup_bench(benchmark):
    """Fastpath must beat the reference replay >=5x at paper scale."""
    rows = benchmark.pedantic(
        lambda: [_kernel_row(n) for n in KERNEL_SIZES],
        rounds=1, iterations=1)
    claim = next(r for r in rows if r["n_elements"] == CLAIM_SIZE)
    assert claim["kernel_speedup"] >= CLAIM_SPEEDUP, claim
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["kernel"] = {"rows": rows,
                         "claim_speedup": CLAIM_SPEEDUP,
                         "claim_n_elements": CLAIM_SIZE}
    _write_payload(payload)


#: Faulted-replay scenario: 20% i.i.d. loss with bounded retries (the
#: ``repro chaos`` workhorse), asserted >=3x at paper scale.
FAULTED_CLAIM_SPEEDUP = 3.0
FAULTED_LOSS = 0.2


def _faulted_engine_timing(catalog, frequencies, *, engine: str,
                           n_periods: float,
                           request_rate: float) -> dict:
    sim = Simulation(catalog, frequencies,
                     request_rate=request_rate,
                     rng=np.random.default_rng(7),
                     fault_plan=FaultPlan.iid(FAULTED_LOSS),
                     retry_policy=RetryPolicy(max_retries=3),
                     fault_rng=np.random.default_rng(11))
    with obs.telemetry() as registry:
        start = time.perf_counter()
        result = sim.run(n_periods, engine=engine)
        total = time.perf_counter() - start
    _, replay = registry.span_totals["sim.run"]
    return {"engine": engine, "total_seconds": total,
            "replay_seconds": replay, "result": result}


def _faulted_row(n: int) -> dict:
    setup = ExperimentSetup(n_objects=n, updates_per_period=2.0 * n,
                            syncs_per_period=0.5 * n, theta=1.0,
                            update_std_dev=2.0)
    catalog = build_catalog(setup, seed=0)
    plan = PerceivedFreshener().plan(catalog, setup.syncs_per_period)
    kwargs = dict(n_periods=10.0, request_rate=float(n))
    _faulted_engine_timing(catalog, plan.frequencies,
                           engine="fastpath", **kwargs)
    reference = _faulted_engine_timing(catalog, plan.frequencies,
                                       engine="reference", **kwargs)
    fastpath = _faulted_engine_timing(catalog, plan.frequencies,
                                      engine="fastpath", **kwargs)
    ref_result, fast_result = reference["result"], fastpath["result"]
    assert fast_result.monitored_perceived_freshness == \
        ref_result.monitored_perceived_freshness
    assert fast_result.n_syncs == ref_result.n_syncs
    assert fast_result.failed_polls == ref_result.failed_polls
    assert fast_result.retries == ref_result.retries
    assert np.array_equal(
        fast_result.element_time_freshness.view(np.uint64),
        ref_result.element_time_freshness.view(np.uint64))
    return {
        "n_elements": n,
        "scenario": "iid20",
        "loss": FAULTED_LOSS,
        "n_events": int(ref_result.n_updates + ref_result.n_syncs
                        + ref_result.n_accesses),
        "attempted_polls": int(ref_result.attempted_polls),
        "failed_polls": int(ref_result.failed_polls),
        "reference_replay_seconds": reference["replay_seconds"],
        "fastpath_replay_seconds": fastpath["replay_seconds"],
        "reference_total_seconds": reference["total_seconds"],
        "fastpath_total_seconds": fastpath["total_seconds"],
        "kernel_speedup": (reference["replay_seconds"]
                           / fastpath["replay_seconds"]),
        "end_to_end_speedup": (reference["total_seconds"]
                               / fastpath["total_seconds"]),
    }


def test_faulted_kernel_speedup_bench(benchmark):
    """The faulted kernel must beat the loop >=3x on iid20 at paper
    scale (lossy replay does strictly more work per sync than quiet
    replay — the ledger walk — so its bar sits below the quiet 5x)."""
    rows = benchmark.pedantic(
        lambda: [_faulted_row(n) for n in KERNEL_SIZES],
        rounds=1, iterations=1)
    claim = next(r for r in rows if r["n_elements"] == CLAIM_SIZE)
    assert claim["kernel_speedup"] >= FAULTED_CLAIM_SPEEDUP, claim
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["faulted_kernel"] = {
        "rows": rows,
        "claim_speedup": FAULTED_CLAIM_SPEEDUP,
        "claim_n_elements": CLAIM_SIZE,
        "scenario": "iid20",
    }
    _write_payload(payload)


def _sweep_seconds(jobs: int) -> tuple[float, object]:
    levels = np.linspace(0.0, 0.75, SWEEP_POINTS)
    start = time.perf_counter()
    sweep = burstiness_robustness(setup=SWEEP_SETUP,
                                  burstiness_levels=levels,
                                  n_periods=4, request_rate=80.0,
                                  jobs=jobs)
    return time.perf_counter() - start, sweep


def test_parallel_scaling_bench(benchmark):
    """A 16-point sweep through the executor vs the serial loop."""
    workers = resolve_jobs(0)

    def _measure():
        serial_s, serial = _sweep_seconds(1)
        parallel_s, parallel = _sweep_seconds(0)
        return serial_s, serial, parallel_s, parallel

    serial_s, serial, parallel_s, parallel = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    for index, series in enumerate(serial.series):
        assert np.array_equal(
            series.y.view(np.uint64),
            parallel.series[index].y.view(np.uint64))
    speedup = serial_s / parallel_s
    efficiency = speedup / workers
    if workers > 1:
        # Near-linear scaling: the tasks are independent and the
        # per-task payload dwarfs pickling, so most of each extra
        # core should show up in the wall clock.
        assert efficiency >= 0.6, (serial_s, parallel_s, workers)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = _load_payload()
    payload["parallel"] = {
        "sweep_points": SWEEP_POINTS,
        "workers": workers,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "efficiency": efficiency,
    }
    _write_payload(payload)


def _load_payload() -> dict:
    path = RESULTS_DIR / "BENCH_sim.json"
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"benchmark": "simulation_engines"}


def _write_payload(payload: dict) -> None:
    (RESULTS_DIR / "BENCH_sim.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
