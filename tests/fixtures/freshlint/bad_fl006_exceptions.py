"""Seeded FL006 violations: bare, broad, and swallowed handlers."""


def risky_solve(problem):
    try:
        return problem.solve()
    except:                      # FL006: bare except
        return None


def swallow(problem):
    try:
        return problem.solve()
    except ValueError:           # FL006 (solver scope): swallowed
        pass


def too_broad(problem):
    try:
        return problem.solve()
    except Exception as error:   # FL006 (solver scope): too broad
        return error
