"""Tests for repro.numerics.roots."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.numerics.roots import bisect, newton_bisect_increasing


class TestBisect:
    def test_finds_simple_root(self):
        root = bisect(lambda x: x - 2.0, 0.0, 10.0)
        assert root == pytest.approx(2.0, abs=1e-10)

    def test_finds_root_of_decreasing_function(self):
        root = bisect(lambda x: 5.0 - x ** 2, 0.0, 10.0)
        assert root == pytest.approx(math.sqrt(5.0), abs=1e-9)

    def test_returns_endpoint_when_root_at_lo(self):
        assert bisect(lambda x: x, 0.0, 1.0) == 0.0

    def test_returns_endpoint_when_root_at_hi(self):
        assert bisect(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_rejects_inverted_bracket(self):
        with pytest.raises(ValidationError):
            bisect(lambda x: x, 1.0, 0.0)

    def test_rejects_degenerate_bracket(self):
        with pytest.raises(ValidationError):
            bisect(lambda x: x, 1.0, 1.0)

    def test_rejects_bracket_without_sign_change(self):
        with pytest.raises(ValidationError):
            bisect(lambda x: x + 10.0, 0.0, 1.0)

    def test_respects_xtol(self):
        root = bisect(lambda x: x - math.pi, 0.0, 10.0, xtol=1e-3)
        assert abs(root - math.pi) < 1e-3

    @given(st.floats(min_value=-100.0, max_value=100.0))
    @settings(max_examples=50)
    def test_recovers_arbitrary_linear_root(self, target):
        root = bisect(lambda x: x - target, target - 5.0, target + 7.0)
        assert root == pytest.approx(target, abs=1e-9)

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50)
    def test_recovers_exponential_root(self, target):
        # Solve 1 - exp(-x) = target.
        root = bisect(lambda x: 1.0 - math.exp(-x) - target, 0.0, 50.0)
        assert 1.0 - math.exp(-root) == pytest.approx(target, abs=1e-9)


class TestNewtonBisectIncreasing:
    def test_finds_cubic_root(self):
        root = newton_bisect_increasing(
            lambda x: x ** 3 - 8.0, lambda x: 3.0 * x ** 2, 0.0, 10.0)
        assert root == pytest.approx(2.0, abs=1e-10)

    def test_handles_zero_derivative_gracefully(self):
        # Derivative is zero at the left endpoint; the fallback to
        # bisection must keep progress.
        root = newton_bisect_increasing(
            lambda x: x ** 3 - 1.0, lambda x: 3.0 * x ** 2, -1.0, 5.0)
        assert root == pytest.approx(1.0, abs=1e-9)

    def test_returns_endpoint_roots(self):
        assert newton_bisect_increasing(
            lambda x: x, lambda _: 1.0, 0.0, 1.0) == 0.0
        assert newton_bisect_increasing(
            lambda x: x - 1.0, lambda _: 1.0, 0.0, 1.0) == 1.0

    def test_rejects_bracket_not_straddling_root(self):
        with pytest.raises(ValidationError):
            newton_bisect_increasing(
                lambda x: x + 5.0, lambda _: 1.0, 0.0, 1.0)

    def test_rejects_inverted_bracket(self):
        with pytest.raises(ValidationError):
            newton_bisect_increasing(
                lambda x: x, lambda _: 1.0, 2.0, 1.0)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=50)
    def test_matches_bisect_on_marginal_kernel(self, target):
        # The exact function the water-filling solver inverts:
        # g(r) = 1 - (1+r) e^{-r}.
        def g(r: float) -> float:
            return 1.0 - (1.0 + r) * math.exp(-r) - target

        def g_prime(r: float) -> float:
            return r * math.exp(-r)

        newton_root = newton_bisect_increasing(g, g_prime, 0.0, 100.0)
        bisect_root = bisect(g, 1e-12, 100.0)
        assert newton_root == pytest.approx(bisect_root, abs=1e-8)
