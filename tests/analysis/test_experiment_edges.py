"""Edge-path coverage for experiment runners and CLI rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import experiments
from repro.cli import main
from repro.workloads.presets import ExperimentSetup

TINY = ExperimentSetup(n_objects=50, updates_per_period=100.0,
                       syncs_per_period=25.0, theta=1.0,
                       update_std_dev=1.0)


class TestFigure9SolverPaths:
    def test_exact_and_nlp_paths_agree_on_quality(self):
        """Figure 9's two solver backends reach comparable PF — only
        their cost differs."""
        common = dict(setup=TINY,
                      cluster_line_counts=np.array([5, 15]),
                      iteration_path_counts=(8,),
                      iteration_counts=(0, 1), seed=0)
        exact = experiments.figure9(solver="exact", **common)
        nlp = experiments.figure9(solver="nlp", **common)
        exact_pf = exact.get("CLUSTER_LINE").y
        nlp_pf = nlp.get("CLUSTER_LINE").y
        assert np.allclose(exact_pf, nlp_pf, atol=1e-3)

    def test_notes_record_solver(self):
        sweep = experiments.figure9(
            setup=TINY, cluster_line_counts=np.array([5]),
            iteration_path_counts=(), iteration_counts=(0,),
            solver="exact")
        assert sweep.notes["solver"] == "exact"


class TestFigure1Overrides:
    def test_custom_rate_grid(self):
        grid = np.linspace(0.5, 2.0, 7)
        sweep = experiments.figure1(rate_grid=grid)
        assert np.array_equal(sweep.series[0].x, grid)

    def test_custom_multiplier_shifts_cutoffs(self):
        low = experiments.figure1(multiplier=0.01)
        high = experiments.figure1(multiplier=0.03)
        # Higher μ ⇒ earlier cutoff ⇒ fewer active grid points.
        label = "p=0.0667"
        assert (high.get(label).y > 0).sum() < \
            (low.get(label).y > 0).sum()


class TestCliRendering:
    def test_svg_flag_writes_files(self, tmp_path, capsys):
        assert main(["figure1", "--svg", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output
        files = list(tmp_path.glob("*.svg"))
        assert files and files[0].read_text().startswith("<svg")

    def test_plot_flag_renders_ascii(self, capsys):
        assert main(["figure1", "--plot"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_mirror_selection_command(self, capsys):
        assert main(["mirror-selection"]) == 0
        assert "greedy by interest" in capsys.readouterr().out

    def test_policy_ablation_command(self, capsys):
        assert main(["policy-ablation"]) == 0
        out = capsys.readouterr().out
        assert "fixed-order" in out and "poisson-sync" in out


class TestImperfectKnowledgeEdges:
    def test_zero_noise_is_exactly_clean(self):
        sweep = experiments.imperfect_knowledge(
            setup=TINY, noise_levels=np.array([0.0]), n_seeds=2)
        noisy = sweep.get("noisy rates").y[0]
        clean = sweep.get("perfect knowledge").y[0]
        assert noisy == pytest.approx(clean, abs=1e-12)
