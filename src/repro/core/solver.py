"""Exact solver for the Core Problem (paper §2.2 and Appendix).

The Core Problem is

    max  Σᵢ wᵢ · F̄(λᵢ, fᵢ)    s.t.  Σᵢ cᵢ·fᵢ = B,  fᵢ ≥ 0

where ``wᵢ`` is the objective weight (the access probability pᵢ for
Perceived Freshening, 1/N for General Freshening, or nₖ·p̄ₖ for the
transformed partition problem) and ``cᵢ`` the per-sync bandwidth cost
(the object size sᵢ, or nₖ·s̄ₖ for partitions).

Because every F̄ is strictly concave and increasing in f, the KKT
conditions (the paper's Equations 5/6) characterize the optimum: a
single multiplier μ with

    (wᵢ/cᵢ)·∂F̄/∂f(λᵢ, fᵢ) = μ   if fᵢ > 0,
    (wᵢ/cᵢ)·∂F̄/∂f(λᵢ, 0⁺) ≤ μ   if fᵢ = 0.

The paper solved this with a generic NLP package and reports it
intractable beyond ~10³ elements; this module instead exploits the
separable structure — an exact water-filling bisection on μ with a
vectorized per-element marginal inversion — and solves 500 000-element
instances in well under a second.  It is used both directly (the
"best_case"/ideal curves) and as the optimization step of every
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.contracts import (
    check_budget_feasible,
    check_kkt_stationarity,
    check_nonnegative,
    check_simplex,
    postcondition,
)
from repro.core.freshness import FixedOrderPolicy, FreshnessModel
from repro.errors import InfeasibleProblemError, ValidationError
from repro.numerics.waterfill import waterfill
from repro.obs import registry as obs
from repro.workloads.catalog import Catalog

__all__ = ["ScheduleSolution", "solve_core_problem", "solve_weighted_problem",
           "kkt_residual"]

_DEFAULT_MODEL = FixedOrderPolicy()


@dataclass(frozen=True)
class ScheduleSolution:
    """An optimal (or heuristic) bandwidth allocation.

    Attributes:
        frequencies: Sync frequency per element, ``f ≥ 0``.
        multiplier: The KKT multiplier μ at the solution (0 when the
            problem was degenerate and nothing was allocated).
        bandwidth: Total bandwidth consumed, ``Σ cᵢ·fᵢ``.
        objective: Objective value ``Σ wᵢ·F̄(λᵢ, fᵢ)``.
        iterations: Outer bisection iterations used.
    """

    frequencies: np.ndarray
    multiplier: float
    bandwidth: float
    objective: float
    iterations: int


def _check_weighted_solution(solution: "ScheduleSolution",
                             arguments: Mapping[str, object]) -> None:
    """Postcondition: the paper's feasibility + stationarity invariants."""
    where = "solve_weighted_problem"
    costs = np.asarray(arguments["costs"], dtype=float)
    bandwidth = float(arguments["bandwidth"])  # type: ignore[arg-type]
    model = arguments.get("model")
    check_nonnegative(solution.frequencies, name="frequencies",
                      where=where)
    check_budget_feasible(costs, solution.frequencies, bandwidth,
                          where=where)
    residual = kkt_residual(solution, np.asarray(arguments["weights"]),
                            np.asarray(arguments["change_rates"]),
                            costs,
                            model=model if isinstance(model,
                                                      FreshnessModel)
                            else None)
    check_kkt_stationarity(residual, solution.multiplier, where=where)


@postcondition(_check_weighted_solution)
def solve_weighted_problem(weights: np.ndarray, change_rates: np.ndarray,
                           costs: np.ndarray, bandwidth: float, *,
                           model: FreshnessModel | None = None,
                           budget_rtol: float = 1e-10,
                           bracket: tuple[float, float] | None = None,
                           ) -> ScheduleSolution:
    """Solve ``max Σ wᵢ·F̄(λᵢ, fᵢ)`` s.t. ``Σ cᵢ·fᵢ = B``, ``f ≥ 0``.

    Args:
        weights: Nonnegative objective weights ``w``.
        change_rates: Poisson change rates ``λ ≥ 0``, in changes per
            period.
        costs: Strictly positive bandwidth cost per sync, in size
            units.
        bandwidth: Budget ``B > 0``, in size units per period.
        model: Freshness model (Fixed-Order by default).
        budget_rtol: Relative tolerance on the consumed budget.
        bracket: Optional warm-start multiplier bracket ``(μ_lo,
            μ_hi)`` known to straddle the budget (see
            :class:`repro.core.incremental.IncrementalSolver`); a
            :class:`~repro.errors.ValidationError` is raised if it
            does not.

    Returns:
        The optimal :class:`ScheduleSolution`.  Elements with zero
        weight or zero change rate receive zero frequency (syncing
        them cannot raise the objective).

    Raises:
        InfeasibleProblemError: If the budget is not positive.
        ValidationError: On malformed inputs.
    """
    with obs.span("solver.solve_weighted"):
        solution = _solve_weighted(weights, change_rates, costs,
                                   bandwidth, model=model,
                                   budget_rtol=budget_rtol,
                                   bracket=bracket)
    if obs.telemetry_enabled():
        _record_solver_telemetry(solution, weights, change_rates, costs,
                                 model)
    return solution


def _record_solver_telemetry(solution: ScheduleSolution,
                             weights: np.ndarray,
                             change_rates: np.ndarray, costs: np.ndarray,
                             model: FreshnessModel | None) -> None:
    """Record one solve outcome (μ, iterations, KKT residual).

    The KKT residual is recomputed here — one vectorized derivative
    pass — so it is only paid while telemetry is on.  All quantities
    are per period / dimensionless, matching the solver's units.
    """
    residual = kkt_residual(solution, weights, change_rates, costs,
                            model=model)
    obs.counter_add("solver.calls")
    obs.counter_add("solver.iterations", solution.iterations)
    obs.observe("solver.iterations", solution.iterations)
    obs.gauge_set("solver.multiplier", solution.multiplier)
    obs.gauge_set("solver.kkt_residual", residual)
    obs.gauge_set("solver.objective", solution.objective)
    obs.event("solver.solve",
              n_elements=int(np.asarray(weights).shape[0]),
              iterations=solution.iterations,
              multiplier=solution.multiplier,
              bandwidth=solution.bandwidth,
              objective=solution.objective,
              kkt_residual=residual)


def _solve_weighted(weights: np.ndarray, change_rates: np.ndarray,
                    costs: np.ndarray, bandwidth: float, *,
                    model: FreshnessModel | None,
                    budget_rtol: float,
                    bracket: tuple[float, float] | None,
                    ) -> ScheduleSolution:
    """The undecorated solve (see :func:`solve_weighted_problem`)."""
    weights = np.asarray(weights, dtype=float)
    change_rates = np.asarray(change_rates, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if not (weights.shape == change_rates.shape == costs.shape):
        raise ValidationError(
            "weights, change_rates and costs must have matching shapes, "
            f"got {weights.shape}, {change_rates.shape}, {costs.shape}")
    if weights.ndim != 1:
        raise ValidationError("solver inputs must be 1-D")
    if (weights < 0.0).any():
        raise ValidationError("weights must be nonnegative")
    if (change_rates < 0.0).any():
        raise ValidationError("change rates must be nonnegative")
    if (costs <= 0.0).any():
        raise ValidationError("costs must be strictly positive")
    if bandwidth <= 0.0:
        raise InfeasibleProblemError(
            f"bandwidth must be positive, got {bandwidth!r}")

    chosen = model if model is not None else _DEFAULT_MODEL
    frequencies = np.zeros_like(weights)

    # Only elements that are both interesting (w > 0) and volatile
    # (λ > 0) can benefit from bandwidth.
    live = (weights > 0.0) & (change_rates > 0.0)
    if not live.any():
        objective = float(weights @ chosen.freshness(change_rates,
                                                     frequencies))
        return ScheduleSolution(frequencies=frequencies, multiplier=0.0,
                                bandwidth=0.0, objective=objective,
                                iterations=0)

    w = weights[live]
    lam = change_rates[live]
    c = costs[live]

    # Marginal objective per unit *bandwidth* at f→0⁺ is
    # (w/c)·∂F̄/∂f(λ, 0⁺); μ above the max of these allocates nothing.
    zero_marginals = chosen.derivative(lam, np.zeros_like(lam))
    ceilings = w * zero_marginals / c
    mu_max = float(ceilings.max())

    def allocate_at(mu: float) -> tuple[np.ndarray, float]:
        active = ceilings > mu
        freqs = np.zeros_like(w)
        if active.any():
            marginal_targets = mu * c[active] / w[active]
            freqs[active] = chosen.frequency_for_marginal(lam[active],
                                                          marginal_targets)
        return freqs, float(c @ freqs)

    result = waterfill(allocate_at, bandwidth, mu_max,
                       budget_rtol=budget_rtol, snap=False,
                       bracket=bracket)
    live_freqs = result.allocations.copy()
    mu = result.multiplier
    if mu > 0.0 and abs(result.cost - bandwidth) > budget_rtol * bandwidth:
        # Degenerate optimum: μ sits on an element's activation
        # ceiling, where the inverted frequency jumps (at float
        # resolution of the marginal kernel) between ~λ/40 and 0, so
        # the bisection cannot meet the budget.  The KKT-correct
        # resolution: elements *at* the ceiling absorb exactly the
        # leftover bandwidth — their marginal stays ≈ μ for any small
        # frequency.
        threshold = np.abs(ceilings - mu) <= 1e-6 * mu
        if threshold.any():
            obs.counter_add("solver.threshold_degeneracies")
            live_freqs[threshold] = 0.0
            gap = bandwidth - float(c @ live_freqs)
            if gap > 0.0:
                indices = np.flatnonzero(threshold)
                live_freqs[indices] = (gap / indices.size) / c[indices]
    # Snap exactly onto the budget (a no-op up to rounding).
    cost = float(c @ live_freqs)
    if cost > 0.0:
        live_freqs *= bandwidth / cost
    frequencies[live] = live_freqs
    objective = float(weights @ chosen.freshness(change_rates, frequencies))
    return ScheduleSolution(frequencies=frequencies,
                            multiplier=result.multiplier,
                            bandwidth=float(costs @ frequencies),
                            objective=objective,
                            iterations=result.iterations)


def _check_core_inputs(solution: "ScheduleSolution",
                       arguments: Mapping[str, object]) -> None:
    """Postcondition: the catalog's profile is simplex-valid.

    Feasibility and stationarity of ``solution`` are already checked
    by the inner :func:`solve_weighted_problem` contract; this adds
    the access-profile invariant Definition 4 relies on (Σp = 1 makes
    perceived freshness a true expectation).
    """
    catalog: Catalog = arguments["catalog"]  # type: ignore[assignment]
    check_simplex(catalog.access_probabilities,
                  where="solve_core_problem")


@postcondition(_check_core_inputs)
def solve_core_problem(catalog: Catalog, bandwidth: float, *,
                       model: FreshnessModel | None = None,
                       budget_rtol: float = 1e-10,
                       bracket: tuple[float, float] | None = None
                       ) -> ScheduleSolution:
    """Optimal Perceived-Freshening schedule for a catalog.

    Maximizes ``Σ pᵢ·F̄(λᵢ, fᵢ)`` subject to ``Σ sᵢ·fᵢ = B`` — the
    paper's Core Problem (equations 1–2), or its variable-size
    extension (equation 4) when the catalog has non-uniform sizes.

    Args:
        catalog: Workload description (profile, change rates, sizes).
        bandwidth: Sync bandwidth budget per period.
        model: Freshness model (Fixed-Order by default).
        budget_rtol: Relative tolerance on the consumed budget.
        bracket: Optional warm-start multiplier bracket ``(μ_lo,
            μ_hi)`` from a neighbouring solve; a
            :class:`~repro.errors.ValidationError` is raised if it
            does not straddle the budget.

    Returns:
        The optimal :class:`ScheduleSolution`; its ``objective`` is
        the achieved perceived freshness contribution of volatile
        elements plus the always-fresh mass.
    """
    return solve_weighted_problem(catalog.access_probabilities,
                                  catalog.change_rates, catalog.sizes,
                                  bandwidth, model=model,
                                  budget_rtol=budget_rtol,
                                  bracket=bracket)


def kkt_residual(solution: ScheduleSolution, weights: np.ndarray,
                 change_rates: np.ndarray, costs: np.ndarray, *,
                 model: FreshnessModel | None = None) -> float:
    """Maximum violation of the KKT stationarity conditions.

    For every element with positive frequency the scaled marginal
    ``(wᵢ/cᵢ)·∂F̄/∂f`` must equal the multiplier μ; for every element
    at zero it must not exceed μ.  This is the paper's Equation 6
    invariant ("all solutions lie on the same marginal locus") and is
    exercised by the property-based tests.

    Args:
        solution: A solution from this module's solvers.
        weights: Objective weights used in the solve.
        change_rates: Change rates used in the solve, in changes per
            period.
        costs: Costs used in the solve.
        model: Freshness model used in the solve.

    Returns:
        The largest absolute stationarity violation (0 at a perfect
        optimum).
    """
    chosen = model if model is not None else _DEFAULT_MODEL
    weights = np.asarray(weights, dtype=float)
    change_rates = np.asarray(change_rates, dtype=float)
    costs = np.asarray(costs, dtype=float)
    marginals = chosen.derivative(change_rates, solution.frequencies)
    scaled = weights * marginals / costs
    positive = solution.frequencies > 0.0
    residual = 0.0
    if positive.any():
        residual = float(np.abs(scaled[positive] - solution.multiplier).max())
    at_zero = ~positive & (weights > 0.0) & (change_rates > 0.0)
    if at_zero.any():
        overshoot = float((scaled[at_zero] - solution.multiplier).max())
        residual = max(residual, overshoot, 0.0)
    return residual
