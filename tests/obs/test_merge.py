"""Cross-worker registry merge semantics and export round-trips.

The merge contract (the tentpole's second leg): counters sum,
histograms add per bucket, span totals sum, event tapes concatenate
with a ``worker`` label and a re-sequenced ``seq``, gauges are
last-write-wins with their surviving origin recorded, and ledgers
fold order-independently.  A merged registry must also survive the
JSONL round trip with worker labels and ledger intact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import export
from repro.obs import registry as obs
from repro.obs.registry import MetricsRegistry


def _worker_registry(index: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter_add("sim.syncs", 10.0 * (index + 1))
    registry.counter_add(f"only.worker{index}", 1.0)
    registry.observe("solver.iterations", 3.0 * (index + 1))
    registry.event("sim.period", period=index)
    with registry.span("work"):
        pass
    registry.gauge_set("sim.monitored_time_freshness", 0.5 + index / 10)
    registry.ledger.record_refresh(index, float(index))
    registry.ledger.record_refresh(99, 5.0 + index)
    return registry


def test_counters_sum_across_workers() -> None:
    parent = MetricsRegistry()
    for index in range(3):
        parent.merge(_worker_registry(index), worker=index)
    assert parent.counters["sim.syncs"] == 60.0
    assert parent.counters["only.worker1"] == 1.0


def test_histograms_add_per_bucket() -> None:
    parent = MetricsRegistry()
    for index in range(3):
        parent.merge(_worker_registry(index), worker=index)
    histogram = parent.histograms["solver.iterations"]
    assert histogram.count == 3
    assert histogram.total == pytest.approx(3.0 + 6.0 + 9.0)
    assert sum(histogram.counts) == 3


def test_histogram_bucket_mismatch_is_an_error() -> None:
    parent = MetricsRegistry()
    parent.observe("h", 1.0, buckets=(1.0, 2.0))
    other = MetricsRegistry()
    other.observe("h", 1.0, buckets=(5.0, 10.0))
    with pytest.raises(ValueError, match="bucket mismatch"):
        parent.merge(other)


def test_span_totals_sum() -> None:
    parent = MetricsRegistry()
    for index in range(3):
        parent.merge(_worker_registry(index), worker=index)
    count, total = parent.span_totals["work"]
    assert count == 3.0
    assert total >= 0.0


def test_events_get_worker_label_and_fresh_seq() -> None:
    parent = MetricsRegistry()
    parent.event("parent.start")
    for index in range(2):
        parent.merge(_worker_registry(index), worker=index)
    seqs = [record["seq"] for record in parent.events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    workers = [record.get("worker") for record in parent.events]
    assert workers[0] is None  # the parent's own event is unlabelled
    assert set(workers[1:]) == {"0", "1"}


def test_gauges_last_write_wins_with_origin() -> None:
    parent = MetricsRegistry()
    parent.gauge_set("sim.monitored_time_freshness", 0.1)
    for index in range(3):
        parent.merge(_worker_registry(index), worker=index)
    assert parent.gauges["sim.monitored_time_freshness"] == \
        pytest.approx(0.7)
    assert parent.gauge_origins["sim.monitored_time_freshness"] == "2"


def test_ledger_merge_is_order_independent_across_workers() -> None:
    forward = MetricsRegistry()
    backward = MetricsRegistry()
    for index in range(3):
        forward.merge(_worker_registry(index), worker=index)
    for index in reversed(range(3)):
        backward.merge(_worker_registry(index), worker=index)
    assert forward.ledger == backward.ledger
    assert forward.ledger.entries[99].refreshed_at == 7.0
    assert forward.ledger.entries[99].refreshes == 3


def test_merge_does_not_mutate_the_source() -> None:
    worker = _worker_registry(0)
    before_events = [dict(record) for record in worker.events]
    MetricsRegistry().merge(worker, worker=0)
    assert worker.events == before_events
    assert "worker" not in worker.events[0]


def test_event_tape_cap_still_applies_on_merge() -> None:
    parent = MetricsRegistry()
    parent._sequence = obs.MAX_EVENTS
    parent.events = [{"seq": i, "t": 0.0, "kind": "filler"}
                     for i in range(obs.MAX_EVENTS)]
    worker = MetricsRegistry()
    worker.event("late")
    parent.merge(worker, worker=3)
    assert len(parent.events) == obs.MAX_EVENTS
    assert parent.counters["obs.dropped_events"] == 1.0


# ---------------------------------------------------------------------------
# Export round-trips of merged registries (satellite d)


def _merged_registry() -> MetricsRegistry:
    parent = MetricsRegistry()
    for index in range(3):
        parent.merge(_worker_registry(index), worker=index)
    return parent


def test_jsonl_round_trip_preserves_merged_registry(
        tmp_path: Path) -> None:
    parent = _merged_registry()
    path = export.write_jsonl(parent, tmp_path / "telemetry.jsonl")
    loaded = export.read_jsonl(path)
    assert loaded.counters == parent.counters
    assert loaded.gauges == parent.gauges
    assert loaded.gauge_origins == parent.gauge_origins
    assert loaded.ledger == parent.ledger
    assert [record.get("worker") for record in loaded.events] == \
        [record.get("worker") for record in parent.events]
    histogram = loaded.histograms["solver.iterations"]
    assert histogram.counts == \
        parent.histograms["solver.iterations"].counts


def test_prometheus_text_is_stable_across_round_trip(
        tmp_path: Path) -> None:
    parent = _merged_registry()
    direct = export.prometheus_text(parent)
    path = export.write_jsonl(parent, tmp_path / "telemetry.jsonl")
    reloaded = export.prometheus_text(export.read_jsonl(path))
    assert reloaded == direct
    assert 'repro_freshness_refreshes_total{element="99"} 3' in direct
    assert '{worker="2"}' in direct


def test_summary_text_reports_ledger_section() -> None:
    text = export.summary_text(_merged_registry())
    assert "freshness ledger" in text
    assert "elements" in text
