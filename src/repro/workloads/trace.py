"""Persistence for workloads: save/load catalogs and access sets.

A deployed mirror wants to snapshot its believed catalog, archive
request logs, and replay recorded workloads through the simulator.
Two formats:

* **NPZ** (:func:`save_catalog` / :func:`load_catalog`,
  :func:`save_access_set` / :func:`load_access_set`) — compact binary
  for programmatic round-trips;
* **JSON** (:func:`catalog_to_json` / :func:`catalog_from_json`) —
  interoperable text for configuration files and other tools.

All loaders re-validate through the normal constructors, so a
corrupted or hand-edited file fails loudly with a
:class:`~repro.errors.ValidationError` rather than poisoning a
schedule.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.workloads.accesses import AccessSet
from repro.workloads.catalog import Catalog

__all__ = [
    "save_catalog",
    "load_catalog",
    "catalog_to_json",
    "catalog_from_json",
    "save_access_set",
    "load_access_set",
]

_CATALOG_KEYS = ("access_probabilities", "change_rates", "sizes")
_FORMAT_VERSION = 1


def save_catalog(catalog: Catalog, path: str | Path) -> None:
    """Write a catalog to an ``.npz`` file.

    Args:
        catalog: The catalog to persist.
        path: Destination path (conventionally ``*.npz``).
    """
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        access_probabilities=catalog.access_probabilities,
        change_rates=catalog.change_rates,
        sizes=catalog.sizes,
    )


def load_catalog(path: str | Path) -> Catalog:
    """Read a catalog from an ``.npz`` file written by :func:`save_catalog`.

    Args:
        path: Source path.

    Returns:
        The validated :class:`Catalog`.

    Raises:
        ValidationError: If required arrays are missing or invalid.
    """
    with np.load(Path(path)) as data:
        missing = [key for key in _CATALOG_KEYS if key not in data]
        if missing:
            raise ValidationError(
                f"catalog file {path} is missing arrays: {missing}")
        return Catalog(access_probabilities=data["access_probabilities"],
                       change_rates=data["change_rates"],
                       sizes=data["sizes"])


def catalog_to_json(catalog: Catalog) -> str:
    """Serialize a catalog as a JSON document.

    Args:
        catalog: The catalog to serialize.

    Returns:
        A JSON string with a version marker and the three arrays.
    """
    return json.dumps({
        "version": _FORMAT_VERSION,
        "access_probabilities": catalog.access_probabilities.tolist(),
        "change_rates": catalog.change_rates.tolist(),
        "sizes": catalog.sizes.tolist(),
    })


def catalog_from_json(document: str) -> Catalog:
    """Parse a catalog from :func:`catalog_to_json` output.

    Args:
        document: The JSON string.

    Returns:
        The validated :class:`Catalog`.

    Raises:
        ValidationError: On malformed JSON or missing/invalid fields.
    """
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid catalog JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValidationError("catalog JSON must be an object")
    missing = [key for key in _CATALOG_KEYS if key not in payload]
    if missing:
        raise ValidationError(
            f"catalog JSON is missing fields: {missing}")
    return Catalog(
        access_probabilities=np.asarray(payload["access_probabilities"],
                                        dtype=float),
        change_rates=np.asarray(payload["change_rates"], dtype=float),
        sizes=np.asarray(payload["sizes"], dtype=float),
    )


def save_access_set(accesses: AccessSet, path: str | Path) -> None:
    """Write an access set (request log) to an ``.npz`` file.

    Args:
        accesses: The access set to persist.
        path: Destination path.
    """
    np.savez_compressed(Path(path), version=np.int64(_FORMAT_VERSION),
                        times=accesses.times, elements=accesses.elements)


def load_access_set(path: str | Path) -> AccessSet:
    """Read an access set from an ``.npz`` file.

    Args:
        path: Source path.

    Returns:
        The validated :class:`AccessSet`.

    Raises:
        ValidationError: If required arrays are missing or invalid.
    """
    with np.load(Path(path)) as data:
        for key in ("times", "elements"):
            if key not in data:
                raise ValidationError(
                    f"access-set file {path} is missing array {key!r}")
        return AccessSet(times=data["times"], elements=data["elements"])
