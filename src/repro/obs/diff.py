"""``repro obs diff``: run-to-run regression view for CI gating.

Compares two telemetry artifacts — either two JSONL tapes written by
``--telemetry`` or two ``BENCH_sim.json`` files written by
``benchmarks/bench_sim.py`` — as flat metric inventories, flags
directional changes beyond a relative threshold, and drives a
non-zero exit code so a perf-smoke job can gate on it.

Directionality is explicit: speedups, efficiencies and freshness
gauges are *higher-is-better* (a drop past the threshold is a
regression); ledger staleness is *lower-is-better*; everything else
(event counts, bandwidth totals) is informational and never fails
the diff on its own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List

from repro.obs.export import _format_table, read_jsonl

__all__ = ["DiffRow", "diff_metrics", "format_diff", "load_metrics"]

#: Metric-name suffixes where a relative drop is a regression.
_HIGHER_BETTER = (
    "kernel_speedup",
    "end_to_end_speedup",
    "parallel.speedup",
    "parallel.efficiency",
    "gauge.sim.monitored_perceived_freshness",
    "gauge.sim.monitored_general_freshness",
    "gauge.monitor.mean_time_freshness",
)

#: Metric-name suffixes where a relative rise is a regression.
_LOWER_BETTER = (
    "ledger.max_staleness",
    "gauge.monitor.mean_time_age",
)


@dataclass
class DiffRow:
    """One metric's baseline/candidate comparison.

    Attributes:
        name: Flattened metric name.
        baseline: Baseline value, or None if absent there.
        candidate: Candidate value, or None if absent there.
        change: Relative change ``(candidate − baseline) /
            |baseline|``, or None when undefined.
        regression: Whether the change crosses the threshold in the
            metric's bad direction.
    """

    name: str
    baseline: float | None
    candidate: float | None
    change: float | None
    regression: bool


def _direction(name: str) -> int:
    """+1 higher-is-better, −1 lower-is-better, 0 informational."""
    if any(name.endswith(suffix) for suffix in _HIGHER_BETTER):
        return 1
    if any(name.endswith(suffix) for suffix in _LOWER_BETTER):
        return -1
    return 0


def _flatten_bench(data: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a ``BENCH_sim.json`` document into metric names."""
    flat: Dict[str, float] = {}
    for section in ("kernel", "faulted_kernel", "bursty_kernel",
                    "scaling", "streaming"):
        block = data.get(section)
        if not isinstance(block, dict):
            continue
        for row in block.get("rows", []):
            prefix = f"{section}.n{row.get('n_elements')}"
            for tag in ("scenario", "mode"):
                if row.get(tag) is not None:
                    prefix = f"{prefix}.{row[tag]}"
            for key, value in row.items():
                if key in ("n_elements", "scenario", "mode",
                           "engine", "freshness_checksum"):
                    continue
                try:
                    flat[f"{prefix}.{key}"] = float(value)
                except (TypeError, ValueError):
                    continue
    parallel = data.get("parallel")
    if isinstance(parallel, dict):
        for key, value in parallel.items():
            try:
                flat[f"parallel.{key}"] = float(value)
            except (TypeError, ValueError):
                continue
    return flat


def load_metrics(path: str | Path) -> Dict[str, float]:
    """Load one artifact as a flat ``name -> value`` inventory.

    A file whose whole body parses as a single JSON object is treated
    as ``BENCH_sim.json``; anything else is read as a JSONL telemetry
    tape (counters, gauges and a ledger summary — entry count, stale
    count and max staleness).

    Args:
        path: The artifact to load.

    Returns:
        The flattened metric inventory.

    Raises:
        FileNotFoundError: When the artifact does not exist.
        ValueError: When the artifact is neither format.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        flat = _flatten_bench(data)
        if not flat:
            raise ValueError(
                f"{path} parsed as JSON but has no kernel, scaling "
                "or parallel sections — not a BENCH_sim.json "
                "document")
        return flat
    registry = read_jsonl(path)
    if (not registry.counters and not registry.gauges
            and not registry.events and not registry.ledger):
        raise ValueError(f"{path} is neither a BENCH_sim.json "
                         "document nor a telemetry tape")
    flat = {f"counter.{name}": float(value)
            for name, value in registry.counters.items()}
    flat.update({f"gauge.{name}": float(value)
                 for name, value in registry.gauges.items()})
    if registry.ledger:
        snapshot = registry.ledger.staleness_snapshot()
        flat["ledger.elements"] = float(len(snapshot))
        flat["ledger.stale_now"] = float(
            sum(1 for _, seconds in snapshot if seconds > 0.0))
        flat["ledger.max_staleness"] = float(
            max((seconds for _, seconds in snapshot), default=0.0))
    return flat


def diff_metrics(baseline: Dict[str, float],
                 candidate: Dict[str, float], *,
                 threshold: float = 0.1) -> List[DiffRow]:
    """Compare two metric inventories.

    Args:
        baseline: The reference inventory.
        candidate: The inventory under test.
        threshold: Relative tolerance before a directional metric's
            change counts as a regression (0.1 = 10%).

    Returns:
        One row per metric in either inventory, sorted with
        regressions first, then by name.
    """
    rows: List[DiffRow] = []
    for name in sorted(set(baseline) | set(candidate)):
        base = baseline.get(name)
        cand = candidate.get(name)
        change: float | None = None
        regression = False
        if base is not None and cand is not None and base:
            change = (cand - base) / abs(base)
            direction = _direction(name)
            if direction > 0:
                regression = change < -threshold
            elif direction < 0:
                regression = change > threshold
        elif base is not None and cand is None:
            # A directional metric vanishing from the candidate is a
            # regression too — a silently skipped benchmark section
            # must not read as a pass.
            regression = _direction(name) != 0
        rows.append(DiffRow(name=name, baseline=base, candidate=cand,
                            change=change, regression=regression))
    rows.sort(key=lambda row: (not row.regression, row.name))
    return rows


def format_diff(rows: List[DiffRow], *, threshold: float,
                only_changed: bool = True) -> str:
    """Render a diff as the CLI table.

    Args:
        rows: Output of :func:`diff_metrics`.
        threshold: The tolerance used, echoed in the header.
        only_changed: Hide rows whose relative change is below 1e-12
            (directional or not); regressions always show.

    Returns:
        The rendered table plus a one-line verdict.
    """
    shown = [row for row in rows
             if row.regression or not only_changed
             or row.change is None or abs(row.change) > 1e-12]
    cells = []
    for row in shown:
        cells.append((
            row.name,
            "-" if row.baseline is None else f"{row.baseline:g}",
            "-" if row.candidate is None else f"{row.candidate:g}",
            "-" if row.change is None else f"{row.change:+.1%}",
            "REGRESSION" if row.regression else "",
        ))
    n_regressions = sum(row.regression for row in rows)
    header = (f"obs diff ({len(rows)} metrics, threshold "
              f"{threshold:.0%})")
    if not cells:
        return header + "\nno changes\n"
    table = _format_table(
        ["metric", "baseline", "candidate", "change", "flag"], cells)
    verdict = (f"{n_regressions} regression(s) past the threshold"
               if n_regressions else "no regressions")
    return f"{header}\n{table}\n{verdict}\n"
