"""FL008 — no import cycles inside a package.

Import cycles are how "just add one import" turns into
``ImportError: partially initialized module``: whether the program
crashes depends on which module happens to be imported first.  The
repository's layering (``errors`` < ``obs`` < ``contracts`` <
``numerics`` < ``core`` < ``sim`` < ``runtime``) only stays acyclic if
something checks it, so this rule builds the module-level import graph
of the package containing the linted file and flags every import that
lies on a cycle.

Only imports executed at module import time count: imports inside
``if TYPE_CHECKING:`` blocks (annotations only) and inside function
bodies (deferred, the standard cycle-breaking idiom) are excluded.
Class bodies are also excluded — a class-level import is exotic enough
that deferring judgement beats false positives.
"""

from __future__ import annotations

import ast
from collections import deque
from pathlib import Path
from typing import Iterator, Mapping

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["ImportCycles"]

#: One import edge: (target module, source line, source column).
_Edge = tuple[str, int, int]


def _package_root(path: Path) -> Path | None:
    """Topmost package directory containing ``path`` (None if loose)."""
    directory = path.parent
    if not (directory / "__init__.py").exists():
        return None
    while (directory.parent / "__init__.py").exists():
        directory = directory.parent
    return directory


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to ``root``'s parent."""
    relative = path.resolve().relative_to(root.parent.resolve())
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _mentions_type_checking(test: ast.expr) -> bool:
    return any((isinstance(node, ast.Name)
                and node.id == "TYPE_CHECKING")
               or (isinstance(node, ast.Attribute)
                   and node.attr == "TYPE_CHECKING")
               for node in ast.walk(test))


def _import_time_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements executed when the module is imported.

    Descends through module-level ``if``/``try`` blocks (minus
    ``if TYPE_CHECKING:`` bodies) but never into function or class
    bodies.
    """
    pending: deque[ast.stmt] = deque(tree.body)
    while pending:
        statement = pending.popleft()
        if isinstance(statement, ast.If):
            if not _mentions_type_checking(statement.test):
                pending.extend(statement.body)
            pending.extend(statement.orelse)
        elif isinstance(statement, ast.Try):
            pending.extend(statement.body)
            for handler in statement.handlers:
                pending.extend(handler.body)
            pending.extend(statement.orelse)
            pending.extend(statement.finalbody)
        else:
            yield statement


def _edges_of(tree: ast.Module, module: str, is_package: bool,
              modules: frozenset[str]) -> list[_Edge]:
    """Intra-package import edges of one module."""
    edges: list[_Edge] = []

    def add(target: str, node: ast.stmt) -> None:
        if target in modules and target != module:
            edges.append((target, node.lineno, node.col_offset))

    package_parts = module.split(".") if is_package \
        else module.split(".")[:-1]
    for statement in _import_time_statements(tree):
        if isinstance(statement, ast.Import):
            for name in statement.names:
                add(name.name, statement)
        elif isinstance(statement, ast.ImportFrom):
            if statement.level:
                base = package_parts[:len(package_parts)
                                     - (statement.level - 1)]
                if not base:
                    continue  # relative import escaping the package
                prefix = base + (statement.module.split(".")
                                 if statement.module else [])
            elif statement.module is not None:
                prefix = statement.module.split(".")
            else:
                continue
            dotted = ".".join(prefix)
            for name in statement.names:
                submodule = f"{dotted}.{name.name}"
                if submodule in modules:
                    add(submodule, statement)
                else:
                    add(dotted, statement)
    return edges


class ImportCycles(Rule):
    """Flag module-level imports that close an import cycle."""

    code = "FL008"
    name = "no-import-cycles"
    summary = "no module-level import cycles within a package"

    def __init__(self) -> None:
        self._graphs: dict[Path, Mapping[str, list[_Edge]]] = {}

    def _graph_for(self, root: Path) -> Mapping[str, list[_Edge]]:
        """Import graph of the package rooted at ``root`` (cached)."""
        cached = self._graphs.get(root)
        if cached is not None:
            return cached
        modules: dict[str, tuple[ast.Module, bool]] = {}
        for path in sorted(root.rglob("*.py")):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"),
                                 filename=str(path))
            except SyntaxError:
                continue  # FL999 already covers unparsable files
            modules[_module_name(path, root)] = (
                tree, path.name == "__init__.py")
        names = frozenset(modules)
        graph = {module: _edges_of(tree, module, is_package, names)
                 for module, (tree, is_package) in modules.items()}
        self._graphs[root] = graph
        return graph

    @staticmethod
    def _path_back(graph: Mapping[str, list[_Edge]], start: str,
                   goal: str) -> list[str] | None:
        """Shortest import chain ``start -> ... -> goal`` (BFS)."""
        parents: dict[str, str | None] = {start: None}
        queue: deque[str] = deque([start])
        while queue:
            module = queue.popleft()
            if module == goal:
                chain = [module]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                return list(reversed(chain))
            for target, _, _ in graph.get(module, ()):
                if target not in parents:
                    parents[target] = module
                    queue.append(target)
        return None

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_library:
            return
        root = _package_root(context.path)
        if root is None:
            return
        graph = self._graph_for(root)
        module = _module_name(context.path, root)
        for target, lineno, column in graph.get(module, ()):
            chain = self._path_back(graph, target, module)
            if chain is not None:
                cycle = " -> ".join([module, *chain])
                yield Violation(
                    code=self.code, path=context.path, line=lineno,
                    column=column,
                    message=f"import cycle: {cycle}; break it with a "
                            "deferred (function-scope) import or by "
                            "moving the shared piece down a layer")
