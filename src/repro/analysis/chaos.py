"""The chaos harness: named outage scenarios, blind vs degraded.

``repro chaos`` answers the robustness question the fault subsystem
exists for: *when the sync path degrades, how much perceived
freshness does application-aware replanning buy back?*  For one
:class:`~repro.faults.scenarios.ChaosScenario` it runs three
managers over the same hidden workload:

* **fault-free** — no faults at all; the ceiling.
* **blind** — the scenario's faults, but the manager plans as if the
  wire were perfect (``fault_aware=False``).
* **degraded** — the same faults, with loss-derated bandwidth,
  outage replanning and heartbeat probes (``fault_aware=True``).

All three arms share the workload seed, so the per-period PF series
line up and the report reads as degradation (ceiling − blind) and
recovery (degraded − blind).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.analysis.tables import format_table
from repro.core.selection import SpaceConstrainedFreshener
from repro.errors import ValidationError
from repro.faults.breaker import CircuitBreaker
from repro.faults.scenarios import CHAOS_SCENARIOS, ChaosScenario
from repro.obs import registry as obs
from repro.parallel import parallel_map, seed_rng
from repro.runtime.manager import AdaptiveMirrorManager, PeriodReport
from repro.workloads.catalog import Catalog
from repro.workloads.presets import ExperimentSetup, build_catalog

__all__ = ["CHAOS_SETUP", "ChaosReport", "chaos_report_to_dict",
           "format_chaos_report", "run_chaos"]

#: Default workload for chaos runs: small enough that a full
#: three-arm scenario finishes in seconds, busy enough (update rate
#: well above B) that lost bandwidth shows up in PF, and skewed
#: enough (theta=1.4) that the blind manager's late-period dead zone
#: — the ledger saturates ~1/(1−loss) of the way through each period
#: and every later poll is denied — lands on hot, fast-changing
#: elements instead of averaging out.
CHAOS_SETUP = ExperimentSetup(n_objects=60, updates_per_period=180.0,
                              syncs_per_period=80.0, theta=1.4,
                              update_std_dev=1.0)


@dataclass(frozen=True)
class ChaosReport:
    """Three aligned PF series and their summary statistics.

    Attributes:
        scenario: The scenario that was run.
        n_periods: Periods simulated per arm.
        warmup: Leading periods excluded from the means (both
            managers start belief-blind, so early periods measure
            learning, not resilience).
        baseline_pf: Per-period monitored PF of the fault-free arm.
        blind_pf: Per-period monitored PF of the fault-blind arm.
        aware_pf: Per-period monitored PF of the degraded-mode arm.
        blind_failed: Failed wire attempts per period, blind arm.
        aware_failed: Failed wire attempts per period, degraded arm.
        blind_retries: Retries per period, blind arm.
        aware_retries: Retries per period, degraded arm.
        blind_suppressed: Retries refused by the shared herding
            admission gate per period, blind arm (all-zero when the
            scenario carries no gate).
        aware_suppressed: Gate-suppressed retries per period,
            degraded arm.
    """

    scenario: ChaosScenario
    n_periods: int
    warmup: int
    baseline_pf: np.ndarray
    blind_pf: np.ndarray
    aware_pf: np.ndarray
    blind_failed: np.ndarray
    aware_failed: np.ndarray
    blind_retries: np.ndarray
    aware_retries: np.ndarray
    blind_suppressed: np.ndarray
    aware_suppressed: np.ndarray

    def _steady(self, series: np.ndarray) -> float:
        return float(series[self.warmup:].mean())

    @property
    def baseline_mean(self) -> float:
        """Post-warmup mean PF with no faults (the ceiling)."""
        return self._steady(self.baseline_pf)

    @property
    def blind_mean(self) -> float:
        """Post-warmup mean PF of the fault-blind manager."""
        return self._steady(self.blind_pf)

    @property
    def aware_mean(self) -> float:
        """Post-warmup mean PF of the degraded-mode manager."""
        return self._steady(self.aware_pf)

    @property
    def degradation(self) -> float:
        """PF the faults cost a blind manager (ceiling − blind)."""
        return self.baseline_mean - self.blind_mean

    @property
    def recovery(self) -> float:
        """PF degraded-mode planning buys back (degraded − blind)."""
        return self.aware_mean - self.blind_mean

    @property
    def blind_suppressed_total(self) -> int:
        """Total gate-suppressed retries across the blind arm."""
        return int(self.blind_suppressed.sum())

    @property
    def aware_suppressed_total(self) -> int:
        """Total gate-suppressed retries across the degraded arm."""
        return int(self.aware_suppressed.sum())


def _run_arm(catalog: Catalog, scenario: ChaosScenario, *,
             faulty: bool,
             fault_aware: bool, bandwidth: float,
             request_rate: float, n_periods: int, seed: int,
             replan_every: int) -> list[PeriodReport]:
    """One chaos arm (module-level so ``jobs>1`` can pickle it)."""
    plan = (scenario.plan(catalog.n_elements, float(n_periods))
            if faulty else None)
    breaker = None
    shard_of = None
    topology = (scenario.topology(catalog.n_elements)
                if faulty else None)
    if faulty and scenario.breaker_threshold is not None:
        breaker = CircuitBreaker(
            scenario.n_shards(catalog.n_elements),
            failure_threshold=scenario.breaker_threshold,
            cooldown=scenario.breaker_cooldown)
        shard_of = scenario.shard_of(catalog.n_elements)
    freshener = None
    if scenario.selection_capacity_fraction is not None:
        # The §7 space-constrained path, in *every* arm (including
        # the fault-free ceiling) so the comparison isolates fault
        # handling, not planner choice.
        freshener = SpaceConstrainedFreshener(
            float(catalog.sizes.sum())
            * scenario.selection_capacity_fraction)
    manager = AdaptiveMirrorManager(
        catalog, bandwidth, request_rate=request_rate,
        rng=seed_rng(seed),
        freshener=freshener,
        fault_plan=plan,
        retry_policy=(scenario.retry_policy_for_run()
                      if faulty else None),
        breaker=breaker,
        shard_of=shard_of,
        topology=topology,
        fault_aware=fault_aware,
        replan_every=replan_every)
    return manager.run(n_periods)


def _run_arm_spec(spec: tuple[str, bool, bool],
                  catalog: Catalog, scenario: ChaosScenario, *,
                  bandwidth: float, request_rate: float,
                  n_periods: int, seed: int,
                  replan_every: int) -> list[PeriodReport]:
    """Adapt an ``(label, faulty, aware)`` spec for the executor."""
    _, faulty, aware = spec
    return _run_arm(catalog, scenario, faulty=faulty,
                    fault_aware=aware, bandwidth=bandwidth,
                    request_rate=request_rate, n_periods=n_periods,
                    seed=seed, replan_every=replan_every)


#: The three arms every chaos run compares.
_ARM_SPECS: tuple[tuple[str, bool, bool], ...] = (
    ("baseline", False, True),
    ("blind", True, False),
    ("aware", True, True),
)


def run_chaos(scenario: str | ChaosScenario, *,
              setup: ExperimentSetup | None = None,
              n_periods: int = 60, warmup: int = 10, seed: int = 0,
              request_rate: float | None = None,
              replan_every: int = 3, jobs: int = 1) -> ChaosReport:
    """Run one chaos scenario: fault-free vs blind vs degraded.

    Args:
        scenario: A :data:`CHAOS_SCENARIOS` name or a scenario.
        setup: Workload preset (:data:`CHAOS_SETUP` by default).
        n_periods: Periods per arm, > ``warmup``.
        warmup: Leading periods excluded from the summary means.
        seed: Workload seed; each arm's simulator gets the same
            derived seed so the series are paired.
        request_rate: Accesses per period (defaults to
            ``12 × n_objects`` — enough samples that per-period PF is
            a stable estimate).
        replan_every: Replan cadence handed to every manager.
        jobs: Worker processes for the three arms (1 = serial,
            bit-identical; the arms share the same derived seed
            either way, preserving the paired-series design).

    Returns:
        The :class:`ChaosReport` with the three aligned series.
    """
    if isinstance(scenario, str):
        try:
            scenario = CHAOS_SCENARIOS[scenario]
        except KeyError:
            known = ", ".join(sorted(CHAOS_SCENARIOS))
            raise ValidationError(
                f"unknown chaos scenario {scenario!r} "
                f"(known: {known})") from None
    if n_periods <= warmup:
        raise ValidationError(
            f"n_periods ({n_periods}) must exceed warmup ({warmup})")
    setup = CHAOS_SETUP if setup is None else setup
    catalog = build_catalog(setup, seed=seed)
    bandwidth = setup.syncs_per_period
    if request_rate is None:
        request_rate = 12.0 * setup.n_objects

    with obs.span(f"chaos.{scenario.name}"):
        runner = partial(_run_arm_spec, catalog=catalog,
                         scenario=scenario, bandwidth=bandwidth,
                         request_rate=request_rate,
                         n_periods=n_periods, seed=seed + 1,
                         replan_every=replan_every)
        arm_results = parallel_map(runner, _ARM_SPECS, jobs=jobs,
                                   label="parallel.chaos")
        arms = {spec[0]: result
                for spec, result in zip(_ARM_SPECS, arm_results)}

    def series(label: str, pick) -> np.ndarray:
        return np.array([pick(report) for report in arms[label]])

    report = ChaosReport(
        scenario=scenario,
        n_periods=n_periods,
        warmup=warmup,
        baseline_pf=series("baseline", lambda r: r.monitored_pf),
        blind_pf=series("blind", lambda r: r.monitored_pf),
        aware_pf=series("aware", lambda r: r.monitored_pf),
        blind_failed=series("blind", lambda r: r.failed_polls),
        aware_failed=series("aware", lambda r: r.failed_polls),
        blind_retries=series("blind", lambda r: r.retries),
        aware_retries=series("aware", lambda r: r.retries),
        blind_suppressed=series("blind",
                                lambda r: r.suppressed_retries),
        aware_suppressed=series("aware",
                                lambda r: r.suppressed_retries),
    )
    if obs.telemetry_enabled():
        obs.counter_add("chaos.runs")
        obs.gauge_set("chaos.degradation", report.degradation)
        obs.gauge_set("chaos.recovery", report.recovery)
        obs.event("chaos.report", scenario=scenario.name,
                  n_periods=n_periods,
                  baseline_pf=report.baseline_mean,
                  blind_pf=report.blind_mean,
                  aware_pf=report.aware_mean,
                  degradation=report.degradation,
                  recovery=report.recovery,
                  suppressed_retries=report.aware_suppressed_total)
    return report


def format_chaos_report(report: ChaosReport, *,
                        every: int = 1) -> str:
    """Render a chaos report as the CLI's text block.

    Args:
        report: The report to render.
        every: Print every ``every``-th period row (the summary
            always reflects all periods).

    Returns:
        A multi-line string: scenario header, per-period PF table,
        and the degradation/recovery summary.
    """
    rows = []
    for index in range(0, report.n_periods, max(every, 1)):
        rows.append((index + 1,
                     float(report.baseline_pf[index]),
                     float(report.blind_pf[index]),
                     float(report.aware_pf[index]),
                     int(report.aware_failed[index]),
                     int(report.aware_retries[index])))
    table = format_table(
        ["period", "fault-free", "blind", "degraded",
         "failed", "retries"], rows)
    lines = [
        f"chaos scenario {report.scenario.name!r} — "
        f"{report.scenario.description}",
        table,
        "",
        f"post-warmup means (periods {report.warmup + 1}-"
        f"{report.n_periods}):",
        f"  fault-free ceiling   {report.baseline_mean:.4f}",
        f"  fault-blind manager  {report.blind_mean:.4f}",
        f"  degraded-mode manager {report.aware_mean:.4f}",
        f"  degradation (ceiling - blind)  {report.degradation:+.4f}",
        f"  recovery (degraded - blind)    {report.recovery:+.4f}",
    ]
    if report.scenario.gate_capacity is not None:
        lines.append(
            f"  herding-gate suppressed retries  blind "
            f"{report.blind_suppressed_total}, degraded "
            f"{report.aware_suppressed_total}")
    return "\n".join(lines)


def chaos_report_to_dict(report: ChaosReport) -> dict:
    """Flatten a chaos report into a JSON-serializable dict.

    The CLI's ``--report-json`` artifact and CI's chaos-smoke job
    both consume this shape; series are plain lists, summary scalars
    are floats/ints.
    """
    return {
        "scenario": report.scenario.name,
        "description": report.scenario.description,
        "n_periods": report.n_periods,
        "warmup": report.warmup,
        "baseline_pf": [float(x) for x in report.baseline_pf],
        "blind_pf": [float(x) for x in report.blind_pf],
        "aware_pf": [float(x) for x in report.aware_pf],
        "blind_failed": [int(x) for x in report.blind_failed],
        "aware_failed": [int(x) for x in report.aware_failed],
        "blind_retries": [int(x) for x in report.blind_retries],
        "aware_retries": [int(x) for x in report.aware_retries],
        "blind_suppressed": [int(x) for x in report.blind_suppressed],
        "aware_suppressed": [int(x) for x in report.aware_suppressed],
        "baseline_mean": report.baseline_mean,
        "blind_mean": report.blind_mean,
        "aware_mean": report.aware_mean,
        "degradation": report.degradation,
        "recovery": report.recovery,
        "blind_suppressed_total": report.blind_suppressed_total,
        "aware_suppressed_total": report.aware_suppressed_total,
    }
