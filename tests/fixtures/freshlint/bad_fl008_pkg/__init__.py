"""FL008 fixture: package whose two modules import each other."""
