"""Tests for analysis result containers and rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.plots import ascii_plot
from repro.analysis.series import Series, SweepResult
from repro.analysis.tables import format_sweep, format_table
from repro.errors import ValidationError


def make_sweep():
    x = np.array([1.0, 2.0, 3.0])
    return SweepResult(name="demo", x_label="k", y_label="pf",
                       series=(Series(label="a", x=x,
                                      y=np.array([0.1, 0.2, 0.3])),
                               Series(label="b", x=x,
                                      y=np.array([0.3, 0.2, 0.1]))))


class TestSeries:
    def test_validates_shapes(self):
        with pytest.raises(ValidationError):
            Series(label="bad", x=np.array([1.0]),
                   y=np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            Series(label="bad", x=np.ones((2, 2)), y=np.ones((2, 2)))

    def test_len(self):
        series = Series(label="s", x=np.arange(4.0), y=np.arange(4.0))
        assert len(series) == 4


class TestSweepResult:
    def test_get_by_label(self):
        sweep = make_sweep()
        assert sweep.get("a").y[0] == pytest.approx(0.1)

    def test_get_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            make_sweep().get("zzz")

    def test_labels(self):
        assert make_sweep().labels == ["a", "b"]


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(["name", "value"],
                             [["x", 0.5], ["longer", 1.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "0.5000" in table
        assert "1.2500" in table
        # All lines equal width.
        assert len({len(line) for line in lines}) == 1

    def test_custom_float_format(self):
        table = format_table(["v"], [[0.123456]],
                             float_format="{:.2f}")
        assert "0.12" in table

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_non_float_cells_stringified(self):
        table = format_table(["n"], [[42], ["text"]])
        assert "42" in table
        assert "text" in table


class TestFormatSweep:
    def test_contains_all_series(self):
        output = format_sweep(make_sweep())
        assert "demo" in output
        assert "a" in output and "b" in output
        assert "0.3000" in output

    def test_rejects_mismatched_grids(self):
        sweep = SweepResult(
            name="bad", x_label="x", y_label="y",
            series=(Series(label="a", x=np.array([1.0]),
                           y=np.array([1.0])),
                    Series(label="b", x=np.array([2.0]),
                           y=np.array([2.0]))))
        with pytest.raises(ValidationError):
            format_sweep(sweep)

    def test_empty_sweep(self):
        sweep = SweepResult(name="empty", x_label="x", y_label="y",
                            series=())
        assert "no series" in format_sweep(sweep)


class TestAsciiPlot:
    def test_renders_with_legend(self):
        output = ascii_plot(make_sweep())
        assert "legend:" in output
        assert "* a" in output
        assert "o b" in output

    def test_plot_area_contains_markers(self):
        output = ascii_plot(make_sweep())
        assert "*" in output
        assert "o" in output

    def test_rejects_tiny_area(self):
        with pytest.raises(ValidationError):
            ascii_plot(make_sweep(), width=2, height=2)

    def test_handles_constant_series(self):
        x = np.array([1.0, 2.0])
        sweep = SweepResult(name="flat", x_label="x", y_label="y",
                            series=(Series(label="c", x=x,
                                           y=np.array([1.0, 1.0])),))
        output = ascii_plot(sweep)
        assert "flat" in output

    def test_skips_non_finite_points(self):
        x = np.array([1.0, 2.0, 3.0])
        sweep = SweepResult(
            name="gaps", x_label="x", y_label="y",
            series=(Series(label="g", x=x,
                           y=np.array([1.0, np.inf, 2.0])),))
        output = ascii_plot(sweep)
        assert "gaps" in output
