"""Statistical laws of the change-rate estimators.

Consistency, bias ordering, and invariances that must hold for the
censored-Poisson machinery the adaptive runtime leans on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.change_rate import (
    bias_reduced_rate_estimate,
    mle_rate_estimate,
    naive_rate_estimate,
)
from repro.estimation.ttl import (
    expected_fresh_probability,
    rate_from_ttl,
    ttl_for_confidence,
)


def observed_changes(rng, rate, interval, polls):
    return float((rng.poisson(rate * interval, size=polls) > 0).sum())


class TestConsistency:
    @pytest.mark.parametrize("rate", [0.5, 2.0])
    def test_error_shrinks_with_sample_size(self, rate):
        """RMSE of the bias-reduced estimator over many repetitions
        falls as the poll count grows (consistency)."""
        rng = np.random.default_rng(0)
        interval = 0.5

        def rmse(polls: int, repetitions: int = 200) -> float:
            errors = []
            for _ in range(repetitions):
                k = observed_changes(rng, rate, interval, polls)
                estimate = bias_reduced_rate_estimate(
                    np.array([float(polls)]), np.array([k]),
                    interval)[0]
                errors.append((estimate - rate) ** 2)
            return float(np.sqrt(np.mean(errors)))

        assert rmse(800) < rmse(50)

    @given(st.floats(min_value=0.1, max_value=4.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_naive_never_exceeds_mle(self, rate, seed):
        """−ln(1−x) ≥ x: the censoring correction only raises the
        estimate."""
        rng = np.random.default_rng(seed)
        interval = 0.5
        polls = 500
        k = observed_changes(rng, rate, interval, polls)
        if k == polls:
            return  # MLE undefined at saturation
        naive = naive_rate_estimate(np.array([float(polls)]),
                                    np.array([k]), interval)[0]
        mle = mle_rate_estimate(np.array([float(polls)]),
                                np.array([k]), interval)[0]
        assert naive <= mle + 1e-12

    @given(st.integers(min_value=1, max_value=2000),
           st.floats(min_value=0.05, max_value=4.0))
    @settings(max_examples=50)
    def test_bias_reduced_below_mle_and_finite(self, polls, interval):
        """The +0.5 corrections shrink the estimate slightly and keep
        it finite even at saturation."""
        n = np.array([float(polls)])
        for k in (0.0, polls / 2.0, float(polls)):
            reduced = bias_reduced_rate_estimate(n, np.array([k]),
                                                 interval)[0]
            assert np.isfinite(reduced)
            mle = mle_rate_estimate(n, np.array([k]), interval)[0]
            assert reduced <= mle + 1e-12

    @given(st.floats(min_value=0.1, max_value=5.0),
           st.floats(min_value=0.1, max_value=2.0),
           st.floats(min_value=1.5, max_value=4.0))
    @settings(max_examples=40)
    def test_interval_scale_invariance(self, rate, interval, factor):
        """The same change *fraction* observed at interval c·I implies
        a rate c times smaller — exactly."""
        n = np.array([100.0])
        k = np.array([40.0])
        base = mle_rate_estimate(n, k, interval)[0]
        stretched = mle_rate_estimate(n, k, interval * factor)[0]
        assert stretched * factor == pytest.approx(base, rel=1e-12)


class TestTtlLaws:
    @given(st.floats(min_value=0.05, max_value=10.0),
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60)
    def test_ttl_survival_consistency(self, rate, confidence):
        """Survival at the fitted TTL equals the stated confidence."""
        ttl = ttl_for_confidence(np.array([rate]), confidence)[0]
        survived = expected_fresh_probability(np.array([rate]),
                                              float(ttl))[0]
        assert survived == pytest.approx(confidence, rel=1e-9)

    @given(st.floats(min_value=0.05, max_value=10.0),
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60)
    def test_rate_ttl_inverse_pair(self, rate, confidence):
        ttl = ttl_for_confidence(np.array([rate]), confidence)
        recovered = rate_from_ttl(ttl, confidence=confidence)[0]
        assert recovered == pytest.approx(rate, rel=1e-9)

    @given(st.floats(min_value=0.05, max_value=10.0))
    @settings(max_examples=40)
    def test_higher_confidence_means_shorter_ttl(self, rate):
        loose = ttl_for_confidence(np.array([rate]), 0.5)[0]
        strict = ttl_for_confidence(np.array([rate]), 0.9)[0]
        assert strict < loose
