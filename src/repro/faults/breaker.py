"""Per-shard circuit breakers for the sync channel.

A breaker guards each shard of the source: after ``failure_threshold``
consecutive failed polls the shard's circuit *opens* and further polls
fast-fail without burning bandwidth; after a cooldown the circuit
goes *half-open* and admits probe polls; a successful probe closes
it, a failed probe re-opens it.  This is the standard
closed → open → half-open machine, run on *simulated* time (the
caller passes every timestamp, so replay is deterministic).

State transitions are emitted on the telemetry tape as
``breaker.transition`` events and counted under ``breaker.opened`` /
``breaker.closed`` / ``breaker.probes`` (no-ops unless telemetry is
enabled).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import ValidationError
from repro.obs import registry as obs

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(Enum):
    """The three classic circuit-breaker states."""

    #: Polls flow normally; consecutive failures are counted.
    CLOSED = 0
    #: Polls fast-fail; no bandwidth is spent on the shard.
    OPEN = 1
    #: Probe polls are admitted to test whether the shard recovered.
    HALF_OPEN = 2


class CircuitBreaker:
    """Consecutive-failure circuit breakers, one per shard.

    Args:
        n_shards: Number of guarded shards, >= 1.
        failure_threshold: Consecutive failures that open a closed
            circuit, >= 1 (dimensionless count).
        cooldown: Simulated time an open circuit waits before going
            half-open, in period units, > 0.
    """

    def __init__(self, n_shards: int, *, failure_threshold: int = 3,
                 cooldown: float = 1.0) -> None:
        if n_shards < 1:
            raise ValidationError(
                f"n_shards must be >= 1, got {n_shards}")
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got "
                f"{failure_threshold}")
        if cooldown <= 0.0:
            raise ValidationError(
                f"cooldown must be > 0, got {cooldown}")
        self._n = n_shards
        self._threshold = failure_threshold
        self._cooldown = cooldown
        self._state = np.full(n_shards, BreakerState.CLOSED.value,
                              dtype=np.int8)
        self._streak = np.zeros(n_shards, dtype=np.int64)
        self._opened_at = np.zeros(n_shards)
        self._transitions = 0

    @property
    def n_shards(self) -> int:
        """Number of guarded shards."""
        return self._n

    @property
    def total_transitions(self) -> int:
        """State transitions performed so far (dimensionless count)."""
        return self._transitions

    def state_of(self, shard: int) -> BreakerState:
        """The shard's current state."""
        self._check(shard)
        return BreakerState(int(self._state[shard]))

    def open_mask(self) -> np.ndarray:
        """Boolean mask of shards whose circuit is currently OPEN.

        Half-open shards are *not* included: they are already probing
        and should stay in the replanner's reachable set.
        """
        return self._state == BreakerState.OPEN.value

    def tripped_mask(self) -> np.ndarray:
        """Boolean mask of shards not fully closed (OPEN or HALF_OPEN)."""
        return self._state != BreakerState.CLOSED.value

    def allow(self, shard: int, time: float) -> bool:
        """Whether a poll of ``shard`` may proceed at simulated ``time``.

        An open circuit past its cooldown transitions to half-open
        here (and admits the poll as a probe).

        Args:
            shard: Shard index.
            time: Simulated clock time, in period units.

        Returns:
            True when the poll should be attempted.
        """
        self._check(shard)
        state = self._state[shard]
        if state == BreakerState.CLOSED.value:
            return True
        if state == BreakerState.OPEN.value:
            if time >= self._opened_at[shard] + self._cooldown:
                self._transition(shard, BreakerState.HALF_OPEN, time)
                obs.counter_add("breaker.probes")
                return True
            return False
        obs.counter_add("breaker.probes")
        return True

    def record_success(self, shard: int, time: float) -> None:
        """Record a successful poll: reset the streak, close the circuit.

        Args:
            shard: Shard index.
            time: Simulated clock time, in period units.
        """
        self._check(shard)
        self._streak[shard] = 0
        if self._state[shard] != BreakerState.CLOSED.value:
            self._transition(shard, BreakerState.CLOSED, time)
            obs.counter_add("breaker.closed")

    def record_failure(self, shard: int, time: float) -> None:
        """Record a failed poll: bump the streak, maybe open the circuit.

        A half-open probe failure re-opens immediately; a closed
        circuit opens once the consecutive-failure streak reaches the
        threshold.

        Args:
            shard: Shard index.
            time: Simulated clock time, in period units.
        """
        self._check(shard)
        self._streak[shard] += 1
        state = self._state[shard]
        if state == BreakerState.HALF_OPEN.value:
            self._opened_at[shard] = time
            self._transition(shard, BreakerState.OPEN, time)
            obs.counter_add("breaker.opened")
        elif (state == BreakerState.CLOSED.value
              and self._streak[shard] >= self._threshold):
            self._opened_at[shard] = time
            self._transition(shard, BreakerState.OPEN, time)
            obs.counter_add("breaker.opened")

    def _transition(self, shard: int, to: BreakerState,
                    time: float) -> None:
        before = BreakerState(int(self._state[shard]))
        self._state[shard] = to.value
        self._transitions += 1
        obs.event("breaker.transition",
                  shard=obs.element_label(shard),
                  from_state=before.name.lower(),
                  to_state=to.name.lower(), sim_time=float(time))

    def _check(self, shard: int) -> None:
        if not 0 <= shard < self._n:
            raise ValidationError(
                f"shard {shard} outside [0, {self._n})")
