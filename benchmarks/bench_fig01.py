"""Figure 1 — the relationship among f, λ and p (solution curves).

Paper claims: for a given change rate λ an element needs more
bandwidth as its access probability p increases; each curve has a
cutoff change rate beyond which the element receives no bandwidth,
and the cutoff scales with p.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure1
from repro.analysis.tables import format_sweep


def test_figure1(benchmark, report):
    sweep = benchmark(figure1)

    low = sweep.get("p=0.0333")
    mid = sweep.get("p=0.0667")
    high = sweep.get("p=0.1333")
    both = (low.y > 0.0) & (high.y > 0.0)
    assert (high.y[both] >= low.y[both]).all()
    # Cutoffs: the low-p curve dies first as λ grows.
    assert (low.y > 0).sum() < (mid.y > 0).sum() < (high.y > 0).sum()

    # Print a decimated version of the curves.
    from repro.analysis.series import Series, SweepResult
    keep = slice(None, None, 12)
    decimated = SweepResult(
        name=sweep.name, x_label=sweep.x_label, y_label=sweep.y_label,
        series=tuple(Series(label=s.label, x=s.x[keep], y=s.y[keep])
                     for s in sweep.series),
        notes=sweep.notes)
    report("figure01", format_sweep(decimated))
