"""Event representation for the freshening simulator.

The simulator is event-driven: three kinds of events touch an element
— a source-side *update*, a mirror-side *sync*, and a user *access*.
Streams of homogeneous events are generated in bulk (vectorized) and
then merged into one time-ordered tape which the simulation replays.

Tie-breaking at identical timestamps is by event kind: updates apply
before syncs (a sync at the same instant picks up the new version),
and accesses observe last (they see the post-sync state).  This makes
simultaneous-event semantics deterministic.

Memory discipline: a tape is three parallel arrays (structure of
arrays) — float64 times, int32 element ids, int8 kinds — 13 bytes
per event instead of 24, which is what keeps 10⁶-element replay
windows resident.  Element ids are validated to fit int32 (2³¹
elements is far past the catalog sizes the solvers handle); the
window batcher widens ids to int64 itself when it tiles several
periods into one virtual element space.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable

import numpy as np

from repro.errors import ValidationError

__all__ = ["EventKind", "EventStream", "merge_streams"]


class EventKind(IntEnum):
    """Event kinds, ordered by same-instant application priority."""

    UPDATE = 0
    SYNC = 1
    ACCESS = 2


@dataclass(frozen=True)
class EventStream:
    """A homogeneous, time-sorted stream of events.

    Attributes:
        kind: The event kind shared by the whole stream.
        times: Event instants, nondecreasing.
        elements: Element index per event.
    """

    kind: EventKind
    times: np.ndarray
    elements: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        raw_elements = np.asarray(self.elements)
        if (raw_elements.size
                and raw_elements.dtype.kind in "iu"
                and int(raw_elements.max())
                >= np.iinfo(np.int32).max):
            raise ValidationError(
                "element ids must fit int32 (SoA tape layout)")
        elements = raw_elements.astype(np.int32)
        if times.ndim != 1 or elements.ndim != 1:
            raise ValidationError("times and elements must be 1-D")
        if times.shape != elements.shape:
            raise ValidationError(
                f"times {times.shape} and elements {elements.shape} must "
                "have equal length")
        if times.size and (np.diff(times) < 0.0).any():
            raise ValidationError("event times must be nondecreasing")
        times = times.copy()
        # astype above already produced a private copy of elements.
        times.flags.writeable = False
        elements.flags.writeable = False
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "elements", elements)

    def __len__(self) -> int:
        return int(self.times.shape[0])


def merge_streams(streams: Iterable[EventStream],
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge event streams into one time-ordered tape.

    Args:
        streams: Any number of homogeneous streams.

    Returns:
        ``(times, elements, kinds)`` sorted by time with kind priority
        breaking ties (updates < syncs < accesses).
    """
    collected = list(streams)
    if not collected:
        return (np.empty(0), np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int8))
    times = np.concatenate([stream.times for stream in collected])
    elements = np.concatenate([stream.elements for stream in collected])
    kinds = np.concatenate([
        np.full(len(stream), int(stream.kind), dtype=np.int8)
        for stream in collected
    ])
    order = np.lexsort((kinds, times))
    return times[order], elements[order], kinds[order]
