"""Seeded FL004 violations: dimensioned parameters without units."""


def schedule(change_rates, bandwidth):
    """Allocate the budget across elements.

    Args:
        change_rates: How often things change.
        bandwidth: The budget.
    """
    return change_rates * 0 + bandwidth


def rescale(frequencies):
    return frequencies * 2.0
