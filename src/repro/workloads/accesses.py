"""Access sets: concrete sequences of user requests (paper §2.1).

An *access set* A = {a₁ … a_M} is the multiset of element references
the mirror serves over a period.  The empirical perceived-freshness
metrics (Definitions 3–4) and the simulator's monitored evaluator
consume access sets; this module samples them from a master profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["AccessSet", "sample_access_times"]


@dataclass(frozen=True)
class AccessSet:
    """A timed sequence of element accesses.

    Attributes:
        times: Access instants, nondecreasing, shape ``(M,)``.
        elements: Element index referenced by each access, ``(M,)``.
    """

    times: np.ndarray
    elements: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        elements = np.asarray(self.elements, dtype=np.int64)
        if times.ndim != 1 or elements.ndim != 1:
            raise ValidationError("times and elements must be 1-D")
        if times.shape != elements.shape:
            raise ValidationError(
                f"times {times.shape} and elements {elements.shape} "
                "must have the same length")
        if times.size and (np.diff(times) < 0.0).any():
            raise ValidationError("access times must be nondecreasing")
        if elements.size and elements.min() < 0:
            raise ValidationError("element indices must be nonnegative")
        times = times.copy()
        elements = elements.copy()
        times.flags.writeable = False
        elements.flags.writeable = False
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "elements", elements)

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def access_counts(self, n_elements: int) -> np.ndarray:
        """Accesses per element (the mᵢ of §2.1).

        Args:
            n_elements: Catalog size; indices must be below it.

        Returns:
            Integer counts, shape ``(n_elements,)``.
        """
        if len(self) and int(self.elements.max()) >= n_elements:
            raise ValidationError(
                f"access set references element {int(self.elements.max())} "
                f"but the catalog has only {n_elements} elements")
        return np.bincount(self.elements, minlength=n_elements)

    def empirical_probabilities(self, n_elements: int) -> np.ndarray:
        """The empirical access distribution pᵢ = mᵢ / M."""
        counts = self.access_counts(n_elements)
        total = counts.sum()
        if total == 0:
            raise ValidationError("cannot normalize an empty access set")
        return counts / float(total)


def sample_access_times(access_probabilities: np.ndarray, *,
                        rate: float, horizon: float,
                        rng: np.random.Generator) -> AccessSet:
    """Sample a Poisson stream of accesses from a master profile.

    Accesses arrive as a Poisson process at total ``rate``; each
    access independently references element i with probability pᵢ —
    the paper's model of "many users frequently accessing the mirror".

    Args:
        access_probabilities: Master profile, summing to 1.
        rate: Total accesses per unit time, > 0.
        horizon: Length of the observation window, > 0.
        rng: Seeded generator.

    Returns:
        A time-sorted :class:`AccessSet`.
    """
    p = np.asarray(access_probabilities, dtype=float)
    if rate <= 0.0:
        raise ValidationError(f"rate must be > 0, got {rate}")
    if horizon <= 0.0:
        raise ValidationError(f"horizon must be > 0, got {horizon}")
    count = int(rng.poisson(rate * horizon))
    times = np.sort(rng.uniform(0.0, horizon, size=count))
    elements = rng.choice(p.shape[0], size=count, p=p)
    return AccessSet(times=times, elements=elements)
