"""Tests for repro.workloads.builder — the fluent WorkloadBuilder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.builder import WorkloadBuilder


class TestDefaults:
    def test_empty_builder_gives_uniform_unit_catalog(self):
        catalog = WorkloadBuilder(5).build()
        assert np.allclose(catalog.access_probabilities, 0.2)
        assert np.allclose(catalog.change_rates, 1.0)
        assert catalog.has_uniform_sizes

    def test_rejects_bad_size(self):
        with pytest.raises(ValidationError):
            WorkloadBuilder(0)


class TestStages:
    def test_zipf_profile(self):
        catalog = WorkloadBuilder(10).zipf_profile(1.0).build()
        assert (np.diff(catalog.access_probabilities) < 0.0).all()

    def test_gamma_rates_moments(self):
        catalog = WorkloadBuilder(50_000, seed=1).gamma_rates(
            mean=2.0, std_dev=1.0).build()
        assert catalog.change_rates.mean() == pytest.approx(2.0,
                                                            rel=0.05)

    def test_pareto_sizes(self):
        catalog = WorkloadBuilder(1000, seed=2).pareto_sizes(
            shape=2.0).build()
        assert not catalog.has_uniform_sizes
        assert (catalog.sizes > 0.0).all()

    def test_custom_stages(self):
        catalog = (WorkloadBuilder(3)
                   .custom_profile(np.array([0.5, 0.3, 0.2]))
                   .custom_rates(np.array([1.0, 2.0, 3.0]))
                   .custom_sizes(np.array([1.0, 0.5, 2.0]))
                   .build())
        assert catalog.access_probabilities[0] == 0.5
        assert catalog.change_rates[2] == 3.0
        assert catalog.sizes[2] == 2.0

    def test_custom_stage_shape_validation(self):
        builder = WorkloadBuilder(3)
        with pytest.raises(ValidationError):
            builder.custom_profile(np.array([0.5, 0.5]))
        with pytest.raises(ValidationError):
            builder.custom_rates(np.ones(4))
        with pytest.raises(ValidationError):
            builder.custom_sizes(np.ones(2))


class TestAlignments:
    def test_reverse_aligned_rates(self):
        catalog = (WorkloadBuilder(20, seed=3)
                   .zipf_profile(1.0)
                   .gamma_rates(mean=2.0, std_dev=1.0)
                   .align_rates("reverse")
                   .build())
        assert (np.diff(catalog.change_rates) >= 0.0).all()

    def test_aligned_sizes(self):
        catalog = (WorkloadBuilder(20, seed=3)
                   .zipf_profile(1.0)
                   .pareto_sizes(shape=2.0)
                   .align_sizes("aligned")
                   .build())
        assert (np.diff(catalog.sizes) <= 0.0).all()

    def test_paper_style_web_workload(self):
        """The README-style chained build works end to end."""
        catalog = (WorkloadBuilder(500, seed=7)
                   .zipf_profile(theta=1.2)
                   .gamma_rates(mean=2.0, std_dev=1.0)
                   .pareto_sizes(shape=1.1)
                   .align_rates("shuffled")
                   .align_sizes("reverse")
                   .build())
        assert catalog.n_elements == 500
        # Reverse sizes: biggest objects are least popular.
        assert catalog.sizes[0] == catalog.sizes.min()

    def test_reproducible(self):
        def make():
            return (WorkloadBuilder(30, seed=11)
                    .zipf_profile(1.0)
                    .gamma_rates(mean=2.0, std_dev=1.0)
                    .align_rates("shuffled")
                    .build())
        first, second = make(), make()
        assert np.array_equal(first.change_rates, second.change_rates)


class TestSchedulerWindows:
    def test_events_between_partitions_the_horizon(self):
        from repro.core.scheduler import PhasePolicy, SyncSchedule
        schedule = SyncSchedule.from_frequencies(
            np.array([2.0, 3.0]), phase_policy=PhasePolicy.STAGGERED)
        full_times, full_elements = schedule.events_until(10.0)
        first_times, first_elements = schedule.events_between(0.0, 4.0)
        second_times, second_elements = schedule.events_between(4.0,
                                                                10.0)
        assert np.allclose(np.concatenate([first_times, second_times]),
                           full_times)
        assert np.array_equal(
            np.concatenate([first_elements, second_elements]),
            full_elements)

    def test_events_between_validation(self):
        from repro.core.scheduler import SyncSchedule
        from repro.errors import ScheduleError
        schedule = SyncSchedule.from_frequencies(np.ones(1))
        with pytest.raises(ScheduleError):
            schedule.events_between(-1.0, 2.0)
        with pytest.raises(ScheduleError):
            schedule.events_between(2.0, 2.0)
