"""The adaptive mirror manager: observe → estimate → replan → run.

The paper (§3) motivates its heuristics with exactly this loop: "for
large real-world problems for which the contents of the mirror or the
user interests might change, we would need to periodically solve the
Core Problem".  :class:`AdaptiveMirrorManager` runs that loop against
the discrete-event simulator:

1. plan a schedule from the current :class:`~repro.runtime.beliefs.
   BeliefState` (profile learned from the request log, rates
   estimated from poll outcomes);
2. execute one period in the simulator against the *true* (hidden)
   workload;
3. fold the period's observations back into the beliefs;
4. replan when the believed profile has drifted past a threshold (or
   on a fixed cadence), using either the exact solver or the scalable
   partitioned pipeline.

Nothing in the manager ever reads the true catalog's profile or
rates — only sizes (known to any mirror) and the observable event
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.freshener import Freshener, PerceivedFreshener
from repro.core.metrics import perceived_freshness
from repro.errors import ValidationError
from repro.faults.breaker import CircuitBreaker
from repro.faults.model import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.topology import Topology
from repro.obs import registry as obs
from repro.runtime.beliefs import BeliefState
from repro.sim.evaluator import SimulationResult
from repro.sim.fastpath import (
    ReplayArena,
    replay_window_tapes,
    resolve_tape_faults,
)
from repro.sim.simulation import Simulation
from repro.workloads.catalog import Catalog

__all__ = ["PeriodReport", "AdaptiveMirrorManager"]

#: Window batching splits each replan window into slab groups of at
#: most this many (periods × elements), so a 10⁶-element adapt run
#: holds a few periods' tapes at a time instead of the whole window.
#: Derived from element count only — the manager may not read the
#: true catalog's rates.
_SLAB_ELEMENT_BUDGET = 4_000_000


@dataclass(frozen=True)
class PeriodReport:
    """What happened in one period of the adaptive loop.

    Attributes:
        period: 1-based period index.
        replanned: Whether a new schedule was computed this period.
        believed_pf: PF the manager *expected* (scored on its
            beliefs).
        achieved_pf: PF actually delivered (analytic, on the true
            workload).
        monitored_pf: Fraction of simulated accesses that saw fresh
            data.
        profile_divergence: TV distance between beliefs and the
            profile the active schedule was planned on, measured
            before the replan decision.
        n_accesses: Accesses served this period.
        wasted_polls: Fraction of polls that found no change.
        failed_polls: Wire attempts that failed this period (0 on a
            fault-free run).
        retries: Retry attempts made this period.
        suppressed_retries: Retries refused by the shared herding
            admission gate this period (0 without a gated policy).
    """

    period: int
    replanned: bool
    believed_pf: float
    achieved_pf: float
    monitored_pf: float
    profile_divergence: float
    n_accesses: int
    wasted_polls: float
    failed_polls: int = 0
    retries: int = 0
    suppressed_retries: int = 0


class AdaptiveMirrorManager:
    """Runs the observe/estimate/replan loop against a hidden workload.

    Args:
        true_catalog: The real workload (hidden: the manager only uses
            its sizes and the simulated event outcomes).
        bandwidth: Sync bandwidth budget per period.
        request_rate: User accesses per period.
        rng: Drives the simulator.
        freshener: Planner used at each replan (exact
            :class:`PerceivedFreshener` by default; pass a
            :class:`~repro.core.freshener.PartitionedFreshener` for
            catalog-scale runs).
        beliefs: Initial belief state; a fresh uniform-profile,
            prior-rate state by default.
        replan_divergence: Replan when the believed profile drifts
            this far (TV distance) from the planned-on profile.
        replan_every: Also replan unconditionally every this many
            periods (0 disables the cadence).
        fault_plan: Optional fault plan injected into every period's
            simulation (None, or a quiet plan, keeps the classic
            fault-free loop bit-identical).
        retry_policy: Backoff policy the sync channel retries under.
        breaker: Optional per-shard circuit breaker; held by the
            manager so its state persists across periods on one
            global fault clock.
        shard_of: Element → breaker-shard map (identity by default;
            the topology's subtree shard map when a topology is
            given).
        topology: Optional source→relay→edge tree the sync path runs
            over.  A fault-aware manager uses its structure twice:
            confirmed outages covering most of a relay's subtree are
            *collapsed* to the whole subtree (one correlated belief
            instead of N independent ones — the still-up-looking
            members share the doomed uplink), and replans derate to
            the bandwidth actually deliverable through reachable
            subtrees rather than the nominal B.
        subtree_outage_fraction: Fraction of a top-level subtree's
            elements that must be in confirmed outage before the
            whole subtree is collapsed, in ``(0, 1]``
            (dimensionless).
        fault_aware: When True (default), the manager *plans around*
            the faults it observes: it derates bandwidth to
            ``B·(1−loss)`` using the believed loss rate (leaving
            headroom the channel's ledger grants to retries), and on
            a detected shard outage zeroes the unreachable elements'
            frequencies and re-solves the Core Problem over the
            reachable set.  False gives the fault-*blind* baseline:
            same faulty channel, planning as if the wire were
            perfect.
        replan_loss_drift: Replan when the believed loss rate moves
            this far from the rate the active schedule was derated
            for.
        max_loss_compensation: Cap on the derate factor, so a dead
            channel still leaves ``B·(1−cap)`` of schedule (the
            polls themselves are how the manager discovers
            recovery).
        probe_frequency: Heartbeat frequency kept on elements a
            degraded plan marks unreachable (per period).  Nearly
            free while the shard is down — open-breaker polls are
            skipped without touching the wire — but without it the
            breaker would never see the half-open probe that
            detects recovery, and a dead shard would stay dead
            forever.  The rate also bounds the recovery lag: after
            the source comes back, probes are the only syncs the
            group gets until the next replan restores its full
            allocation, so one period of roughly ``probe_frequency``
            coverage is the price of the failover.
        outage_confirmation: Consecutive end-of-period observations
            an element must stay unreachable before degraded
            planning drops it (>= 1).  The debounce that keeps a
            *flapping* shard from being zeroed during its up-windows:
            dropping a shard that recovers a moment later costs real
            polls, while blindly polling a down shard costs nothing
            (unreachable fast-fails are free), so the replanner
            should only give up on outages that persist.
        share_fault_rng: When True, skip spawning the dedicated
            fault generator and draw fault outcomes from the main
            ``rng`` stream, interleaved with the workload draws —
            the single-stream discipline some callers (and older
            seeds) expect.  Costs the common-random-numbers
            alignment across fault-free/blind/aware comparisons,
            but window batching still applies: the batched loop
            resolves each period's faults right after drawing its
            tape, preserving the per-period interleaving bit for
            bit.
    """

    def __init__(self, true_catalog: Catalog, bandwidth: float, *,
                 request_rate: float, rng: np.random.Generator,
                 freshener: Freshener | None = None,
                 beliefs: BeliefState | None = None,
                 replan_divergence: float = 0.05,
                 replan_every: int = 0,
                 fault_plan: FaultPlan | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 shard_of: np.ndarray | None = None,
                 topology: Topology | None = None,
                 subtree_outage_fraction: float = 0.5,
                 fault_aware: bool = True,
                 replan_loss_drift: float = 0.05,
                 max_loss_compensation: float = 0.95,
                 probe_frequency: float = 2.0,
                 outage_confirmation: int = 2,
                 share_fault_rng: bool = False) -> None:
        if bandwidth <= 0.0:
            raise ValidationError(
                f"bandwidth must be > 0, got {bandwidth}")
        if not 0.0 <= replan_divergence <= 1.0:
            raise ValidationError(
                "replan_divergence must be in [0, 1], got "
                f"{replan_divergence}")
        if replan_every < 0:
            raise ValidationError(
                f"replan_every must be >= 0, got {replan_every}")
        if not 0.0 <= replan_loss_drift <= 1.0:
            raise ValidationError(
                "replan_loss_drift must be in [0, 1], got "
                f"{replan_loss_drift}")
        if not 0.0 <= max_loss_compensation < 1.0:
            raise ValidationError(
                "max_loss_compensation must be in [0, 1), got "
                f"{max_loss_compensation}")
        if probe_frequency < 0.0:
            raise ValidationError(
                f"probe_frequency must be >= 0, got {probe_frequency}")
        if outage_confirmation < 1:
            raise ValidationError(
                "outage_confirmation must be >= 1, got "
                f"{outage_confirmation}")
        if not 0.0 < subtree_outage_fraction <= 1.0:
            raise ValidationError(
                "subtree_outage_fraction must be in (0, 1], got "
                f"{subtree_outage_fraction}")
        if topology is not None and \
                topology.n_elements != true_catalog.n_elements:
            raise ValidationError(
                f"topology hosts {topology.n_elements} elements, "
                f"catalog has {true_catalog.n_elements}")
        self._true_catalog = true_catalog
        self._bandwidth = bandwidth
        self._request_rate = request_rate
        self._rng = rng
        self._freshener = (freshener if freshener is not None
                           else PerceivedFreshener())
        mean_rate = float(true_catalog.change_rates.mean())
        self._beliefs = beliefs if beliefs is not None else BeliefState(
            true_catalog.n_elements, sizes=true_catalog.sizes,
            prior_rate=max(mean_rate, 1e-6))
        self._replan_divergence = replan_divergence
        self._replan_every = replan_every
        self._fault_plan = fault_plan
        self._retry_policy = retry_policy
        self._breaker = breaker
        self._topology = topology
        self._subtree_fraction = subtree_outage_fraction
        if shard_of is None and topology is not None:
            shard_of = topology.shard_of
        self._shard_of = shard_of
        self._fault_aware = fault_aware
        self._replan_loss_drift = replan_loss_drift
        self._max_loss = max_loss_compensation
        self._probe_frequency = probe_frequency
        self._outage_confirmation = outage_confirmation
        self._faulty = (fault_plan is not None
                        and not fault_plan.is_quiet)
        # Fault draws live on their own spawned generator so the
        # workload stream (updates, accesses, phases) drawn from the
        # main rng is identical across fault-free / blind / aware
        # runs of the same seed — common random numbers, without
        # which a chaos comparison mostly measures update-draw luck
        # on the elements nobody can reach.  spawn() derives the
        # child from the seed sequence without advancing the parent's
        # draw stream, so fault-free runs stay bit-identical.
        self._fault_rng: np.random.Generator | None = None
        if self._faulty and not share_fault_rng:
            try:
                self._fault_rng = rng.spawn(1)[0]
            except (AttributeError, TypeError, ValueError):
                # No seed sequence to spawn from (hand-built bit
                # generator): derive a child the draw-consuming way,
                # routing the drawn seed through a SeedSequence so the
                # child is still CRN-disciplined.
                self._fault_rng = np.random.default_rng(
                    np.random.SeedSequence(
                        int(rng.integers(np.iinfo(np.int64).max))))
        self._planned_profile: np.ndarray | None = None
        self._frequencies: np.ndarray | None = None
        self._periods_since_replan = 0
        self._planned_loss = 0.0
        self._planned_unreachable: np.ndarray | None = None
        self._last_unreachable: np.ndarray | None = None
        self._outage_streak: np.ndarray | None = None
        # Scratch buffers reused across window-batched kernel calls.
        self._arena = ReplayArena()

    @property
    def beliefs(self) -> BeliefState:
        """The manager's current belief state."""
        return self._beliefs

    @property
    def current_frequencies(self) -> np.ndarray | None:
        """The active schedule (None before the first period)."""
        return self._frequencies

    def replace_world(self, true_catalog: Catalog) -> None:
        """Swap the hidden true workload (for drift experiments).

        The manager's beliefs and active schedule are deliberately
        left untouched — discovering the change from observations is
        the point.

        Args:
            true_catalog: The new hidden workload; must have the same
                number of elements.
        """
        if true_catalog.n_elements != self._true_catalog.n_elements:
            raise ValidationError(
                f"new world has {true_catalog.n_elements} elements, "
                f"expected {self._true_catalog.n_elements}")
        self._true_catalog = true_catalog

    def _believed_loss(self) -> float:
        if not self._fault_aware:
            return 0.0
        return min(self._beliefs.believed_loss_rate(), self._max_loss)

    def _observe_loss(self, result: SimulationResult) -> None:
        """Feed this period's wire loss into the belief state.

        Only transfer-level failures count — they burn bandwidth, so
        derating B compensates for them.  Unreachable fast-fails are
        free (the outage mask, not the derate, is their remedy), and
        elements in a *confirmed* outage are excluded entirely:
        their losses are already answered by zeroing them out of the
        plan, and double-counting them in the derate would starve
        the healthy elements too (bursty workloads made this
        visible — the loss belief soaked up the bad sojourns the
        breaker had already masked).
        """
        attempted = result.attempted_poll_counts
        failed = result.failed_poll_counts
        unreachable = result.unreachable_poll_counts
        if attempted is None or failed is None or unreachable is None:
            self._beliefs.observe_faults(
                result.attempted_polls - result.unreachable_polls,
                result.failed_polls - result.unreachable_polls)
            return
        wire_attempts = attempted - unreachable
        wire_failures = failed - unreachable
        outage = self._current_outage()
        if outage is not None:
            wire_attempts = wire_attempts[~outage]
            wire_failures = wire_failures[~outage]
        self._beliefs.observe_faults(int(wire_attempts.sum()),
                                     int(wire_failures.sum()))

    def _current_outage(self) -> np.ndarray | None:
        """The unreachable mask degraded planning should honor.

        Only elements unreachable for ``outage_confirmation``
        consecutive period ends count — a flap shorter than the
        confirmation window never makes it into a plan.

        With a topology, confirmed outages covering at least
        ``subtree_outage_fraction`` of a top-level subtree are
        collapsed to the whole subtree: the remaining members share
        the same doomed uplink, so learning their losses one breaker
        shard at a time just delays the inevitable.
        """
        if not self._fault_aware or self._outage_streak is None:
            return None
        confirmed = self._outage_streak >= self._outage_confirmation
        if not confirmed.any():
            return None
        if self._topology is not None:
            subtree = self._topology.subtree_of
            for index in range(self._topology.n_subtrees):
                members = subtree == index
                total = int(members.sum())
                if total == 0 or confirmed[members].all():
                    continue
                down = int(confirmed[members].sum())
                if down / total >= self._subtree_fraction:
                    confirmed = confirmed | members
                    if obs.telemetry_enabled():
                        obs.counter_add("manager.subtree_collapses")
        return confirmed

    def _outage_changed(self) -> bool:
        now = self._current_outage()
        planned = self._planned_unreachable
        if now is None and planned is None:
            return False
        if now is None or planned is None:
            return True
        return bool((now != planned).any())

    def _replan(self) -> float:
        with obs.span("manager.plan"):
            believed = self._beliefs.believed_catalog()
            loss = self._believed_loss()
            # Degraded-mode bandwidth: with loss rate ℓ, only
            # (1−ℓ) of attempts refresh anything, and the failed
            # ones still burn budget — plan the schedule against the
            # effective B·(1−ℓ) so the channel's ledger has the
            # headroom to grant retries.
            effective = self._bandwidth * (1.0 - loss)
            unreachable = self._current_outage()
            if self._topology is not None and self._fault_aware:
                # Bandwidth behind a dead relay is not transferable
                # to the survivors: derate to what the reachable
                # subtrees' source uplinks can actually deliver.
                mask = (unreachable if unreachable is not None
                        else np.zeros(self._true_catalog.n_elements,
                                      dtype=bool))
                deliverable = self._topology.reachable_bandwidth(mask)
                if deliverable < self._bandwidth:
                    effective = deliverable * (1.0 - loss)
                if obs.telemetry_enabled():
                    obs.gauge_set("manager.reachable_bandwidth",
                                  min(deliverable, self._bandwidth))
            if unreachable is None:
                plan = self._freshener.plan(believed, effective)
                frequencies = plan.frequencies
                believed_pf = plan.perceived_freshness
            elif unreachable.all():
                # Nothing reachable: schedule heartbeats only, so
                # recovery is noticed the moment the source returns.
                frequencies = np.full(believed.n_elements,
                                      self._probe_frequency)
                believed_pf = perceived_freshness(believed,
                                                  np.zeros_like(
                                                      frequencies))
            else:
                # Outage mode: zero the dead elements and re-solve
                # the Core Problem over the reachable set, with the
                # believed profile renormalized onto it.
                reachable = ~unreachable
                mass = float(
                    believed.access_probabilities[reachable].sum())
                if mass > 0.0:
                    profile = (believed.access_probabilities[reachable]
                               / mass)
                else:
                    n_up = int(reachable.sum())
                    profile = np.full(n_up, 1.0 / n_up)
                sub = Catalog(
                    access_probabilities=profile,
                    change_rates=believed.change_rates[reachable],
                    sizes=believed.sizes[reachable])
                plan = self._freshener.plan(sub, effective)
                frequencies = np.zeros(believed.n_elements)
                frequencies[reachable] = plan.frequencies
                # Expected PF counts only the reachable syncs; the
                # probe heartbeat below is for recovery detection,
                # not freshness.
                believed_pf = perceived_freshness(believed,
                                                  frequencies)
                frequencies[unreachable] = self._probe_frequency
        self._frequencies = frequencies
        self._planned_profile = believed.access_probabilities.copy()
        self._planned_loss = loss
        self._planned_unreachable = (unreachable.copy()
                                     if unreachable is not None
                                     else None)
        self._periods_since_replan = 0
        if obs.telemetry_enabled():
            obs.gauge_set("manager.believed_loss", loss)
            obs.gauge_set("manager.effective_bandwidth", effective)
            if unreachable is not None:
                obs.event("manager.degraded_plan",
                          unreachable=int(unreachable.sum()),
                          believed_loss=loss,
                          effective_bandwidth=effective)
        return float(believed_pf)

    def _pending_triggers(self) -> tuple[float, bool, bool, bool,
                                         bool]:
        """The replan triggers as seen from the current beliefs.

        Returns:
            ``(divergence, drift_due, cadence_due, loss_due,
            outage_due)``; pure — no state is touched, so the
            window-batched runner can probe for a mid-window replan
            after each fold without committing to one.
        """
        if self._planned_profile is None:
            divergence = 1.0
        else:
            divergence = self._beliefs.profile_divergence_from(
                self._planned_profile)
        cadence_due = (self._replan_every > 0 and
                       self._periods_since_replan >= self._replan_every)
        drift_due = (self._frequencies is not None
                     and divergence > self._replan_divergence)
        loss_due = (self._frequencies is not None
                    and abs(self._believed_loss() - self._planned_loss)
                    > self._replan_loss_drift)
        outage_due = (self._frequencies is not None
                      and self._outage_changed())
        return divergence, drift_due, cadence_due, loss_due, outage_due

    def _would_replan(self) -> tuple[bool, float]:
        """Whether the next period's decision would replan, and why.

        Returns:
            ``(pending, divergence)``.
        """
        divergence, drift, cadence, loss, outage = \
            self._pending_triggers()
        pending = (self._frequencies is None or drift or cadence
                   or loss or outage)
        return pending, divergence

    def _decide_replan(self) -> tuple[bool, float, float]:
        """Run one period's replan decision (and the replan itself).

        Returns:
            ``(replanned, believed_pf, divergence)``.
        """
        divergence, drift_due, cadence_due, loss_due, outage_due = \
            self._pending_triggers()
        replanned = (self._frequencies is None or drift_due
                     or cadence_due or loss_due or outage_due)
        if replanned:
            if obs.telemetry_enabled():
                obs.counter_add("manager.replans")
                if drift_due:
                    obs.counter_add("manager.drift_replans")
                elif outage_due:
                    obs.counter_add("manager.outage_replans")
                elif loss_due:
                    obs.counter_add("manager.loss_replans")
                elif cadence_due:
                    obs.counter_add("manager.cadence_replans")
            believed_pf = self._replan()
        else:
            believed_pf = perceived_freshness(
                self._beliefs.believed_catalog(), self._frequencies)
        assert self._frequencies is not None
        return replanned, believed_pf, divergence

    def _build_simulation(self, period: int) -> Simulation:
        """The simulator for one period, on the global fault clock."""
        assert self._frequencies is not None
        return Simulation(self._true_catalog, self._frequencies,
                          request_rate=self._request_rate,
                          rng=self._rng,
                          fault_plan=self._fault_plan,
                          retry_policy=self._retry_policy,
                          breaker=self._breaker,
                          shard_of=self._shard_of,
                          topology=self._topology,
                          bandwidth_budget=(self._bandwidth
                                            if self._faulty
                                            else None),
                          fault_rng=self._fault_rng,
                          fault_time_offset=float(period - 1))

    def _fold_observations(self, result: SimulationResult) -> None:
        """Fold one period's observations into the belief state."""
        with obs.span("manager.estimate"):
            self._beliefs.observe_period(result.access_counts,
                                         result.poll_counts,
                                         result.changed_poll_counts,
                                         self._frequencies)
            if self._faulty:
                self._last_unreachable = result.unreachable_elements
                if self._last_unreachable is not None:
                    if self._outage_streak is None:
                        self._outage_streak = np.zeros(
                            self._last_unreachable.shape[0],
                            dtype=np.int64)
                    self._outage_streak = np.where(
                        self._last_unreachable,
                        self._outage_streak + 1, 0)
                self._observe_loss(result)
        self._periods_since_replan += 1

    def _make_report(self, period: int, replanned: bool,
                     believed_pf: float, divergence: float,
                     result: SimulationResult) -> PeriodReport:
        """Assemble (and emit telemetry for) one period's report."""
        achieved = perceived_freshness(self._true_catalog,
                                       self._frequencies)
        if obs.telemetry_enabled():
            obs.counter_add("manager.periods")
            obs.gauge_set("manager.profile_divergence", divergence)
            obs.gauge_set("manager.achieved_pf", achieved)
            obs.event("manager.period",
                      period=obs.element_label(period),
                      replanned=replanned, believed_pf=believed_pf,
                      achieved_pf=achieved,
                      monitored_pf=result.monitored_perceived_freshness,
                      profile_divergence=divergence,
                      wasted_polls=result.wasted_sync_fraction,
                      failed_polls=result.failed_polls,
                      retries=result.retries,
                      suppressed_retries=result.suppressed_retries)
        return PeriodReport(
            period=period,
            replanned=replanned,
            believed_pf=believed_pf,
            achieved_pf=achieved,
            monitored_pf=result.monitored_perceived_freshness,
            profile_divergence=divergence,
            n_accesses=result.n_accesses,
            wasted_polls=result.wasted_sync_fraction,
            failed_polls=result.failed_polls,
            retries=result.retries,
            suppressed_retries=result.suppressed_retries,
        )

    def run_period(self, period: int) -> PeriodReport:
        """Execute one period of the adaptive loop.

        Args:
            period: 1-based index, for the report.

        Returns:
            The :class:`PeriodReport`.
        """
        replanned, believed_pf, divergence = self._decide_replan()
        simulation = self._build_simulation(period)
        with obs.span("manager.simulate"):
            result = simulation.run(n_periods=1)
        self._fold_observations(result)
        return self._make_report(period, replanned, believed_pf,
                                 divergence, result)

    def _batchable(self) -> bool:
        """Whether replan windows may share one kernel call.

        Fault-free loops always qualify.  Faulty loops qualify when
        the plan has a vectorized resolver — a single i.i.d. model
        or a single retryable Gilbert–Elliott chain — with no
        breaker, no topology and no shared admission gate.  The
        fault rng may be dedicated *or* shared with the workload
        stream: the batched loop resolves each period's faults right
        after drawing that period's tape, which reproduces the
        per-period interleaving exactly.
        """
        if not self._faulty:
            return True
        if self._breaker is not None:
            return False
        if self._topology is not None:
            # Hop ledgers and path latency keep topology runs on the
            # per-period reference loop.
            return False
        if self._retry_policy is not None and \
                self._retry_policy.admission_gate is not None:
            # The herding gate's token bucket is shared across
            # attempts in wall order; no pre-drawn pool replays it.
            return False
        assert self._fault_plan is not None
        return (self._fault_plan.iid_profile() is not None
                or self._fault_plan.ge_profile() is not None)

    def _run_window(self, first_period: int, window: int,
                    replanned: bool, believed_pf: float,
                    divergence: float,
                    slab_periods: int | None = None
                    ) -> list[PeriodReport]:
        """Run up to ``window`` periods through slab-grouped kernel calls.

        Builds each period's event tape in the exact order the
        per-period loop would (so the workload stream is CRN-
        identical) and resolves that period's faults immediately
        after its tape — workload draws then fault draws, period by
        period, which keeps even a *shared* fault stream
        bit-identical to the sequential loop.  Tapes replay through
        :func:`~repro.sim.fastpath.replay_window_tapes` in groups of
        at most ``slab_periods`` periods (default: the
        ``_SLAB_ELEMENT_BUDGET`` ceiling over the element count), so
        peak memory is O(group) rather than O(window), and
        observations fold period by period.  Reports are
        bit-identical to an unsplit window: tapes are drawn in
        period order either way, and the per-period kernel results
        do not depend on how periods share a call.

        If folding period ``j`` leaves the beliefs wanting a replan,
        the not-yet-folded tail is *rolled back*: the fault rng and
        the Gilbert–Elliott chain state restore to their snapshots
        from just before period ``j``'s resolution, then the
        workload rng rewinds to the snapshot taken before period
        ``j``'s tape was drawn (on a shared stream both are one
        generator and the workload snapshot is the earlier position,
        so it must win) — the caller then replans and re-simulates
        the tail, bit-identical to the sequential loop.  A replan
        pending exactly at a group boundary simply stops before the
        next group is drawn — the generators are already positioned
        where the rollback would put them, so nothing is wasted (and
        the rollback counters only ever count *drawn* periods).

        Returns:
            Reports for the accepted prefix (>= 1 period).
        """
        assert self._frequencies is not None
        if slab_periods is None:
            slab_periods = max(
                1, _SLAB_ELEMENT_BUDGET
                // max(self._true_catalog.n_elements, 1))
        sizes = np.asarray(self._true_catalog.sizes, dtype=float)
        fault_args = None
        chain: np.ndarray | None = None
        reports: list[PeriodReport] = []
        rolled_back = False
        folded = 0
        while folded < window and not rolled_back:
            if folded > 0:
                pending, divergence = self._would_replan()
                if pending:
                    # Group-boundary stop: the next group was never
                    # drawn, so the generators already sit where a
                    # rollback would rewind them.
                    break
                replanned = False
                believed_pf = perceived_freshness(
                    self._beliefs.believed_catalog(),
                    self._frequencies)
            group = min(slab_periods, window - folded)
            rng_states = []
            fault_states: list = []
            chain_snapshots: list[np.ndarray | None] = []
            tapes = []
            resolutions = [] if self._faulty else None
            for g in range(group):
                rng_states.append(self._rng.bit_generator.state)
                simulation = self._build_simulation(
                    first_period + folded + g)
                tapes.append(simulation.build_tape(1))
                if resolutions is None:
                    continue
                if fault_args is None:
                    fault_args = simulation.fault_kernel_args()
                    assert fault_args is not None  # _batchable() gated
                    if fault_args["kind"] == "ge":
                        chain = fault_args["model"].chain_states(
                            self._true_catalog.n_elements)
                fault_states.append(
                    fault_args["rng"].bit_generator.state)
                chain_snapshots.append(chain)
                resolution, chain = resolve_tape_faults(
                    tapes[-1], sizes, fault_args=fault_args,
                    period_length=1.0,
                    fault_clock_offset=float(
                        first_period + folded + g - 1),
                    initial_bad=chain)
                resolutions.append(resolution)
            with obs.span("manager.simulate"):
                results, _consumed = replay_window_tapes(
                    self._true_catalog, self._frequencies, tapes,
                    period_length=1.0,
                    first_global_period=first_period + folded,
                    fault_args=fault_args, resolutions=resolutions,
                    arena=self._arena)
            for g, result in enumerate(results):
                if g > 0:  # g == 0 was probed at the group boundary
                    pending, divergence = self._would_replan()
                    if pending:
                        if fault_args is not None:
                            fault_args["rng"].bit_generator.state = \
                                fault_states[g]
                            if chain_snapshots[g] is not None:
                                fault_args["model"].set_chain_states(
                                    chain_snapshots[g])
                            chain = chain_snapshots[g]
                        self._rng.bit_generator.state = rng_states[g]
                        rolled_back = True
                        if obs.telemetry_enabled():
                            obs.counter_add(
                                "manager.window_rollbacks")
                            obs.counter_add(
                                "manager.rolled_back_periods",
                                len(results) - g)
                        break
                    replanned = False
                    believed_pf = perceived_freshness(
                        self._beliefs.believed_catalog(),
                        self._frequencies)
                self._fold_observations(result)
                reports.append(self._make_report(
                    first_period + folded + g, replanned,
                    believed_pf, divergence, result))
            if not rolled_back:
                folded += len(results)
        if chain is not None and not rolled_back \
                and fault_args is not None:
            # The accepted prefix is final: commit the threaded
            # chain state so the next window (or a reference run)
            # picks up where the channel left off.  After a mid-
            # group rollback the model was already restored to the
            # pre-rollback snapshot above.
            fault_args["model"].set_chain_states(chain)
        return reports

    def run(self, n_periods: int, *,
            batch: int | None = None,
            slab_periods: int | None = None) -> list[PeriodReport]:
        """Run the loop for ``n_periods`` periods.

        Args:
            n_periods: Number of periods, >= 1.
            batch: Maximum periods per replan window.  ``None`` (the
                default) picks ``replan_every`` when a cadence is
                set, else 16; ``1`` forces the sequential per-period
                loop.  Batching applies only when the fault setup
                has a vectorized resolver (see :meth:`_batchable`);
                reports are
                bit-identical either way — a mid-window replan
                trigger rolls the unfolded tail back and re-runs it
                under the new schedule.
            slab_periods: Maximum periods per kernel call within a
                window (the streaming slab size).  ``None`` derives
                it from the element count so one group's tapes stay
                within the ``_SLAB_ELEMENT_BUDGET`` memory ceiling;
                reports are bit-identical for any value.

        Returns:
            One :class:`PeriodReport` per period.
        """
        if n_periods < 1:
            raise ValidationError(
                f"n_periods must be >= 1, got {n_periods}")
        if batch is not None and batch < 1:
            raise ValidationError(
                f"batch must be >= 1, got {batch}")
        if slab_periods is not None and slab_periods < 1:
            raise ValidationError(
                f"slab_periods must be >= 1, got {slab_periods}")
        if batch is None:
            batch = (self._replan_every if self._replan_every > 0
                     else 16)
        if batch == 1 or not self._batchable():
            return [self.run_period(period)
                    for period in range(1, n_periods + 1)]
        reports: list[PeriodReport] = []
        period = 1
        while period <= n_periods:
            replanned, believed_pf, divergence = self._decide_replan()
            window = min(batch, n_periods - period + 1)
            if self._replan_every > 0:
                # The cadence trigger's firing period is known in
                # advance — stop the window there instead of paying
                # for a rollback.
                window = min(window, max(
                    self._replan_every - self._periods_since_replan,
                    1))
            accepted = self._run_window(period, window, replanned,
                                        believed_pf, divergence,
                                        slab_periods=slab_periods)
            reports.extend(accepted)
            period += len(accepted)
        return reports
