"""Tests for repro.workloads.catalog."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.workloads.catalog import Catalog


def make_catalog(n: int = 4) -> Catalog:
    return Catalog(access_probabilities=np.full(n, 1.0 / n),
                   change_rates=np.arange(1, n + 1, dtype=float))


class TestCatalogValidation:
    def test_valid_catalog(self):
        catalog = make_catalog()
        assert catalog.n_elements == 4
        assert catalog.has_uniform_sizes

    def test_default_sizes_are_ones(self):
        assert np.array_equal(make_catalog().sizes, np.ones(4))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValidationError, match="matching shapes"):
            Catalog(access_probabilities=np.array([0.5, 0.5]),
                    change_rates=np.array([1.0]))

    def test_rejects_probabilities_not_summing_to_one(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            Catalog(access_probabilities=np.array([0.5, 0.4]),
                    change_rates=np.ones(2))

    def test_rejects_negative_probability(self):
        with pytest.raises(ValidationError, match="nonnegative"):
            Catalog(access_probabilities=np.array([1.5, -0.5]),
                    change_rates=np.ones(2))

    def test_rejects_negative_rate(self):
        with pytest.raises(ValidationError, match="change rates"):
            Catalog(access_probabilities=np.array([0.5, 0.5]),
                    change_rates=np.array([1.0, -1.0]))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValidationError, match="sizes"):
            Catalog(access_probabilities=np.array([0.5, 0.5]),
                    change_rates=np.ones(2),
                    sizes=np.array([1.0, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Catalog(access_probabilities=np.empty(0),
                    change_rates=np.empty(0))

    def test_rejects_non_finite(self):
        with pytest.raises(ValidationError):
            Catalog(access_probabilities=np.array([np.nan, 1.0]),
                    change_rates=np.ones(2))
        with pytest.raises(ValidationError):
            Catalog(access_probabilities=np.array([0.5, 0.5]),
                    change_rates=np.array([np.inf, 1.0]))

    def test_rejects_2d_input(self):
        with pytest.raises(ValidationError, match="1-D"):
            Catalog(access_probabilities=np.full((2, 2), 0.25),
                    change_rates=np.ones((2, 2)))

    def test_arrays_are_immutable(self):
        catalog = make_catalog()
        with pytest.raises(ValueError):
            catalog.access_probabilities[0] = 0.9
        with pytest.raises(ValueError):
            catalog.change_rates[0] = 0.0
        with pytest.raises(ValueError):
            catalog.sizes[0] = 5.0

    def test_allows_zero_change_rate(self):
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.array([0.0, 1.0]))
        assert catalog.change_rates[0] == 0.0


class TestCatalogTransforms:
    def test_with_uniform_profile(self):
        catalog = Catalog(access_probabilities=np.array([0.9, 0.1]),
                          change_rates=np.ones(2))
        uniform = catalog.with_uniform_profile()
        assert np.allclose(uniform.access_probabilities, 0.5)
        assert np.array_equal(uniform.change_rates, catalog.change_rates)

    def test_with_profile(self):
        catalog = make_catalog()
        new = catalog.with_profile(np.array([0.7, 0.1, 0.1, 0.1]))
        assert new.access_probabilities[0] == pytest.approx(0.7)

    def test_with_change_rates(self):
        catalog = make_catalog()
        new = catalog.with_change_rates(np.full(4, 9.0))
        assert (new.change_rates == 9.0).all()
        assert np.array_equal(new.access_probabilities,
                              catalog.access_probabilities)

    def test_with_sizes(self):
        catalog = make_catalog()
        new = catalog.with_sizes(np.array([1.0, 2.0, 3.0, 4.0]))
        assert not new.has_uniform_sizes

    def test_transforms_validate(self):
        catalog = make_catalog()
        with pytest.raises(ValidationError):
            catalog.with_profile(np.array([0.5, 0.5, 0.5, 0.5]))
        with pytest.raises(ValidationError):
            catalog.with_sizes(np.zeros(4))

    def test_from_counts_normalizes(self):
        catalog = Catalog.from_counts(np.array([3.0, 1.0]),
                                      np.array([1.0, 2.0]))
        assert catalog.access_probabilities == pytest.approx([0.75, 0.25])

    def test_from_counts_rejects_all_zero(self):
        with pytest.raises(ValidationError, match="positive entry"):
            Catalog.from_counts(np.zeros(3), np.ones(3))


class TestCatalogSubset:
    def test_subset_renormalizes(self):
        catalog = Catalog(
            access_probabilities=np.array([0.5, 0.3, 0.2]),
            change_rates=np.array([1.0, 2.0, 3.0]))
        subset = catalog.subset(np.array([0, 2]))
        assert subset.n_elements == 2
        assert subset.access_probabilities == pytest.approx(
            [0.5 / 0.7, 0.2 / 0.7])
        assert np.array_equal(subset.change_rates, [1.0, 3.0])

    def test_subset_rejects_zero_mass(self):
        catalog = Catalog(
            access_probabilities=np.array([1.0, 0.0, 0.0]),
            change_rates=np.ones(3))
        with pytest.raises(ValidationError):
            catalog.subset(np.array([1, 2]))

    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40)
    def test_subset_preserves_relative_interest(self, n, seed):
        generator = np.random.default_rng(seed)
        weights = generator.uniform(0.1, 1.0, size=n)
        catalog = Catalog(access_probabilities=weights / weights.sum(),
                          change_rates=np.ones(n))
        keep = np.arange(0, n, 2)
        subset = catalog.subset(keep)
        original = catalog.access_probabilities[keep]
        ratio = subset.access_probabilities / original
        assert np.allclose(ratio, ratio[0])
