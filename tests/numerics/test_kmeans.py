"""Tests for repro.numerics.kmeans."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.numerics.kmeans import kmeans, kmeans_iterate


def two_blobs(rng: np.random.Generator, per_blob: int = 20):
    """Two well-separated Gaussian blobs in 2-D."""
    left = rng.normal(loc=(-5.0, 0.0), scale=0.3, size=(per_blob, 2))
    right = rng.normal(loc=(5.0, 0.0), scale=0.3, size=(per_blob, 2))
    return np.vstack([left, right])


class TestKMeans:
    def test_separates_two_blobs_from_bad_init(self, rng):
        points = two_blobs(rng)
        n = points.shape[0]
        # Deliberately interleaved initial labels.
        initial = np.arange(n) % 2
        result = kmeans(points, initial, 2, iterations=20)
        labels = result.labels
        assert result.converged
        # Each blob must be pure (up to global label swap).
        first_half = labels[: n // 2]
        second_half = labels[n // 2:]
        assert len(set(first_half.tolist())) == 1
        assert len(set(second_half.tolist())) == 1
        assert first_half[0] != second_half[0]

    def test_zero_iterations_keeps_labels(self, rng):
        points = two_blobs(rng)
        initial = np.arange(points.shape[0]) % 2
        result = kmeans(points, initial, 2, iterations=0)
        assert np.array_equal(result.labels, initial)
        assert result.iterations == 0

    def test_inertia_non_increasing_across_iterations(self, rng):
        points = rng.uniform(size=(50, 2))
        initial = np.arange(50) % 5
        inertias = []
        for state in kmeans_iterate(points, initial, 5):
            inertias.append(state.inertia)
            if state.converged or state.iterations >= 10:
                break
        # Lloyd's algorithm never increases inertia after the first
        # assignment step.
        for before, after in zip(inertias, inertias[1:]):
            assert after <= before + 1e-9

    def test_empty_cluster_keeps_previous_centroid(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        # Cluster 2 is empty from the start.
        initial = np.array([0, 0, 1])
        result = kmeans(points, initial, 3, iterations=3)
        assert result.centroids.shape == (3, 2)
        assert np.isfinite(result.centroids[:2]).all()

    def test_single_cluster(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        result = kmeans(points, np.zeros(2, dtype=int), 1, iterations=5)
        assert np.array_equal(result.labels, [0, 0])
        assert result.centroids[0] == pytest.approx([2.0, 3.0])

    def test_deterministic(self, rng):
        points = rng.uniform(size=(30, 2))
        initial = np.arange(30) % 3
        first = kmeans(points, initial, 3, iterations=7)
        second = kmeans(points, initial, 3, iterations=7)
        assert np.array_equal(first.labels, second.labels)
        assert first.inertia == second.inertia

    def test_rejects_bad_inputs(self):
        points = np.zeros((4, 2))
        with pytest.raises(ValidationError):
            kmeans(points, np.zeros(3, dtype=int), 2, iterations=1)
        with pytest.raises(ValidationError):
            kmeans(points, np.zeros(4, dtype=int), 0, iterations=1)
        with pytest.raises(ValidationError):
            kmeans(points, np.full(4, 5), 2, iterations=1)
        with pytest.raises(ValidationError):
            kmeans(points, np.zeros(4, dtype=int), 2, iterations=-1)
        with pytest.raises(ValidationError):
            kmeans(np.zeros(4), np.zeros(4, dtype=int), 2, iterations=1)

    def test_converged_state_is_stable(self, rng):
        points = two_blobs(rng, per_blob=10)
        initial = np.arange(points.shape[0]) % 2
        states = []
        for state in kmeans_iterate(points, initial, 2):
            states.append(state)
            if len(states) >= 2 and states[-2].converged:
                break
            if len(states) > 30:
                break
        converged = [s for s in states if s.converged]
        assert converged
        assert np.array_equal(converged[0].labels, states[-1].labels)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_labels_always_within_range(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(25, 2))
        initial = rng.integers(0, k, size=25)
        result = kmeans(points, initial, k, iterations=5)
        assert result.labels.min() >= 0
        assert result.labels.max() < k
