"""Dependency-free SVG line charts for experiment sweeps.

No plotting library is available offline, so this module renders
:class:`~repro.analysis.series.SweepResult` curves as standalone SVG
documents — crisp enough to drop into the report or a README, with
axes, tick labels, a legend, and one polyline (plus point markers)
per series.  Non-finite points split a series into segments.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.series import SweepResult
from repro.errors import ValidationError

__all__ = ["sweep_to_svg", "write_svg"]

_COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#17becf", "#7f7f7f"]

_MARGIN_LEFT = 64.0
_MARGIN_RIGHT = 16.0
_MARGIN_TOP = 28.0
_MARGIN_BOTTOM = 46.0


def _ticks(low: float, high: float, count: int = 5) -> np.ndarray:
    if high <= low:
        high = low + 1.0
    raw_step = (high - low) / max(count - 1, 1)
    magnitude = 10.0 ** np.floor(np.log10(raw_step))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiple * magnitude
        if step >= raw_step:
            break
    start = np.ceil(low / step) * step
    values = np.arange(start, high + 0.5 * step, step)
    return values[(values >= low - 1e-12) & (values <= high + 1e-12)]


def _format_tick(value: float) -> str:
    if value == 0.0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:g}"


def sweep_to_svg(sweep: SweepResult, *, width: int = 560,
                 height: int = 340) -> str:
    """Render a sweep as an SVG document string.

    Args:
        sweep: The curves to draw.
        width: Image width in pixels (>= 160).
        height: Image height in pixels (>= 120).

    Returns:
        The SVG markup.

    Raises:
        ValidationError: For a degenerate canvas or an empty sweep.
    """
    if width < 160 or height < 120:
        raise ValidationError("SVG canvas must be at least 160x120")
    if not sweep.series:
        raise ValidationError(f"sweep {sweep.name!r} has no series")

    xs = np.concatenate([series.x for series in sweep.series])
    ys = np.concatenate([series.y for series in sweep.series])
    finite = np.isfinite(xs) & np.isfinite(ys)
    if not finite.any():
        raise ValidationError(f"sweep {sweep.name!r} has no finite data")
    x_min, x_max = float(xs[finite].min()), float(xs[finite].max())
    y_min, y_max = float(ys[finite].min()), float(ys[finite].max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    # A little vertical breathing room.
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(value: float) -> float:
        return _MARGIN_LEFT + (value - x_min) / (x_max - x_min) * plot_w

    def sy(value: float) -> float:
        return (_MARGIN_TOP
                + (1.0 - (value - y_min) / (y_max - y_min)) * plot_h)

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">')
    parts.append(f'<rect width="{width}" height="{height}" '
                 'fill="white"/>')
    parts.append(f'<text x="{width / 2:.0f}" y="16" '
                 f'text-anchor="middle" font-size="13">'
                 f'{sweep.name}</text>')

    # Axes, grid and ticks.
    axis_color = "#444444"
    grid_color = "#dddddd"
    x0, y0 = _MARGIN_LEFT, _MARGIN_TOP + plot_h
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" '
                 f'y2="{y0}" stroke="{axis_color}"/>')
    parts.append(f'<line x1="{x0}" y1="{_MARGIN_TOP}" x2="{x0}" '
                 f'y2="{y0}" stroke="{axis_color}"/>')
    for tick in _ticks(x_min, x_max):
        px = sx(float(tick))
        parts.append(f'<line x1="{px:.1f}" y1="{_MARGIN_TOP}" '
                     f'x2="{px:.1f}" y2="{y0}" stroke="{grid_color}"/>')
        parts.append(f'<text x="{px:.1f}" y="{y0 + 15:.1f}" '
                     f'text-anchor="middle">{_format_tick(float(tick))}'
                     '</text>')
    for tick in _ticks(y_min, y_max):
        py = sy(float(tick))
        parts.append(f'<line x1="{x0}" y1="{py:.1f}" '
                     f'x2="{x0 + plot_w}" y2="{py:.1f}" '
                     f'stroke="{grid_color}"/>')
        parts.append(f'<text x="{x0 - 6:.1f}" y="{py + 4:.1f}" '
                     f'text-anchor="end">{_format_tick(float(tick))}'
                     '</text>')
    parts.append(f'<text x="{x0 + plot_w / 2:.0f}" '
                 f'y="{height - 8}" text-anchor="middle">'
                 f'{sweep.x_label}</text>')
    parts.append(f'<text x="14" y="{_MARGIN_TOP + plot_h / 2:.0f}" '
                 f'text-anchor="middle" transform="rotate(-90 14 '
                 f'{_MARGIN_TOP + plot_h / 2:.0f})">{sweep.y_label}'
                 '</text>')

    # Curves.
    for index, series in enumerate(sweep.series):
        color = _COLORS[index % len(_COLORS)]
        segment: list[str] = []
        segments: list[list[str]] = []
        for x, y in zip(series.x, series.y):
            if np.isfinite(x) and np.isfinite(y):
                segment.append(f"{sx(float(x)):.1f},{sy(float(y)):.1f}")
            elif segment:
                segments.append(segment)
                segment = []
        if segment:
            segments.append(segment)
        for points in segments:
            if len(points) > 1:
                parts.append(f'<polyline points="{" ".join(points)}" '
                             f'fill="none" stroke="{color}" '
                             'stroke-width="1.6"/>')
            for point in points:
                px, py = point.split(",")
                parts.append(f'<circle cx="{px}" cy="{py}" r="2.4" '
                             f'fill="{color}"/>')

    # Legend.
    legend_y = _MARGIN_TOP + 4.0
    for index, series in enumerate(sweep.series):
        color = _COLORS[index % len(_COLORS)]
        ly = legend_y + 14.0 * index
        lx = _MARGIN_LEFT + plot_w - 150.0
        parts.append(f'<rect x="{lx:.1f}" y="{ly - 8:.1f}" width="10" '
                     f'height="10" fill="{color}"/>')
        parts.append(f'<text x="{lx + 14:.1f}" y="{ly + 1:.1f}">'
                     f'{series.label}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(sweep: SweepResult, path: str | Path, *,
              width: int = 560, height: int = 340) -> None:
    """Render a sweep and write it to a file.

    Args:
        sweep: The curves to draw.
        path: Destination ``.svg`` path.
        width: Image width.
        height: Image height.
    """
    Path(path).write_text(sweep_to_svg(sweep, width=width,
                                       height=height))
