"""Documentation gate: every public item must carry a docstring.

Walks the whole package, inspecting every public module, class,
function and method.  New code without documentation fails here, not
in review.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(member, "__module__", None) == \
            module.__name__
        if inspect.isclass(member) and defined_here:
            yield f"{module.__name__}.{name}", member
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr):
                    yield (f"{module.__name__}.{name}.{attr_name}",
                           attr)
        elif inspect.isfunction(member) and defined_here:
            yield f"{module.__name__}.{name}", member


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [module.__name__ for module in iter_modules()
                        if not (module.__doc__ or "").strip()]
        assert not undocumented, (
            f"modules without docstrings: {undocumented}")

    def test_every_public_item_has_a_docstring(self):
        undocumented = []
        for module in iter_modules():
            for qualified_name, member in public_members(module):
                doc = inspect.getdoc(member) or ""
                if not doc.strip():
                    undocumented.append(qualified_name)
        assert not undocumented, (
            f"public items without docstrings: {undocumented}")

    def test_package_exports_resolve_and_are_documented(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert inspect.getdoc(member), f"{name} undocumented"

    def test_modules_import_cleanly_in_isolation(self):
        # walk_packages above already imported everything; assert the
        # package tree is what DESIGN.md promises.
        names = {module.__name__ for module in iter_modules()}
        for subpackage in ("repro.core", "repro.workloads",
                           "repro.profiles", "repro.sim",
                           "repro.estimation", "repro.numerics",
                           "repro.analysis", "repro.runtime"):
            assert subpackage in names
