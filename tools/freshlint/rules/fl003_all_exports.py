"""FL003 — honest ``__all__`` re-export lists.

The package ``__init__.py`` files (``repro``, ``repro.core``, ...) are
the public API surface, and their ``__all__`` lists are maintained by
hand.  Drift in either direction is a real failure mode: a name in
``__all__`` that is not bound breaks ``from repro import *`` and the
API docs; an imported public name missing from ``__all__`` ships an
undocumented export that the next refactor silently removes.  This
rule checks exact agreement, both directions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["AllMatchesReexports"]


def _bound_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(names bound at module top level, names bound by from-imports)."""
    bound: set[str] = set()
    from_imports: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                bound.add(name)
                from_imports.add(name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, ast.Tuple):
                    bound.update(e.id for e in target.elts
                                 if isinstance(e, ast.Name))
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
    return bound, from_imports


def _find_all(tree: ast.Module) -> tuple[ast.Assign | None,
                                         list[str] | None]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            if any(t.id == "__all__" for t in targets):
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    names = [e.value for e in node.value.elts
                             if isinstance(e, ast.Constant)
                             and isinstance(e.value, str)]
                    return node, names
                return node, None
    return None, None


class AllMatchesReexports(Rule):
    """``__all__`` must exactly match an ``__init__``'s re-exports."""

    code = "FL003"
    name = "all-matches-reexports"
    summary = ("package __init__ __all__ must list exactly the names "
               "re-exported by the module")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_package_init:
            return
        tree = context.tree
        bound, from_imports = _bound_names(tree)
        all_node, exported = _find_all(tree)
        public_imports = {n for n in from_imports if not n.startswith("_")}
        if all_node is None:
            if public_imports:
                yield self.violation(
                    context, tree.body[0] if tree.body else tree,
                    "package __init__ re-exports names but defines no "
                    "__all__; add one so the public surface is explicit")
            return
        if exported is None:
            yield self.violation(
                context, all_node,
                "__all__ is not a literal list/tuple of strings; "
                "freshlint (and API docs) cannot audit it")
            return
        declared = set(exported)
        for name in sorted(declared - bound):
            yield self.violation(
                context, all_node,
                f"__all__ exports {name!r} but the module never binds "
                "it; `from package import *` would raise AttributeError")
        for name in sorted(public_imports - declared):
            yield self.violation(
                context, all_node,
                f"public re-export {name!r} is missing from __all__; "
                "add it or rename with a leading underscore")
        duplicates = {n for n in exported if exported.count(n) > 1}
        for name in sorted(duplicates):
            yield self.violation(
                context, all_node,
                f"__all__ lists {name!r} more than once")
