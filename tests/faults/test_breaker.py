"""State-machine tests for the per-shard circuit breaker."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.obs import registry as obs


@pytest.fixture(autouse=True)
def clean_telemetry():
    obs.reset_telemetry()
    yield
    obs.reset_telemetry()


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(0)
        with pytest.raises(ValidationError):
            CircuitBreaker(1, failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(1, cooldown=0.0)

    def test_rejects_out_of_range_shard(self):
        breaker = CircuitBreaker(2)
        with pytest.raises(ValidationError):
            breaker.allow(2, 0.0)
        with pytest.raises(ValidationError):
            breaker.record_failure(-1, 0.0)


class TestStateMachine:
    def test_opens_only_at_the_consecutive_failure_threshold(self):
        breaker = CircuitBreaker(1, failure_threshold=3, cooldown=1.0)
        breaker.record_failure(0, 0.0)
        breaker.record_failure(0, 0.1)
        assert breaker.state_of(0) is BreakerState.CLOSED
        breaker.record_failure(0, 0.2)
        assert breaker.state_of(0) is BreakerState.OPEN
        assert not breaker.allow(0, 0.3)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(1, failure_threshold=3, cooldown=1.0)
        breaker.record_failure(0, 0.0)
        breaker.record_failure(0, 0.1)
        breaker.record_success(0, 0.2)
        breaker.record_failure(0, 0.3)
        breaker.record_failure(0, 0.4)
        assert breaker.state_of(0) is BreakerState.CLOSED

    def test_half_open_probe_after_cooldown_then_close_on_success(self):
        breaker = CircuitBreaker(1, failure_threshold=1, cooldown=1.0)
        breaker.record_failure(0, 0.0)
        assert breaker.state_of(0) is BreakerState.OPEN
        assert not breaker.allow(0, 0.5)
        # Past the cooldown the breaker admits one probe, half-open.
        assert breaker.allow(0, 1.5)
        assert breaker.state_of(0) is BreakerState.HALF_OPEN
        breaker.record_success(0, 1.5)
        assert breaker.state_of(0) is BreakerState.CLOSED
        assert breaker.allow(0, 1.6)

    def test_half_open_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(1, failure_threshold=1, cooldown=1.0)
        breaker.record_failure(0, 0.0)
        assert breaker.allow(0, 1.2)          # probe admitted
        breaker.record_failure(0, 1.2)        # probe failed
        assert breaker.state_of(0) is BreakerState.OPEN
        # Cooldown restarts from the probe failure, not the original
        # trip.
        assert not breaker.allow(0, 1.9)
        assert breaker.allow(0, 2.3)

    def test_masks_distinguish_open_from_half_open(self):
        breaker = CircuitBreaker(3, failure_threshold=1, cooldown=1.0)
        breaker.record_failure(0, 0.0)
        breaker.record_failure(1, 0.0)
        assert breaker.allow(1, 1.5)          # shard 1 now half-open
        assert list(breaker.open_mask()) == [True, False, False]
        assert list(breaker.tripped_mask()) == [True, True, False]

    def test_shards_are_independent(self):
        breaker = CircuitBreaker(2, failure_threshold=1, cooldown=1.0)
        breaker.record_failure(0, 0.0)
        assert breaker.state_of(0) is BreakerState.OPEN
        assert breaker.state_of(1) is BreakerState.CLOSED
        assert breaker.allow(1, 0.1)


class TestTelemetry:
    def test_transitions_emit_counters_and_events(self):
        with obs.telemetry() as registry:
            breaker = CircuitBreaker(1, failure_threshold=1,
                                     cooldown=1.0)
            breaker.record_failure(0, 0.0)    # closed -> open
            breaker.allow(0, 1.5)             # open -> half-open
            breaker.record_success(0, 1.5)    # half-open -> closed
        assert registry.counters["breaker.opened"] == 1
        assert registry.counters["breaker.probes"] == 1
        assert registry.counters["breaker.closed"] == 1
        transitions = registry.events_of_kind("breaker.transition")
        assert [(e["from_state"], e["to_state"]) for e in transitions] \
            == [("closed", "open"), ("open", "half_open"),
                ("half_open", "closed")]
        assert breaker.total_transitions == 3
