"""Profile-driven mirror selection (paper §7, future work).

"Notice that in Figure 10 there are a significant number of objects
that do not get refreshed at all ... It would be interesting to
investigate how space could be better used.  For example, this could
influence which objects we include in the mirror when the mirror is
smaller than the database."

This module implements that investigation.  When the mirror can store
only a subset of the database, an access to an unmirrored object
never sees fresh data, so the objective becomes

    max_{M, f}  Σ_{i∈M} pᵢ·F̄(λᵢ, fᵢ)   s.t.  Σ_{i∈M} sᵢ ≤ C  (space)
                                              Σ_{i∈M} sᵢfᵢ ≤ B (bandwidth)

Selection strategies:

* ``interest`` — greedy by access probability pᵢ: hold what users ask
  for.
* ``interest-per-size`` — greedy by pᵢ/sᵢ: the classic knapsack
  density rule; better when sizes vary.
* ``achievable`` — greedy by the freshness an object could actually
  deliver at a reference per-object bandwidth share,
  pᵢ·F̄(λᵢ, (B/C·expected)/sᵢ): discounts objects so volatile that
  mirroring them buys little perceived freshness.
* ``random`` — the baseline.

After selection the Core Problem is solved over the chosen subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.freshener import Freshener, FresheningPlan
from repro.core.freshness import FixedOrderPolicy, FreshnessModel
from repro.core.solver import ScheduleSolution, solve_weighted_problem
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

__all__ = ["SelectionStrategy", "MirrorSelection", "select_mirror",
           "plan_selected_mirror", "SpaceConstrainedFreshener"]

_DEFAULT_MODEL = FixedOrderPolicy()


class SelectionStrategy(str, Enum):
    """How mirror contents are chosen under a space constraint."""

    INTEREST = "interest"
    INTEREST_PER_SIZE = "interest-per-size"
    ACHIEVABLE = "achievable"
    RANDOM = "random"

    @classmethod
    def coerce(cls, value: "SelectionStrategy | str") -> "SelectionStrategy":
        """Accept either a member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            options = ", ".join(member.value for member in cls)
            raise ValidationError(
                f"unknown selection strategy {value!r}; expected one "
                f"of: {options}") from exc


@dataclass(frozen=True)
class MirrorSelection:
    """A chosen mirror subset and its freshening plan.

    Attributes:
        indices: Elements included in the mirror, in selection order.
        frequencies: Full-length frequency vector (zero outside the
            selection).
        covered_interest: Total access probability of mirrored
            elements, ``Σ_{i∈M} pᵢ``.
        perceived_freshness: System-wide PF with unmirrored accesses
            counted stale: ``Σ_{i∈M} pᵢ·F̄ᵢ``.
        space_used: ``Σ_{i∈M} sᵢ``.
        solution: The Core-Problem solution over the subset.
    """

    indices: np.ndarray
    frequencies: np.ndarray
    covered_interest: float
    perceived_freshness: float
    space_used: float
    solution: ScheduleSolution


def select_mirror(catalog: Catalog, capacity: float,
                  strategy: SelectionStrategy | str = SelectionStrategy.
                  INTEREST_PER_SIZE, *,
                  bandwidth: float | None = None,
                  model: FreshnessModel | None = None,
                  rng: np.random.Generator | None = None) -> np.ndarray:
    """Choose which elements to mirror under a space capacity.

    Greedy by the strategy's score: walk elements in descending score
    and take everything that still fits (skipping oversized items, as
    density-greedy knapsack does).

    Args:
        catalog: The full database.
        capacity: Mirror space in size units, > 0.
        strategy: Scoring rule.
        bandwidth: Needed by :attr:`SelectionStrategy.ACHIEVABLE` to
            set the reference per-object bandwidth share.
        model: Freshness model for the achievable score.
        rng: Needed by :attr:`SelectionStrategy.RANDOM`.

    Returns:
        Selected element indices (selection order).
    """
    strategy = SelectionStrategy.coerce(strategy)
    if capacity <= 0.0:
        raise ValidationError(f"capacity must be > 0, got {capacity}")
    chosen_model = model if model is not None else _DEFAULT_MODEL
    p = catalog.access_probabilities
    sizes = catalog.sizes

    if strategy is SelectionStrategy.RANDOM:
        if rng is None:
            raise ValidationError("random selection requires an rng")
        order = rng.permutation(catalog.n_elements)
    elif strategy is SelectionStrategy.INTEREST:
        order = np.argsort(-p, kind="stable")
    elif strategy is SelectionStrategy.INTEREST_PER_SIZE:
        order = np.argsort(-(p / sizes), kind="stable")
    else:
        if bandwidth is None:
            raise ValidationError(
                "achievable selection requires the bandwidth budget")
        if bandwidth <= 0.0:
            raise ValidationError(
                f"bandwidth must be > 0, got {bandwidth}")
        # Reference share: the bandwidth one object would get if the
        # budget were spread over the space-capacity's worth of
        # mean-sized objects.
        mean_size = float(sizes.mean())
        expected_objects = max(capacity / mean_size, 1.0)
        reference_bandwidth = bandwidth / expected_objects
        reference_freqs = reference_bandwidth / sizes
        score = p * chosen_model.freshness(catalog.change_rates,
                                           reference_freqs)
        order = np.argsort(-(score / sizes), kind="stable")

    selected = []
    remaining = capacity
    for element in order.tolist():
        if sizes[element] <= remaining:
            selected.append(element)
            remaining -= sizes[element]
    return np.array(selected, dtype=np.int64)


def plan_selected_mirror(catalog: Catalog, capacity: float,
                         bandwidth: float, *,
                         strategy: SelectionStrategy | str =
                         SelectionStrategy.INTEREST_PER_SIZE,
                         model: FreshnessModel | None = None,
                         rng: np.random.Generator | None = None,
                         ) -> MirrorSelection:
    """Select mirror contents and solve the Core Problem over them.

    Args:
        catalog: The full database.
        capacity: Mirror space in size units.
        bandwidth: Sync bandwidth budget per period.
        strategy: Selection scoring rule.
        model: Freshness model.
        rng: Needed for random selection.

    Returns:
        The :class:`MirrorSelection`; its ``perceived_freshness``
        charges accesses to unmirrored objects as stale, making
        selections comparable system-wide.
    """
    indices = select_mirror(catalog, capacity, strategy,
                            bandwidth=bandwidth, model=model, rng=rng)
    frequencies = np.zeros(catalog.n_elements)
    if indices.size == 0:
        return MirrorSelection(indices=indices, frequencies=frequencies,
                               covered_interest=0.0,
                               perceived_freshness=0.0, space_used=0.0,
                               solution=ScheduleSolution(
                                   frequencies=np.empty(0),
                                   multiplier=0.0, bandwidth=0.0,
                                   objective=0.0, iterations=0))
    solution = solve_weighted_problem(
        catalog.access_probabilities[indices],
        catalog.change_rates[indices], catalog.sizes[indices],
        bandwidth, model=model)
    frequencies[indices] = solution.frequencies
    covered = float(catalog.access_probabilities[indices].sum())
    return MirrorSelection(
        indices=indices,
        frequencies=frequencies,
        covered_interest=covered,
        perceived_freshness=solution.objective,
        space_used=float(catalog.sizes[indices].sum()),
        solution=solution,
    )


class SpaceConstrainedFreshener(Freshener):
    """§7 selection as a drop-in :class:`~repro.core.freshener.
    Freshener` strategy.

    Wraps :func:`plan_selected_mirror` behind the standard
    ``plan(catalog, bandwidth)`` interface so the adaptive manager —
    and through it the chaos harness — can run the space-constrained
    path everywhere the exact or partitioned planners go.  Each replan
    re-selects mirror contents under the fixed space capacity and
    solves the Core Problem over the chosen subset; elements left out
    get zero frequency, exactly like an outage plan's dead elements.

    Args:
        capacity: Mirror space, in size units, > 0.  Held fixed
            across replans — when the manager re-solves over a
            reachable sub-catalog, the selection runs inside the same
            space budget.
        strategy: Selection scoring rule (deterministic rules only;
            ``random`` needs an rng the freshener interface does not
            carry).
        model: Freshness model for planning and the achievable score.
    """

    def __init__(self, capacity: float, *,
                 strategy: SelectionStrategy | str =
                 SelectionStrategy.INTEREST_PER_SIZE,
                 model: FreshnessModel | None = None) -> None:
        super().__init__(model=model)
        if capacity <= 0.0:
            raise ValidationError(
                f"capacity must be > 0, got {capacity}")
        strategy = SelectionStrategy.coerce(strategy)
        if strategy is SelectionStrategy.RANDOM:
            raise ValidationError(
                "SpaceConstrainedFreshener needs a deterministic "
                "strategy; 'random' requires an rng")
        self._capacity = capacity
        self._strategy = strategy

    @property
    def capacity(self) -> float:
        """Mirror space budget, in size units."""
        return self._capacity

    def plan(self, catalog: Catalog,
             bandwidth: float) -> FresheningPlan:
        """Select mirror contents, then solve over the subset.

        ``bandwidth`` is in size units per period; frequencies of
        unselected elements are zero.
        """
        selection = plan_selected_mirror(
            catalog, self._capacity, bandwidth,
            strategy=self._strategy, model=self._model)
        return self._finish(catalog, selection.frequencies, {
            "technique": "space-constrained",
            "strategy": self._strategy.value,
            "capacity": self._capacity,
            "selected": int(selection.indices.size),
            "covered_interest": selection.covered_interest,
            "space_used": selection.space_used,
        })
