"""Integration tests: topology through the channel, gate and engines.

Covers the sync path's relay-tree behavior (hop-ledger denial,
per-hop freshness stamps, latency-composed completions), the shared
retry admission gate, and the engine-dispatch contract: a plan with
a topology must route to the reference loop, while a quiet plan with
a topology stays fastpath-eligible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.freshener import PerceivedFreshener
from repro.errors import ValidationError
from repro.faults.channel import SyncChannel
from repro.faults.model import FaultPlan, IIDFaultModel, PollOutcome
from repro.faults.retry import RetryAdmissionGate, RetryPolicy
from repro.faults.topology import Topology
from repro.sim.mirror import Mirror
from repro.sim.simulation import Simulation
from repro.sim.source import Source
from repro.workloads.presets import ExperimentSetup, build_catalog

SETUP = ExperimentSetup(n_objects=24, updates_per_period=48.0,
                        syncs_per_period=12.0, theta=1.0,
                        update_std_dev=1.0)


def make_channel(n: int = 8, *, plan: FaultPlan | None = None,
                 sizes: np.ndarray | None = None,
                 **kwargs) -> tuple[SyncChannel, Topology]:
    topology = kwargs.pop("topology", None)
    if topology is None:
        topology = Topology.build(n, n_relays=2, edges_per_relay=2,
                                  seed=5, relay_latency=0.02,
                                  edge_latency=0.01)
    mirror = Mirror(Source(n), sizes=sizes)
    channel = SyncChannel(mirror,
                          plan=plan if plan is not None
                          else FaultPlan.quiet(),
                          rng=np.random.default_rng(0),
                          topology=topology, **kwargs)
    return channel, topology


class TestRetryAdmissionGate:
    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            RetryAdmissionGate(0.0, 1.0)
        with pytest.raises(ValidationError):
            RetryAdmissionGate(1.0, 0.0)

    def test_burst_drains_then_refills(self):
        gate = RetryAdmissionGate(2.0, 1.0)
        assert gate.admit(0.0)
        assert gate.admit(0.0)
        assert not gate.admit(0.0)      # bucket dry
        assert gate.admit(1.0)          # one period refills one token
        assert gate.admitted == 3
        assert gate.suppressed == 1

    def test_refill_is_monotonic_in_time(self):
        gate = RetryAdmissionGate(1.0, 10.0)
        assert gate.admit(5.0)
        # An out-of-order (earlier) retry time refills nothing.
        assert not gate.admit(4.0)
        assert gate.suppressed == 1

    def test_refill_clamps_at_capacity(self):
        gate = RetryAdmissionGate(2.0, 1.0)
        assert gate.admit(100.0)
        assert gate.admit(100.0)
        assert not gate.admit(100.0)

    def test_accessors(self):
        gate = RetryAdmissionGate(3.0, 2.0)
        assert gate.capacity == 3.0
        assert gate.refill_rate == 2.0


class TestChannelTopology:
    def test_element_count_must_match(self):
        topology = Topology.build(5, n_relays=2, edges_per_relay=2)
        with pytest.raises(ValidationError):
            make_channel(8, topology=topology)

    def test_shard_map_defaults_to_subtree_membership(self):
        channel, topology = make_channel(8)
        assert np.array_equal(channel._shard_of, topology.shard_of)

    def test_hop_saturation_denies_the_poll(self):
        topology = Topology.build(8, n_relays=2, edges_per_relay=2,
                                  seed=5, edge_bandwidth=2.0)
        channel, _ = make_channel(8, topology=topology,
                                  sizes=np.full(8, 1.5))
        element = 0
        assert channel.sync(element, 0.1).outcome is PollOutcome.OK
        # The edge uplink (2.0) has only 0.5 left: denied before the
        # wire, charged to the hop-denied ledger, not the fault plan.
        report = channel.sync(element, 0.2)
        assert report.outcome is PollOutcome.UNREACHABLE
        assert report.attempts == 0
        assert channel.hop_denied == 1
        # A fresh period restores the hop budgets.
        assert channel.sync(element, 1.2).outcome is PollOutcome.OK

    def test_ok_polls_charge_every_hop_on_the_path(self):
        channel, topology = make_channel(8, sizes=np.full(8, 2.0))
        channel.sync(3, 0.1)
        spent = channel.hop_spent()
        for node in topology.path_of_element(3):
            assert spent[node] == 2.0
        off_path = [node for node in range(1, topology.n_nodes)
                    if node not in topology.path_of_element(3)]
        assert all(spent[node] == 0.0 for node in off_path)

    def test_hop_ages_compose_along_the_path(self):
        channel, topology = make_channel(8)
        channel.sync(0, 1.0)
        ages = channel.hop_ages(2.0)
        path = topology.path_of_element(0)
        # The relay hop was stamped at 1.0 + relay latency, the edge
        # hop one edge latency later.
        assert ages[path[0]] == pytest.approx(2.0 - 1.02)
        assert ages[path[1]] == pytest.approx(2.0 - 1.03)
        composed = channel.composed_ages(2.0)
        assert composed[0] == pytest.approx(float(ages[list(path)].max()))
        # Elements under untouched hops age from the epoch.
        untouched = int(np.flatnonzero(
            ~topology.descendant_elements(path[0]))[0])
        assert composed[untouched] == pytest.approx(2.0)

    def test_admission_gate_suppresses_retries(self):
        plan = FaultPlan(models=(IIDFaultModel(
            1.0, failure=PollOutcome.TIMEOUT),))
        gate = RetryAdmissionGate(1.0, 1e-9)
        policy = RetryPolicy(max_retries=3, admission_gate=gate)
        channel, _ = make_channel(8, plan=plan, retry_policy=policy)
        channel.sync(0, 0.1)    # first retry takes the only token,
        channel.sync(1, 0.2)    # the second is suppressed; every
        channel.sync(2, 0.3)    # later sync's retry is suppressed too
        assert gate.admitted == 1
        assert channel.suppressed_retries == 3


class TestEngineDispatch:
    def make_sim(self, *, plan, topology, seed: int = 3) -> Simulation:
        catalog = build_catalog(SETUP, seed=1)
        frequencies = PerceivedFreshener().plan(
            catalog, SETUP.syncs_per_period).frequencies
        return Simulation(catalog, frequencies, request_rate=96.0,
                          rng=np.random.default_rng(seed),
                          fault_plan=plan, topology=topology)

    def topology(self) -> Topology:
        return Topology.build(SETUP.n_objects, n_relays=2,
                              edges_per_relay=2, seed=5)

    def test_topology_disables_the_faulted_kernel(self):
        plan = FaultPlan(models=(IIDFaultModel(0.1),))
        sim = self.make_sim(plan=plan, topology=self.topology())
        assert sim.fault_kernel_args() is None

    def test_forced_fastpath_rejects_topology_plans(self):
        plan = FaultPlan(models=(IIDFaultModel(0.1),))
        sim = self.make_sim(plan=plan, topology=self.topology())
        with pytest.raises(ValidationError,
                           match="relay topology"):
            sim.run(n_periods=2.0, engine="fastpath")

    def test_auto_routes_topology_plans_to_the_reference_loop(self):
        plan = FaultPlan(models=(IIDFaultModel(0.1),))
        auto = self.make_sim(plan=plan,
                             topology=self.topology()).run(
            n_periods=3.0, engine="auto")
        reference = self.make_sim(plan=plan,
                                  topology=self.topology()).run(
            n_periods=3.0, engine="reference")
        assert (auto.monitored_perceived_freshness
                == reference.monitored_perceived_freshness)
        assert auto.failed_polls == reference.failed_polls
        assert auto.hop_denied == reference.hop_denied

    def test_quiet_topology_keeps_the_fastpath(self):
        quiet = self.make_sim(plan=FaultPlan.quiet(),
                              topology=self.topology()).run(
            n_periods=3.0, engine="fastpath")
        bare = self.make_sim(plan=None, topology=None).run(
            n_periods=3.0, engine="fastpath")
        assert (quiet.monitored_perceived_freshness
                == bare.monitored_perceived_freshness)
        assert quiet.bandwidth_used == bare.bandwidth_used
