"""Sort-based partitioning heuristics (paper §3.1).

All techniques share one recipe: sort the N elements by a criterion,
then assign runs of ⌈N/k⌉ successive elements to each of k partitions.
The criteria are:

* **P** — access probability ``p`` (similar popularity together),
* **λ** — change rate (similar volatility together; included for
  completeness, and the paper shows it trails the others),
* **P/λ** — the ratio ``p/λ``, motivated by the optimal solution's
  structure (bandwidth rises with p, falls with λ),
* **PF** — perceived freshness at a reference frequency,
  ``p·F̄(λ, f₀)`` with f₀ = 1.0 (the paper's winner),
* **PF/s** — the size-aware variant ``p·F̄(λ, f₀/s)`` that divides
  the reference bandwidth by object size (paper §5.2),
* **size** — object size alone (size analogue of λ-partitioning,
  mentioned in §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

import numpy as np

from repro.contracts import check_partition_labels, postcondition
from repro.core.freshness import FixedOrderPolicy, FreshnessModel
from repro.errors import ContractViolationError, ValidationError
from repro.workloads.catalog import Catalog

__all__ = ["PartitioningStrategy", "PartitionAssignment", "sort_key",
           "partition_catalog", "contiguous_labels"]

_DEFAULT_MODEL = FixedOrderPolicy()

#: The reference sync frequency used by PF-style sort keys.  The paper
#: notes the exact value is unimportant and uses 1.0.
REFERENCE_FREQUENCY = 1.0


class PartitioningStrategy(str, Enum):
    """The paper's partitioning criteria."""

    P = "p"
    LAMBDA = "lambda"
    P_OVER_LAMBDA = "p-over-lambda"
    PF = "pf"
    PF_OVER_SIZE = "pf-over-size"
    SIZE = "size"

    @classmethod
    def coerce(cls, value: "PartitioningStrategy | str") -> "PartitioningStrategy":
        """Accept either a member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            options = ", ".join(member.value for member in cls)
            raise ValidationError(
                f"unknown partitioning strategy {value!r}; expected one of: "
                f"{options}") from exc


@dataclass(frozen=True)
class PartitionAssignment:
    """A partitioning of catalog elements.

    Attributes:
        labels: Partition index per element, shape ``(N,)``, values in
            ``[0, n_partitions)``.
        n_partitions: Number of partitions k.
        strategy: The criterion that produced the assignment, or None
            for externally supplied labels (e.g. k-means output).
    """

    labels: np.ndarray
    n_partitions: int
    strategy: PartitioningStrategy | None = None

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=int)
        if labels.ndim != 1:
            raise ValidationError("labels must be 1-D")
        if self.n_partitions < 1:
            raise ValidationError(
                f"n_partitions must be >= 1, got {self.n_partitions}")
        if labels.size and (labels.min() < 0
                            or labels.max() >= self.n_partitions):
            raise ValidationError(
                f"labels must lie in [0, {self.n_partitions})")
        labels = labels.copy()
        labels.flags.writeable = False
        object.__setattr__(self, "labels", labels)

    @property
    def counts(self) -> np.ndarray:
        """Elements per partition, shape ``(n_partitions,)``."""
        return np.bincount(self.labels, minlength=self.n_partitions)

    def with_labels(self, labels: np.ndarray) -> "PartitionAssignment":
        """The same k with new labels (used after k-means refinement)."""
        return PartitionAssignment(labels=labels,
                                   n_partitions=self.n_partitions,
                                   strategy=None)


def sort_key(catalog: Catalog,
             strategy: PartitioningStrategy | str, *,
             model: FreshnessModel | None = None,
             reference_frequency: float = REFERENCE_FREQUENCY) -> np.ndarray:
    """The per-element sort criterion for a partitioning strategy.

    Args:
        catalog: Workload description.
        strategy: Which criterion to compute.
        model: Freshness model for the PF-style keys.
        reference_frequency: f₀ in the PF keys, in syncs per period.

    Returns:
        One float per element; elements with similar values belong in
        the same partition.
    """
    strategy = PartitioningStrategy.coerce(strategy)
    chosen = model if model is not None else _DEFAULT_MODEL
    p = catalog.access_probabilities
    lam = catalog.change_rates
    if strategy is PartitioningStrategy.P:
        return p.copy()
    if strategy is PartitioningStrategy.LAMBDA:
        return lam.copy()
    if strategy is PartitioningStrategy.P_OVER_LAMBDA:
        with np.errstate(divide="ignore"):
            return np.where(lam > 0.0, p / np.maximum(lam, 1e-300), np.inf)
    if strategy is PartitioningStrategy.PF:
        reference = np.full_like(lam, reference_frequency)
        return p * chosen.freshness(lam, reference)
    if strategy is PartitioningStrategy.PF_OVER_SIZE:
        # One sync of a big page costs more bandwidth, so the
        # reference *bandwidth* is held constant: f₀/s per element.
        reference = reference_frequency / catalog.sizes
        return p * chosen.freshness(lam, reference)
    assert strategy is PartitioningStrategy.SIZE
    return catalog.sizes.copy()


def contiguous_labels(order: np.ndarray, n_partitions: int) -> np.ndarray:
    """Assign runs of sorted elements to partitions.

    Args:
        order: Element indices in sort order (e.g. from ``argsort``).
        n_partitions: Number of partitions k (clipped to N).

    Returns:
        Labels per element: the first ⌈N/k⌉ elements of ``order`` get
        partition 0, the next run partition 1, and so on (trailing
        partitions may be one element smaller when k ∤ N, as in the
        paper).
    """
    n = order.shape[0]
    if n_partitions < 1:
        raise ValidationError(
            f"n_partitions must be >= 1, got {n_partitions}")
    k = min(n_partitions, n)
    labels = np.empty(n, dtype=int)
    chunks = np.array_split(order, k)
    for index, chunk in enumerate(chunks):
        labels[chunk] = index
    return labels


def _check_partition_assignment(assignment: "PartitionAssignment",
                                arguments: Mapping[str, object]) -> None:
    """Postcondition: a complete, in-range labeling of the catalog.

    Every element must land in exactly one of the k partitions —
    the transformed-problem weights ``nₖ·p̄ₖ`` silently lose profile
    mass if any element is dropped.
    """
    catalog: Catalog = arguments["catalog"]  # type: ignore[assignment]
    check_partition_labels(assignment.labels, assignment.n_partitions,
                           where="partition_catalog")
    if assignment.labels.shape[0] != catalog.n_elements:
        raise ContractViolationError(
            "contract violated in partition_catalog: complete labeling "
            f"- produced {assignment.labels.shape[0]} labels for "
            f"{catalog.n_elements} elements")


@postcondition(_check_partition_assignment)
def partition_catalog(catalog: Catalog, n_partitions: int,
                      strategy: PartitioningStrategy | str, *,
                      model: FreshnessModel | None = None,
                      reference_frequency: float = REFERENCE_FREQUENCY,
                      ) -> PartitionAssignment:
    """Partition a catalog with one of the paper's sort-based techniques.

    Args:
        catalog: Workload description.
        n_partitions: Number of partitions k.
        strategy: Sort criterion.
        model: Freshness model for PF-style keys.
        reference_frequency: f₀ in the PF keys, in syncs per period.

    Returns:
        The :class:`PartitionAssignment` (k is clipped to N when
        callers ask for more partitions than elements).
    """
    strategy = PartitioningStrategy.coerce(strategy)
    key = sort_key(catalog, strategy, model=model,
                   reference_frequency=reference_frequency)
    order = np.argsort(key, kind="stable")
    k = min(n_partitions, catalog.n_elements)
    labels = contiguous_labels(order, k)
    return PartitionAssignment(labels=labels, n_partitions=k,
                               strategy=strategy)
