"""The simulation orchestrator: wire up Figure 4 and replay events.

A :class:`Simulation` connects the update generator to the
:class:`~repro.sim.source.Source`, the synchronization schedule and
request generator to the :class:`~repro.sim.mirror.Mirror`, and the
:class:`~repro.sim.evaluator.FreshnessMonitor` to everything, then
replays the merged event tape in time order.

Typical use::

    plan = PerceivedFreshener().plan(catalog, bandwidth=250.0)
    sim = Simulation(catalog, plan.frequencies, request_rate=1000.0,
                     rng=np.random.default_rng(0))
    result = sim.run(n_periods=20)
    result.monitored_perceived_freshness   # what users actually saw
"""

from __future__ import annotations

import numpy as np

from repro.contracts import (
    check_attempt_budget,
    check_sync_conservation,
    contracts_enabled,
)
from repro.core.scheduler import PhasePolicy, SyncSchedule
from repro.errors import ValidationError
from repro.faults.breaker import CircuitBreaker
from repro.faults.channel import SyncChannel
from repro.faults.model import FaultPlan, PollOutcome
from repro.faults.retry import RetryPolicy
from repro.faults.topology import Topology
from repro.obs import registry as obs
from repro.sim.events import (
    EventKind,
    EventStream,
    merge_kind_blocks,
    merge_sorted_blocks,
    merge_streams,
)
from repro.sim.evaluator import FreshnessMonitor, SimulationResult
from repro.sim.fastpath import (
    ReplayArena,
    StreamingReplay,
    replay_fastpath,
    replay_fastpath_faulted,
    replay_fastpath_ge,
)
from repro.sim.generators import RequestGenerator, UpdateGenerator
from repro.sim.mirror import Mirror
from repro.sim.source import Source
from repro.workloads.catalog import Catalog

__all__ = ["Simulation"]


class _PeriodTracker:
    """Per-period telemetry accumulator for :meth:`Simulation.run`.

    Only instantiated when telemetry is enabled, so the event loop
    pays a single ``is not None`` test per event otherwise.  Emits one
    ``"sim.period"`` event per completed sync period carrying the
    series the paper's figures are built from: syncs issued, budget
    utilization, accesses and their fresh fraction, and the mirror's
    instantaneous mean freshness at the period boundary.
    """

    __slots__ = ("_sizes", "_period_length", "_mirror", "_planned",
                 "_period", "syncs", "bandwidth", "updates",
                 "accesses", "fresh_accesses", "failed_polls",
                 "retries")

    def __init__(self, catalog: Catalog, planned_per_period: float,
                 period_length: float, mirror: Mirror) -> None:
        self._sizes = catalog.sizes
        self._period_length = period_length
        self._mirror = mirror
        self._planned = planned_per_period
        self._period = 0
        self.syncs = 0
        self.bandwidth = 0.0
        self.updates = 0
        self.accesses = 0
        self.fresh_accesses = 0
        self.failed_polls = 0
        self.retries = 0

    def advance_to(self, time: float) -> None:
        """Flush any periods fully elapsed before ``time``."""
        period = int(time / self._period_length)
        while self._period < period:
            self._flush()
            self._period += 1

    def note_sync(self, element: int) -> None:
        """Record one sync of ``element`` in the current period."""
        self.syncs += 1
        self.bandwidth += float(self._sizes[element])

    def note_access(self, fresh: bool) -> None:
        """Record one served access and whether it saw fresh data."""
        self.accesses += 1
        if fresh:
            self.fresh_accesses += 1

    def finish(self, n_periods: float) -> None:
        """Flush through the final (possibly partial) period."""
        last = max(int(np.ceil(n_periods)) - 1, 0)
        while self._period < last:
            self._flush()
            self._period += 1
        self._flush()

    def _flush(self) -> None:
        utilization = (self.bandwidth / self._planned
                       if self._planned else 0.0)
        obs.event(
            "sim.period",
            period=obs.element_label(self._period),
            syncs=self.syncs,
            bandwidth=self.bandwidth,
            budget_utilization=utilization,
            updates=self.updates,
            accesses=self.accesses,
            fresh_fraction=(self.fresh_accesses / self.accesses
                            if self.accesses else 1.0),
            mean_freshness=float(self._mirror.freshness_vector().mean()),
            failed_polls=self.failed_polls,
            retries=self.retries,
        )
        obs.counter_add("sim.periods")
        obs.gauge_set("sim.budget_utilization", utilization)
        self.syncs = 0
        self.bandwidth = 0.0
        self.updates = 0
        self.accesses = 0
        self.fresh_accesses = 0
        self.failed_polls = 0
        self.retries = 0


class Simulation:
    """A configured mirror-freshening simulation.

    Args:
        catalog: Workload description (profile, change rates, sizes).
        frequencies: Sync frequency per element, per period.
        request_rate: User accesses per period (the paper assumes
            "many users frequently access the mirror").
        rng: Seeded generator driving updates, requests and phases.
        period_length: Clock length of one sync period.
        phase_policy: How sync phases are staggered.
        update_generator: Optional replacement source-update process
            (anything with a ``generate(horizon) -> EventStream`` of
            UPDATE events — e.g. :class:`~repro.sim.bursty.
            BurstyUpdateGenerator` for model-misspecification
            studies).  Defaults to the catalog's Poisson processes.
        fault_plan: Optional fault plan for the sync path.  None (or
            a quiet plan) keeps the classic fault-free path and is a
            true no-op: no extra random draws, bit-identical results.
        retry_policy: Backoff policy for retryable poll failures
            (only meaningful with a fault plan).
        breaker: Optional per-shard circuit breaker (only meaningful
            with a fault plan).
        shard_of: Element → breaker-shard map, shape
            ``(n_elements,)``; identity by default (the topology's
            subtree shard map when a topology is given).
        topology: Optional source→relay→edge tree the sync path polls
            through (only meaningful with a fault plan).  Attempts
            must fit every hop ledger on their root-to-edge path and
            completions lag by path latency; topology plans are
            stateful, so they replay on the reference loop.
        bandwidth_budget: Per-period attempt budget B for the
            channel's retry ledger, in size units per period.
            Defaults to the schedule's planned spend
            ``Σ sizeᵢ·fᵢ`` — a schedule planned below the real
            budget therefore has retry headroom, a tight one does
            not.
        fault_rng: Optional dedicated generator for the fault layer
            (fault draws, retry jitter).  When given, the workload
            stream (updates, accesses, phases) drawn from ``rng`` is
            identical whatever the faults do — the common-random-
            numbers setup paired fault/no-fault comparisons need.
            Defaults to sharing ``rng``.
        record_fault_trace: When True (and a fault plan is active),
            the result carries the per-attempt ``fault_trace`` tape
            for determinism audits.
        fault_time_offset: Added to event times before they reach
            the fault layer (plan, breaker, retry ledger), in clock
            units.  Lets a caller that runs one period at a time —
            the adaptive manager — keep outage windows and breaker
            cooldowns on one global clock while each run's local
            clock restarts at zero.  Must be a whole number of
            periods so the channel's budget ledger stays aligned.
    """

    def __init__(self, catalog: Catalog, frequencies: np.ndarray, *,
                 request_rate: float, rng: np.random.Generator,
                 period_length: float = 1.0,
                 phase_policy: PhasePolicy | str =
                 PhasePolicy.STAGGERED,
                 update_generator: UpdateGenerator | None = None,
                 fault_plan: FaultPlan | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 shard_of: np.ndarray | None = None,
                 topology: Topology | None = None,
                 bandwidth_budget: float | None = None,
                 fault_rng: np.random.Generator | None = None,
                 record_fault_trace: bool = False,
                 fault_time_offset: float = 0.0
                 ) -> None:
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.shape != (catalog.n_elements,):
            raise ValidationError(
                f"frequencies shape {frequencies.shape} does not match "
                f"catalog size {catalog.n_elements}")
        if request_rate <= 0.0:
            raise ValidationError(
                f"request_rate must be > 0, got {request_rate}")
        if topology is not None and \
                topology.n_elements != catalog.n_elements:
            raise ValidationError(
                f"topology hosts {topology.n_elements} elements, "
                f"catalog has {catalog.n_elements}")
        if bandwidth_budget is not None and bandwidth_budget <= 0.0:
            raise ValidationError(
                f"bandwidth_budget must be > 0, got {bandwidth_budget}")
        remainder = fault_time_offset % period_length
        if fault_time_offset < 0.0 or min(
                remainder, period_length - remainder) > 1e-9:
            raise ValidationError(
                "fault_time_offset must be a non-negative whole "
                f"number of periods, got {fault_time_offset}")
        self._catalog = catalog
        self._frequencies = frequencies
        self._period_length = period_length
        self._rng = rng
        self._fault_plan = fault_plan
        self._retry_policy = retry_policy
        self._breaker = breaker
        self._shard_of = shard_of
        self._topology = topology
        self._bandwidth_budget = bandwidth_budget
        self._fault_rng = fault_rng
        self._record_fault_trace = record_fault_trace
        self._fault_time_offset = fault_time_offset
        # Planned bandwidth spend per period, Σ sizeᵢ·fᵢ — computed
        # once here instead of per run (it used to be duplicated in
        # run() and the period tracker).
        self._planned_per_period = float(catalog.sizes @ frequencies)
        self._schedule = SyncSchedule.from_frequencies(
            frequencies, period_length=period_length,
            phase_policy=phase_policy, rng=rng)
        self._updates = (update_generator if update_generator is not None
                         else UpdateGenerator(catalog,
                                              period_length=period_length,
                                              rng=rng))
        self._requests = RequestGenerator(
            catalog, rate=request_rate / period_length, rng=rng)

    @property
    def schedule(self) -> SyncSchedule:
        """The timed Fixed-Order schedule the mirror executes."""
        return self._schedule

    def build_tape(self, n_periods: float, *, fused: bool = True
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw and merge the run's full event tape.

        Consumes exactly the random draws :meth:`run` would before
        its replay starts (update stream first, then request stream),
        which is what lets the window-batched adaptive manager build
        several periods' tapes back to back and keep the workload
        stream bit-identical to per-period runs.

        Args:
            n_periods: Number of periods the tape covers, > 0.
            fused: Use the fused single-argsort merge over raw
                ``draw_window`` pulls (bit-identical output and rng
                consumption, roughly half the generation time).
                Falls back to the per-stream sort +
                :func:`~repro.sim.events.merge_streams` route
                automatically for custom update generators that lack
                ``draw_window``; pass False to force that legacy
                route (the generation benchmark's baseline).

        Returns:
            ``(times, elements, kinds)`` merged in time order.
        """
        horizon = n_periods * self._period_length
        draw_window = getattr(self._updates, "draw_window", None)
        if fused and draw_window is not None:
            update_times, update_elements = draw_window(0.0, horizon)
            sync_times, sync_elements = \
                self._schedule.events_until(horizon)
            access_times, access_elements = \
                self._requests.draw_window(0.0, horizon)
            return merge_kind_blocks(
                update_times, update_elements,
                sync_times, sync_elements,
                access_times, access_elements,
                n_elements=self._catalog.n_elements)
        sync_times, sync_elements = self._schedule.events_until(horizon)
        streams = [
            self._updates.generate(horizon),
            EventStream(kind=EventKind.SYNC, times=sync_times,
                        elements=sync_elements),
            self._requests.generate(horizon),
        ]
        return merge_streams(streams)

    def fault_kernel_args(self) -> dict | None:
        """The faulted kernel's plan/ledger arguments, if eligible.

        Returns None when the simulation is fault-free or its plan
        needs the reference loop (multi-model, latency, outages, a
        breaker, a relay topology, or a gated retry policy whose
        shared token bucket is cross-run stateful); otherwise the
        keyword arguments consumed by
        :func:`replay_fastpath_faulted`/:func:`replay_fastpath_ge`
        and :func:`repro.sim.fastpath.replay_window_tapes`, tagged
        with ``"kind"``: ``"iid"`` (failure probability/outcome) or
        ``"ge"`` (the single Gilbert–Elliott model, whose chain
        state the kernel threads explicitly), plus the shared retry
        policy, budget and fault rng.
        """
        if self._fault_plan is None or self._fault_plan.is_quiet:
            return None
        if self._breaker is not None:
            return None
        if self._topology is not None:
            # Hop ledgers and path latency are per-attempt stateful
            # effects the vectorized kernel cannot replay.
            return None
        if self._retry_policy is not None and \
                self._retry_policy.admission_gate is not None:
            # The herding gate's token bucket is shared across runs
            # (and managers); its admission order cannot be replayed
            # from a pre-drawn pool.
            return None
        budget = (self._bandwidth_budget
                  if self._bandwidth_budget is not None
                  else (self._planned_per_period
                        if self._planned_per_period > 0.0 else None))
        common = {
            "retry_policy": self._retry_policy,
            "bandwidth_budget": budget,
            "rng": (self._fault_rng if self._fault_rng is not None
                    else self._rng),
        }
        profile = self._fault_plan.iid_profile()
        if profile is not None:
            return {"kind": "iid", "failure_probability": profile[0],
                    "failure_outcome": profile[1], **common}
        model = self._fault_plan.ge_profile()
        if model is not None:
            return {"kind": "ge", "model": model, **common}
        return None

    def run(self, n_periods: float, *,
            engine: str = "auto",
            chunk_periods: int | None = None) -> SimulationResult:
        """Simulate ``n_periods`` sync periods.

        Args:
            n_periods: Number of periods to simulate, > 0 (several
                periods are needed for the monitored metrics to settle
                near the analytic values).
            engine: ``"auto"`` (default) replays fault-free tapes with
                the vectorized kernel (:mod:`repro.sim.fastpath`),
                stateless i.i.d.-loss plans with the vectorized
                faulted kernel, single retryable Gilbert–Elliott
                plans with the scan-vectorized burst kernel, and
                falls back to the per-event reference loop for
                everything else (latency, multi-model, outages,
                breakers, topologies, gated retries);
                ``"fastpath"`` insists on a kernel (an error for
                reference-only plans); ``"reference"`` forces the
                loop.  The engines are bit-identical, so this knob
                exists for equivalence tests and debugging, not for
                correctness.
            chunk_periods: When given, generate and replay the
                horizon in slabs of this many periods through the
                streaming engine (:class:`~repro.sim.fastpath.
                StreamingReplay`), keeping peak memory O(slab)
                instead of O(horizon).  Replay of a given tape is
                bit-identical to one-shot; *generation* switches to
                per-slab ``rng.spawn`` child streams, so results are
                statistically equivalent but not draw-identical to
                ``chunk_periods=None`` (see docs/PERFORMANCE.md).
                Requires a kernel-eligible plan and an update
                generator with ``draw_window``.

        Returns:
            The measured :class:`SimulationResult`.
        """
        if engine not in ("auto", "fastpath", "reference"):
            raise ValidationError(
                f"engine must be 'auto', 'fastpath' or 'reference', "
                f"got {engine!r}")
        if n_periods <= 0.0:
            raise ValidationError(f"n_periods must be > 0, got {n_periods}")
        if chunk_periods is not None:
            return self._run_streaming(n_periods, engine=engine,
                                       chunk_periods=chunk_periods)
        horizon = n_periods * self._period_length

        with obs.span("sim.generate"):
            times, elements, kinds = self.build_tape(n_periods)

        # A quiet (or absent) fault plan bypasses the channel
        # entirely: the fault-free paths below consume no extra
        # random draws, so results stay bit-identical.  Stateless
        # i.i.d. loss and single retryable Gilbert–Elliott plans
        # take the vectorized faulted kernels; everything else
        # (latency/multi-model/outages/breaker/topology/gated
        # retries) stays on the loop.
        planned_per_period = self._planned_per_period
        fault_free = self._fault_plan is None or self._fault_plan.is_quiet
        kernel_faults = (None if fault_free
                         else self.fault_kernel_args())
        if engine == "fastpath" and not fault_free and \
                kernel_faults is None:
            raise ValidationError(
                "engine='fastpath' cannot replay this fault plan "
                "(latency draws, multiple models, outage windows, a "
                "breaker, a relay topology, a gated retry policy or "
                "a non-retryable Gilbert–Elliott outcome); use "
                "'auto' or 'reference'")
        if fault_free and engine != "reference":
            with obs.span("sim.run"):
                result = replay_fastpath(
                    self._catalog, self._frequencies, times, elements,
                    kinds, horizon=horizon,
                    period_length=self._period_length,
                    n_periods=n_periods,
                    ledger_time_offset=self._fault_time_offset)
            if contracts_enabled():
                scheduled = self._frequencies > 0.0
                granularity = float(self._catalog.sizes[scheduled].sum())
                check_sync_conservation(
                    result.bandwidth_used,
                    planned_per_period,
                    n_periods,
                    granularity,
                    where="Simulation.run")
            return result
        if kernel_faults is not None and engine != "reference":
            kernel_kwargs = dict(kernel_faults)
            kernel = (replay_fastpath_ge
                      if kernel_kwargs.pop("kind") == "ge"
                      else replay_fastpath_faulted)
            with obs.span("sim.run"):
                result = kernel(
                    self._catalog, self._frequencies, times, elements,
                    kinds, horizon=horizon,
                    period_length=self._period_length,
                    n_periods=n_periods,
                    fault_time_offset=self._fault_time_offset,
                    record_fault_trace=self._record_fault_trace,
                    **kernel_kwargs)
            if contracts_enabled():
                scheduled = self._frequencies > 0.0
                granularity = float(self._catalog.sizes[scheduled].sum())
                check_sync_conservation(
                    result.bandwidth_used,
                    planned_per_period,
                    n_periods,
                    granularity,
                    where="Simulation.run")
                budget = kernel_faults["bandwidth_budget"]
                if budget is not None:
                    check_attempt_budget(
                        result.attempted_bandwidth,
                        budget,
                        float(np.ceil(n_periods)),
                        granularity,
                        where="Simulation.run")
            return result

        source = Source(self._catalog.n_elements)
        mirror = Mirror(source, sizes=self._catalog.sizes)
        monitor = FreshnessMonitor(self._catalog.n_elements, horizon)

        channel: SyncChannel | None = None
        budget: float | None = None
        if self._fault_plan is not None and not self._fault_plan.is_quiet:
            budget = (self._bandwidth_budget
                      if self._bandwidth_budget is not None
                      else (planned_per_period
                            if planned_per_period > 0.0 else None))
            channel = SyncChannel(
                mirror, plan=self._fault_plan,
                rng=(self._fault_rng if self._fault_rng is not None
                     else self._rng),
                retry_policy=self._retry_policy,
                breaker=self._breaker, shard_of=self._shard_of,
                topology=self._topology,
                bandwidth_budget=budget,
                period_length=self._period_length,
                record_trace=self._record_fault_trace)

        useful_syncs = 0
        n_updates = 0
        n_accesses = 0
        fresh_accesses = 0
        polls = np.zeros(self._catalog.n_elements, dtype=np.int64)
        changed_polls = np.zeros(self._catalog.n_elements, dtype=np.int64)
        update_kind = int(EventKind.UPDATE)
        sync_kind = int(EventKind.SYNC)
        # Per-period series tracker: hoisted to a local so the event
        # loop pays one bool test per event when telemetry is off.
        tracker = (_PeriodTracker(self._catalog, planned_per_period,
                                  self._period_length, mirror)
                   if obs.telemetry_enabled() else None)
        sim_span = obs.span("sim.run")
        with sim_span:
            for time, element, kind in zip(times.tolist(),
                                           elements.tolist(),
                                           kinds.tolist()):
                if tracker is not None:
                    tracker.advance_to(time)
                if kind == update_kind:
                    # Ledger: an update that catches a fresh copy
                    # opens a stale run — check before the source
                    # version bump makes the copy stale.
                    if tracker is not None and mirror.is_fresh(element):
                        obs.ledger_stale(
                            element, time + self._fault_time_offset)
                    source.apply_update(element)
                    monitor.note_update(element, time)
                    n_updates += 1
                    if tracker is not None:
                        tracker.updates += 1
                elif kind == sync_kind:
                    if channel is None:
                        polls[element] += 1
                        if mirror.sync(element):
                            useful_syncs += 1
                            changed_polls[element] += 1
                        monitor.note_sync(element, time)
                        if tracker is not None:
                            obs.ledger_refresh(
                                element,
                                time + self._fault_time_offset)
                            tracker.note_sync(element)
                    else:
                        report = channel.sync(
                            element, time + self._fault_time_offset)
                        succeeded = report.outcome is PollOutcome.OK
                        if succeeded:
                            # Only successful polls count as censored
                            # change-rate observations — a failed
                            # attempt reveals nothing about whether
                            # the element changed.
                            polls[element] += 1
                            if report.changed:
                                useful_syncs += 1
                                changed_polls[element] += 1
                            monitor.note_sync(element, time)
                            if tracker is not None:
                                obs.ledger_refresh(
                                    element,
                                    time + self._fault_time_offset)
                                tracker.note_sync(element)
                        if tracker is not None:
                            tracker.retries += report.retries
                            tracker.failed_polls += (
                                report.attempts - 1 if succeeded
                                else report.attempts)
                else:
                    fresh = mirror.serve_access(element)
                    monitor.note_access(element, time, fresh)
                    n_accesses += 1
                    if fresh:
                        fresh_accesses += 1
                    if tracker is not None:
                        tracker.note_access(fresh)
            if tracker is not None:
                tracker.finish(n_periods)
        monitor.close()

        if contracts_enabled():
            # Conservation law (ROADMAP): the schedule may not spend
            # more sync bandwidth than planned, up to Fixed-Order
            # granularity (at most one extra sync per scheduled
            # element over the horizon).
            scheduled = self._frequencies > 0.0
            granularity = float(self._catalog.sizes[scheduled].sum())
            check_sync_conservation(
                mirror.bandwidth_used,
                planned_per_period,
                n_periods,
                granularity,
                where="Simulation.run")
            if channel is not None and budget is not None:
                # Attempt accounting: every attempt, initial or
                # retry, is gated by the channel's period ledger, so
                # attempted bandwidth can never exceed B per period
                # (granularity slack only covers ceil effects at the
                # horizon's partial last period).
                check_attempt_budget(
                    channel.attempted_bandwidth,
                    budget,
                    float(np.ceil(n_periods)),
                    granularity,
                    where="Simulation.run")

        element_freshness = monitor.element_time_freshness()
        element_age = monitor.element_time_age()
        p = self._catalog.access_probabilities
        perceived_by_accesses = (fresh_accesses / n_accesses
                                 if n_accesses else float(p @ element_freshness))
        if tracker is not None:
            obs.counter_add("sim.runs")
            obs.counter_add("sim.engine.reference")
            obs.counter_add("sim.syncs", mirror.total_syncs)
            obs.counter_add("sim.useful_syncs", useful_syncs)
            obs.counter_add("sim.updates", n_updates)
            obs.counter_add("sim.accesses", n_accesses)
            obs.gauge_set("sim.bandwidth_used", mirror.bandwidth_used)
            obs.gauge_set("sim.monitored_perceived_freshness",
                          float(perceived_by_accesses))
            obs.gauge_set("sim.monitored_general_freshness",
                          float(element_freshness.mean()))
            if channel is not None:
                obs.gauge_set("sim.attempted_bandwidth",
                              channel.attempted_bandwidth)
                obs.gauge_set(
                    "sim.poll_failure_fraction",
                    (channel.failed_polls / channel.attempted_polls
                     if channel.attempted_polls else 0.0))
                if self._topology is not None:
                    ages = channel.hop_ages(
                        horizon + self._fault_time_offset)
                    obs.gauge_set("faults.topology.max_hop_age",
                                  float(ages.max()))
        return SimulationResult(
            catalog=self._catalog,
            frequencies=self._frequencies,
            horizon=horizon,
            period_length=self._period_length,
            n_updates=n_updates,
            n_syncs=mirror.total_syncs,
            n_accesses=n_accesses,
            useful_syncs=useful_syncs,
            bandwidth_used=mirror.bandwidth_used,
            monitored_perceived_freshness=float(perceived_by_accesses),
            monitored_time_perceived=float(p @ element_freshness),
            monitored_general_freshness=float(element_freshness.mean()),
            element_time_freshness=element_freshness,
            element_time_age=element_age,
            monitored_perceived_age=float(p @ element_age),
            access_counts=monitor.access_counts(),
            poll_counts=polls,
            changed_poll_counts=changed_polls,
            attempted_polls=(channel.attempted_polls
                             if channel is not None
                             else mirror.total_syncs),
            failed_polls=(channel.failed_polls
                          if channel is not None else 0),
            unreachable_polls=(channel.unreachable_polls
                               if channel is not None else 0),
            retries=channel.retries if channel is not None else 0,
            breaker_skips=(channel.breaker_skips
                           if channel is not None else 0),
            denied_polls=(channel.denied_polls
                          if channel is not None else 0),
            hop_denied=(channel.hop_denied
                        if channel is not None else 0),
            suppressed_retries=(channel.suppressed_retries
                                if channel is not None else 0),
            attempted_bandwidth=(channel.attempted_bandwidth
                                 if channel is not None
                                 else mirror.bandwidth_used),
            attempted_poll_counts=(channel.attempted_poll_counts()
                                   if channel is not None else None),
            failed_poll_counts=(channel.failed_poll_counts()
                                if channel is not None else None),
            unreachable_poll_counts=(channel.unreachable_poll_counts()
                                     if channel is not None else None),
            unreachable_elements=(channel.unreachable_mask()
                                  if channel is not None
                                  and self._breaker is not None
                                  else None),
            fault_trace=(tuple(channel.trace())
                         if channel is not None
                         and self._record_fault_trace else None),
        )

    def _run_streaming(self, n_periods: float, *, engine: str,
                       chunk_periods: int) -> SimulationResult:
        """Generate and replay the horizon in bounded period slabs.

        Each slab draws its own events from an ``rng.spawn`` child
        (canonical chunked draw order: sorted update window, sync
        schedule window, sorted request window), merges the three
        pre-sorted streams in O(slab) position arithmetic — no
        argsort anywhere on the slab path — and feeds them to the
        :class:`~repro.sim.fastpath.StreamingReplay` carry kernel.
        Peak memory is the carry state plus one slab's tape.
        Generators lacking ``draw_window_sorted`` (custom update
        processes exposing only the raw ``draw_window`` primitive)
        fall back to unsorted draws fused by one stable argsort.
        """
        if int(chunk_periods) != chunk_periods or chunk_periods < 1:
            raise ValidationError(
                f"chunk_periods must be a positive integer, got "
                f"{chunk_periods}")
        if engine == "reference":
            raise ValidationError(
                "chunk_periods streams through the fastpath kernel; "
                "use engine='auto' or 'fastpath'")
        fault_free = (self._fault_plan is None
                      or self._fault_plan.is_quiet)
        kernel_faults = (None if fault_free
                         else self.fault_kernel_args())
        if not fault_free and kernel_faults is None:
            raise ValidationError(
                "chunk_periods cannot replay this fault plan "
                "(latency draws, multiple models, outage windows, a "
                "breaker, a relay topology, a gated retry policy or "
                "a non-retryable Gilbert–Elliott outcome)")
        if not hasattr(self._updates, "draw_window"):
            raise ValidationError(
                "chunk_periods requires an update generator with a "
                "draw_window(start, end) primitive")

        chunk = int(chunk_periods)
        n_slabs = int(np.ceil(n_periods / chunk))
        try:
            children = self._rng.spawn(n_slabs)
        except (AttributeError, TypeError, ValueError):
            # Hand-built bit generator without a seed sequence:
            # derive children the draw-consuming way.
            children = [
                np.random.default_rng(np.random.SeedSequence(
                    int(self._rng.integers(np.iinfo(np.int64).max))))
                for _ in range(n_slabs)]

        streaming = StreamingReplay(
            self._catalog, self._frequencies,
            period_length=self._period_length, n_periods=n_periods,
            fault_args=kernel_faults,
            fault_time_offset=self._fault_time_offset,
            record_fault_trace=self._record_fault_trace)
        arena = ReplayArena()
        n_elements = self._catalog.n_elements
        sorted_draws = hasattr(self._updates, "draw_window_sorted")
        for slab, child in enumerate(children):
            first = slab * chunk
            last = min(first + chunk, n_periods)
            start = first * self._period_length
            end = last * self._period_length
            with obs.span("sim.generate"):
                sync_times, sync_elements = \
                    self._schedule.events_between(start, end)
                if sorted_draws:
                    update_times, update_elements = \
                        self._updates.draw_window_sorted(
                            start, end, rng=child, arena=arena)
                    access_times, access_elements = \
                        self._requests.draw_window_sorted(
                            start, end, rng=child, arena=arena)
                    times, elements, kinds = merge_sorted_blocks(
                        update_times, update_elements,
                        sync_times, sync_elements,
                        access_times, access_elements,
                        n_elements=n_elements)
                else:
                    update_times, update_elements = \
                        self._updates.draw_window(start, end,
                                                  rng=child,
                                                  arena=arena)
                    access_times, access_elements = \
                        self._requests.draw_window(start, end,
                                                   rng=child)
                    times, elements, kinds = merge_kind_blocks(
                        update_times, update_elements,
                        sync_times, sync_elements,
                        access_times, access_elements,
                        n_elements=n_elements, arena=arena)
            with obs.span("sim.run"):
                streaming.feed(times, elements, kinds,
                               n_periods=last - first)
        with obs.span("sim.run"):
            result = streaming.finish()

        if contracts_enabled():
            scheduled = self._frequencies > 0.0
            granularity = float(self._catalog.sizes[scheduled].sum())
            check_sync_conservation(
                result.bandwidth_used,
                self._planned_per_period,
                n_periods,
                granularity,
                where="Simulation.run")
            if kernel_faults is not None:
                budget = kernel_faults["bandwidth_budget"]
                if budget is not None:
                    check_attempt_budget(
                        result.attempted_bandwidth,
                        budget,
                        float(np.ceil(n_periods)),
                        granularity,
                        where="Simulation.run")
        return result
