"""Golden regression values for the headline experiments.

Shape assertions live in the benchmarks; these tests additionally pin
*exact* values at the default seed, so any unintended numerical
change — a solver tweak, a generator reorder, a tolerance slip —
trips immediately.  If a change is intentional, regenerate the values
and say so in the commit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.freshener import GeneralFreshener, PerceivedFreshener
from repro.core.solver import solve_core_problem
from repro.workloads.presets import (
    IDEAL_SETUP,
    TOY_BANDWIDTH,
    build_catalog,
    toy_example_catalog,
)


class TestGoldenTable1:
    def test_exact_frequencies(self):
        expected = {
            "P1": [1.149892, 1.358412, 1.353835, 1.137860, 0.0],
            "P2": [0.333333, 0.666667, 1.000000, 1.333333, 1.666667],
            "P3": [1.685736, 1.826306, 1.487958, 0.0, 0.0],
        }
        for profile, values in expected.items():
            solution = solve_core_problem(toy_example_catalog(profile),
                                          TOY_BANDWIDTH)
            # The solver's bisection tolerance leaves ~1e-3 wiggle in
            # the near-degenerate P1/P3 frequencies; objectives are
            # pinned far tighter below.
            assert solution.frequencies == pytest.approx(values,
                                                         abs=5e-3)

    def test_exact_objectives(self):
        expected = {"P1": 0.373889, "P2": 0.316738, "P3": 0.499469}
        for profile, value in expected.items():
            solution = solve_core_problem(toy_example_catalog(profile),
                                          TOY_BANDWIDTH)
            assert solution.objective == pytest.approx(value, abs=5e-5)


class TestGoldenIdealSetup:
    """Table-2 workload at seed 0, shuffled, θ = 1."""

    @pytest.fixture(scope="class")
    def catalog(self):
        return build_catalog(IDEAL_SETUP, alignment="shuffled", seed=0)

    def test_workload_statistics(self, catalog):
        assert catalog.change_rates.sum() == pytest.approx(
            962.118, abs=0.01)
        assert catalog.access_probabilities[0] == pytest.approx(
            0.147214, abs=1e-5)

    def test_pf_optimum(self, catalog):
        plan = PerceivedFreshener().plan(catalog,
                                         IDEAL_SETUP.syncs_per_period)
        assert plan.perceived_freshness == pytest.approx(0.622519,
                                                         abs=1e-4)

    def test_gf_baseline(self, catalog):
        plan = GeneralFreshener().plan(catalog,
                                       IDEAL_SETUP.syncs_per_period)
        assert plan.perceived_freshness == pytest.approx(0.272822,
                                                         abs=1e-3)
        assert plan.general_freshness == pytest.approx(0.316002,
                                                       abs=1e-3)

    def test_heuristic_at_fifty_partitions(self, catalog):
        from repro.core.freshener import PartitionedFreshener
        plan = PartitionedFreshener(50).plan(
            catalog, IDEAL_SETUP.syncs_per_period)
        assert plan.perceived_freshness == pytest.approx(0.601359,
                                                         abs=1e-3)
