"""Event representation for the freshening simulator.

The simulator is event-driven: three kinds of events touch an element
— a source-side *update*, a mirror-side *sync*, and a user *access*.
Streams of homogeneous events are generated in bulk (vectorized) and
then merged into one time-ordered tape which the simulation replays.

Tie-breaking at identical timestamps is by event kind: updates apply
before syncs (a sync at the same instant picks up the new version),
and accesses observe last (they see the post-sync state).  This makes
simultaneous-event semantics deterministic.

Memory discipline: a tape is three parallel arrays (structure of
arrays) — float64 times, int32 element ids, int8 kinds — 13 bytes
per event instead of 24, which is what keeps 10⁶-element replay
windows resident.  Element ids are validated to fit int32 (2³¹
elements is far past the catalog sizes the solvers handle); the
window batcher widens ids to int64 itself when it tiles several
periods into one virtual element space.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Iterable

import numpy as np

from repro.errors import ValidationError

__all__ = ["EventKind", "EventStream", "merge_kind_blocks",
           "merge_sorted_blocks", "merge_streams"]


class EventKind(IntEnum):
    """Event kinds, ordered by same-instant application priority."""

    UPDATE = 0
    SYNC = 1
    ACCESS = 2


@dataclass(frozen=True)
class EventStream:
    """A homogeneous, time-sorted stream of events.

    Attributes:
        kind: The event kind shared by the whole stream.
        times: Event instants, nondecreasing.
        elements: Element index per event.
    """

    kind: EventKind
    times: np.ndarray
    elements: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        raw_elements = np.asarray(self.elements)
        if (raw_elements.size
                and raw_elements.dtype.kind in "iu"
                and int(raw_elements.max())
                >= np.iinfo(np.int32).max):
            raise ValidationError(
                "element ids must fit int32 (SoA tape layout)")
        elements = raw_elements.astype(np.int32)
        if times.ndim != 1 or elements.ndim != 1:
            raise ValidationError("times and elements must be 1-D")
        if times.shape != elements.shape:
            raise ValidationError(
                f"times {times.shape} and elements {elements.shape} must "
                "have equal length")
        if times.size and (np.diff(times) < 0.0).any():
            raise ValidationError("event times must be nondecreasing")
        times = times.copy()
        # astype above already produced a private copy of elements.
        times.flags.writeable = False
        elements.flags.writeable = False
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "elements", elements)

    def __len__(self) -> int:
        return int(self.times.shape[0])


def merge_streams(streams: Iterable[EventStream],
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge event streams into one time-ordered tape.

    Args:
        streams: Any number of homogeneous streams.

    Returns:
        ``(times, elements, kinds)`` sorted by time with kind priority
        breaking ties (updates < syncs < accesses).
    """
    collected = list(streams)
    if not collected:
        return (np.empty(0), np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int8))
    times = np.concatenate([stream.times for stream in collected])
    elements = np.concatenate([stream.elements for stream in collected])
    kinds = np.concatenate([
        np.full(len(stream), int(stream.kind), dtype=np.int8)
        for stream in collected
    ])
    order = np.lexsort((kinds, times))
    return times[order], elements[order], kinds[order]


#: Below this many events the two-pass bucket sort's extra gathers
#: cost more than the timsort they shave off; fall back to a direct
#: stable argsort.
_BUCKET_SORT_MIN = 1 << 17


def _stable_time_argsort(times: np.ndarray) -> np.ndarray:
    """Stable argsort of event times, radix-accelerated at scale.

    Bit-identical to ``np.argsort(times, kind="stable")`` for any
    finite input: pass one stable-sorts coarse uint16 bucket keys (a
    monotone nondecreasing map of time, so numpy's integer radix sort
    applies), pass two stable-sorts the bucketed times (timsort on
    nearly-sorted data is cheap), and composing two stable sorts
    keyed (bucket, time) equals one stable sort keyed by time.  At
    replay scale this runs ~2-3x faster than a direct stable argsort
    of random float64 times.
    """
    n = times.shape[0]
    if n < _BUCKET_SORT_MIN:
        return np.argsort(times, kind="stable")
    t_min = times.min()
    t_max = times.max()
    if (not np.isfinite(t_min) or not np.isfinite(t_max)
            or not t_max > t_min):
        return np.argsort(times, kind="stable")
    keys = (times - t_min) * (65536.0 / (t_max - t_min))
    np.minimum(keys, 65535.0, out=keys)
    coarse = np.argsort(keys.astype(np.uint16), kind="stable")
    refine = np.argsort(times[coarse], kind="stable")
    return coarse[refine]


def merge_sorted_blocks(update_times: np.ndarray,
                        update_elements: np.ndarray,
                        sync_times: np.ndarray,
                        sync_elements: np.ndarray,
                        access_times: np.ndarray,
                        access_elements: np.ndarray, *,
                        n_elements: int,
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge three already-sorted streams into one SoA tape, O(n).

    The streaming slab pipeline draws each stream pre-sorted (see
    ``draw_window_sorted``), which turns the cross-kind merge into
    position arithmetic: an event's final slot is its own stream rank
    plus the number of events from the other two streams that land
    before it, counted by ``searchsorted`` with sides chosen to
    encode the update < sync < access same-instant priority.  Sorted
    needles keep every search sequential and cache-resident, so the
    merge costs a few O(n) passes instead of the full-tape stable
    argsort :func:`merge_kind_blocks` pays.

    Args:
        update_times: Sorted update instants.
        update_elements: Update element ids, parallel to the times.
        sync_times: Sorted sync instants.
        sync_elements: Sync element ids.
        access_times: Sorted access instants.
        access_elements: Access element ids.
        n_elements: Catalog size, for the int32 id-width check.

    Returns:
        ``(times, elements, kinds)`` — float64 / int32 / int8 arrays
        sorted by time with kind priority breaking ties.
    """
    if n_elements >= np.iinfo(np.int32).max:
        raise ValidationError(
            "element ids must fit int32 (SoA tape layout)")
    n_updates = update_times.shape[0]
    n_syncs = sync_times.shape[0]
    n_accesses = access_times.shape[0]
    total = n_updates + n_syncs + n_accesses
    # Rank within the merged tape: own-stream index, plus events from
    # the other streams that apply strictly earlier.  "left" against
    # a lower-priority stream counts strictly-smaller times only (at
    # a tie this event goes first); "right" against a higher-priority
    # stream also counts equal times (at a tie this event goes last).
    update_slots = (np.arange(n_updates)
                    + np.searchsorted(sync_times, update_times, "left")
                    + np.searchsorted(access_times, update_times,
                                      "left"))
    sync_slots = (np.arange(n_syncs)
                  + np.searchsorted(update_times, sync_times, "right")
                  + np.searchsorted(access_times, sync_times, "left"))
    access_slots = (np.arange(n_accesses)
                    + np.searchsorted(update_times, access_times,
                                      "right")
                    + np.searchsorted(sync_times, access_times,
                                      "right"))
    times = np.empty(total)
    elements = np.empty(total, dtype=np.int32)
    kinds = np.empty(total, dtype=np.int8)
    times[update_slots] = update_times
    times[sync_slots] = sync_times
    times[access_slots] = access_times
    elements[update_slots] = update_elements
    elements[sync_slots] = sync_elements
    elements[access_slots] = access_elements
    kinds[update_slots] = int(EventKind.UPDATE)
    kinds[sync_slots] = int(EventKind.SYNC)
    kinds[access_slots] = int(EventKind.ACCESS)
    return times, elements, kinds


def merge_kind_blocks(update_times: np.ndarray,
                      update_elements: np.ndarray,
                      sync_times: np.ndarray,
                      sync_elements: np.ndarray,
                      access_times: np.ndarray,
                      access_elements: np.ndarray, *,
                      n_elements: int,
                      arena: Any = None,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fuse raw per-kind draws into one time-ordered SoA tape.

    Replaces per-stream stable sorts + :func:`merge_streams`'s lexsort
    with a single stable argsort over the kind-ordered concatenation
    [updates, syncs, accesses].  The output is bit-identical to the
    two-pass route: within a kind the stable sort preserves generation
    order exactly as the per-stream sort did, and at cross-kind time
    ties the block layout supplies the update < sync < access priority
    the lexsort key encoded.  Update times may arrive unsorted (raw
    Poisson draws); sync and access inputs are already time-sorted,
    which the stable sort simply preserves.

    Args:
        update_times: Raw (unsorted) update instants.
        update_elements: Update element ids, parallel to the times.
        sync_times: Sorted sync instants.
        sync_elements: Sync element ids.
        access_times: Sorted access instants.
        access_elements: Access element ids.
        n_elements: Catalog size, for the int32 id-width check.
        arena: Optional :class:`~repro.sim.fastpath.ReplayArena` whose
            scratch buffers absorb the pre-sort concatenation; the
            returned arrays are fresh allocations either way (the
            sort gather allocates its own outputs).

    Returns:
        ``(times, elements, kinds)`` — float64 / int32 / int8 arrays
        sorted by time with kind priority breaking ties.
    """
    if n_elements >= np.iinfo(np.int32).max:
        raise ValidationError(
            "element ids must fit int32 (SoA tape layout)")
    n_updates = update_times.shape[0]
    n_syncs = sync_times.shape[0]
    n_accesses = access_times.shape[0]
    total = n_updates + n_syncs + n_accesses
    if arena is None:
        times = np.empty(total)
        elements = np.empty(total, dtype=np.int32)
        kinds = np.empty(total, dtype=np.int8)
    else:
        times = arena.take("merge_times", total, np.float64)
        elements = arena.take("merge_elements", total, np.int32)
        kinds = arena.take("merge_kinds", total, np.int8)
    bounds = (n_updates, n_updates + n_syncs, total)
    times[:bounds[0]] = update_times
    times[bounds[0]:bounds[1]] = sync_times
    times[bounds[1]:] = access_times
    elements[:bounds[0]] = update_elements
    elements[bounds[0]:bounds[1]] = sync_elements
    elements[bounds[1]:] = access_elements
    kinds[:bounds[0]] = int(EventKind.UPDATE)
    kinds[bounds[0]:bounds[1]] = int(EventKind.SYNC)
    kinds[bounds[1]:] = int(EventKind.ACCESS)
    order = _stable_time_argsort(times)
    return times[order], elements[order], kinds[order]
