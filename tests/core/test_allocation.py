"""Tests for repro.core.allocation — FFA vs FBA expansion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    AllocationPolicy,
    expand_partition_frequencies,
)
from repro.core.partitioning import PartitionAssignment, partition_catalog
from repro.core.representatives import build_representatives
from repro.errors import ValidationError

from tests.conftest import random_catalog


def build_problem(catalog, k):
    assignment = partition_catalog(catalog, k, "pf")
    return build_representatives(catalog, assignment)


class TestAllocationPolicyCoerce:
    def test_accepts_strings(self):
        assert AllocationPolicy.coerce("ffa") is \
            AllocationPolicy.FIXED_FREQUENCY
        assert AllocationPolicy.coerce("FBA") is \
            AllocationPolicy.FIXED_BANDWIDTH

    def test_rejects_unknown(self):
        with pytest.raises(ValidationError):
            AllocationPolicy.coerce("proportional")


class TestFfa:
    def test_every_member_gets_partition_frequency(self, sized_catalog):
        problem = build_problem(sized_catalog, 2)
        partition_freqs = np.array([2.0, 0.5])
        freqs = expand_partition_frequencies(
            sized_catalog, problem, partition_freqs,
            AllocationPolicy.FIXED_FREQUENCY)
        for element, label in enumerate(problem.assignment.labels):
            assert freqs[element] == partition_freqs[label]

    def test_bandwidth_conserved(self, sized_catalog):
        problem = build_problem(sized_catalog, 2)
        partition_freqs = np.array([2.0, 0.5])
        freqs = expand_partition_frequencies(
            sized_catalog, problem, partition_freqs, "ffa")
        spent = float(sized_catalog.sizes @ freqs)
        planned = float(problem.costs @ partition_freqs)
        assert spent == pytest.approx(planned, rel=1e-12)


class TestFba:
    def test_frequency_inverse_to_size(self, sized_catalog):
        problem = build_problem(sized_catalog, 1)
        freqs = expand_partition_frequencies(
            sized_catalog, problem, np.array([1.0]), "fba")
        # Same bandwidth per element: f_j * s_j constant.
        bandwidths = freqs * sized_catalog.sizes
        assert np.allclose(bandwidths, bandwidths[0])

    def test_smaller_objects_synced_more(self, sized_catalog):
        problem = build_problem(sized_catalog, 1)
        freqs = expand_partition_frequencies(
            sized_catalog, problem, np.array([1.0]), "fba")
        order = np.argsort(sized_catalog.sizes)
        assert (np.diff(freqs[order]) <= 1e-12).all()

    def test_bandwidth_conserved(self, sized_catalog):
        problem = build_problem(sized_catalog, 2)
        partition_freqs = np.array([1.5, 0.25])
        freqs = expand_partition_frequencies(
            sized_catalog, problem, partition_freqs, "fba")
        spent = float(sized_catalog.sizes @ freqs)
        planned = float(problem.costs @ partition_freqs)
        assert spent == pytest.approx(planned, rel=1e-12)

    def test_equals_ffa_for_uniform_sizes(self, rng):
        catalog = random_catalog(rng, 20)  # sizes all 1
        problem = build_problem(catalog, 4)
        partition_freqs = rng.uniform(0.1, 2.0, size=4)
        ffa = expand_partition_frequencies(catalog, problem,
                                           partition_freqs, "ffa")
        fba = expand_partition_frequencies(catalog, problem,
                                           partition_freqs, "fba")
        assert np.allclose(ffa, fba)


class TestValidation:
    def test_rejects_wrong_frequency_count(self, sized_catalog):
        problem = build_problem(sized_catalog, 2)
        with pytest.raises(ValidationError):
            expand_partition_frequencies(sized_catalog, problem,
                                         np.ones(3), "ffa")

    def test_rejects_negative_frequencies(self, sized_catalog):
        problem = build_problem(sized_catalog, 2)
        with pytest.raises(ValidationError):
            expand_partition_frequencies(sized_catalog, problem,
                                         np.array([1.0, -0.5]), "fba")

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_both_policies_conserve_bandwidth(self, k, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 24, sized=True)
        problem = build_problem(catalog, k)
        partition_freqs = rng.uniform(0.0, 2.0, size=problem.n_partitions)
        planned = float(problem.costs @ partition_freqs)
        for policy in AllocationPolicy:
            freqs = expand_partition_frequencies(catalog, problem,
                                                 partition_freqs, policy)
            assert (freqs >= 0.0).all()
            spent = float(catalog.sizes @ freqs)
            assert spent == pytest.approx(planned, rel=1e-9)
