"""Pragma handling: every seeded violation here is suppressed."""
# freshlint: disable-file=FL007

import numpy as np


def bootstrap_unseeded(n):
    rng = np.random.default_rng()  # freshlint: disable=FL001
    print("bootstrapping", n)      # suppressed by the file pragma
    return rng.random(n)
