"""Small-sample statistics for simulation replications.

Simulation results are random; a single run proves little.  This
module provides Student-t confidence intervals for replication means
— self-contained (no scipy): two-sided t critical values are tabled
for small degrees of freedom and approximated by the Cornish-Fisher
expansion beyond the table, accurate to ~1e-3 over the confidence
levels experiments use (0.9, 0.95, 0.99).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["ConfidenceInterval", "t_critical_value",
           "mean_confidence_interval"]

# Two-sided critical values t_{df, 1-α/2} for common confidences.
_T_TABLE = {
    0.90: [6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946,
           1.8595, 1.8331, 1.8125, 1.7959, 1.7823, 1.7709, 1.7613,
           1.7531, 1.7459, 1.7396, 1.7341, 1.7291, 1.7247, 1.7207,
           1.7171, 1.7139, 1.7109, 1.7081, 1.7056, 1.7033, 1.7011,
           1.6991, 1.6973],
    0.95: [12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646,
           2.3060, 2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448,
           2.1314, 2.1199, 2.1098, 2.1009, 2.0930, 2.0860, 2.0796,
           2.0739, 2.0687, 2.0639, 2.0595, 2.0555, 2.0518, 2.0484,
           2.0452, 2.0423],
    0.99: [63.6567, 9.9248, 5.8409, 4.6041, 4.0321, 3.7074, 3.4995,
           3.3554, 3.2498, 3.1693, 3.1058, 3.0545, 3.0123, 2.9768,
           2.9467, 2.9208, 2.8982, 2.8784, 2.8609, 2.8453, 2.8314,
           2.8188, 2.8073, 2.7969, 2.7874, 2.7787, 2.7707, 2.7633,
           2.7564, 2.7500],
}

# Standard normal two-sided critical values for the same confidences.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A replication-mean confidence interval.

    Attributes:
        mean: Sample mean.
        half_width: Half-width of the interval.
        confidence: Nominal coverage (e.g. 0.95).
        n_samples: Number of replications.
    """

    mean: float
    half_width: float
    confidence: float
    n_samples: int

    @property
    def low(self) -> float:
        """Lower endpoint."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return bool(self.low <= value <= self.high)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.mean:.4f} ± {self.half_width:.4f} "
                f"({self.confidence:.0%}, n={self.n_samples})")


def t_critical_value(df: int, confidence: float) -> float:
    """Two-sided Student-t critical value ``t_{df, 1−α/2}``.

    Args:
        df: Degrees of freedom, >= 1.
        confidence: One of 0.90, 0.95, 0.99.

    Returns:
        The critical value (tabled for df <= 30; Cornish–Fisher
        corrected normal beyond).

    Raises:
        ValidationError: On unsupported confidence or df < 1.
    """
    if df < 1:
        raise ValidationError(f"df must be >= 1, got {df}")
    if confidence not in _T_TABLE:
        raise ValidationError(
            f"confidence must be one of {sorted(_T_TABLE)}, got "
            f"{confidence}")
    table = _T_TABLE[confidence]
    if df <= len(table):
        return table[df - 1]
    # Cornish–Fisher: t ≈ z + (z³ + z)/(4·df).
    z = _Z_VALUES[confidence]
    return z + (z ** 3 + z) / (4.0 * df)


def mean_confidence_interval(samples: np.ndarray, *,
                             confidence: float = 0.95
                             ) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of replications.

    Args:
        samples: Replication values, at least 2.
        confidence: Nominal coverage.

    Returns:
        The :class:`ConfidenceInterval`.

    Raises:
        ValidationError: With fewer than 2 samples (no variance
            estimate) or non-finite values.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise ValidationError("samples must be 1-D")
    if samples.size < 2:
        raise ValidationError(
            f"need at least 2 replications, got {samples.size}")
    if not np.isfinite(samples).all():
        raise ValidationError("samples must be finite")
    n = samples.size
    mean = float(samples.mean())
    std_error = float(samples.std(ddof=1)) / np.sqrt(n)
    t_value = t_critical_value(n - 1, confidence)
    return ConfidenceInterval(mean=mean,
                              half_width=t_value * std_error,
                              confidence=confidence, n_samples=n)
