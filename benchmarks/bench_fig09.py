"""Figure 9 — perceived freshness vs solution time with clustering.

The transformed problems are solved through the *generic NLP* path
(the IMSL substitute) to preserve the paper's cost model.  Absolute
seconds differ from the paper's 2002 hardware; the reproduced claim
is the shape: starting from a coarse partitioning and spending time
on k-means iterations reaches higher freshness per second than
buying more partitions on the cluster line.

Scale note: 20 000 objects by default (same per-object statistics as
Table 3); pass ``setup=BIG_SETUP`` for the paper's full scale.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure9
from repro.analysis.tables import format_table


def test_figure9(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: figure9(cluster_line_counts=np.array([20, 50, 100, 200]),
                        iteration_path_counts=(50, 150),
                        iteration_counts=(0, 1, 3, 5)),
        rounds=1, iterations=1)

    line = sweep.get("CLUSTER_LINE")
    path50 = sweep.get("50 CLUSTERS")

    # Clustering lifts k=50 above its own cluster-line starting point.
    assert path50.y[-1] > path50.y[0] + 0.01
    # Refined k=50 beats the unrefined finest cluster-line point.
    assert path50.y[-1] > line.y[-1]

    blocks = []
    for series in sweep.series:
        rows = list(zip(np.round(series.x, 3).tolist(),
                        np.round(series.y, 4).tolist()))
        blocks.append(f"{series.label}\n" + format_table(
            ["time (s)", "perceived freshness"], rows))
    report("figure09", "\n\n".join(blocks))
