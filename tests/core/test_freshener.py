"""Tests for repro.core.freshener — the high-level facade."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshener import (
    GeneralFreshener,
    PartitionedFreshener,
    PerceivedFreshener,
)
from repro.core.partitioning import PartitioningStrategy
from repro.core.solver import solve_core_problem
from repro.errors import ValidationError
from repro.workloads.presets import ExperimentSetup, build_catalog

from tests.conftest import random_catalog


@pytest.fixture
def experiment_catalog():
    setup = ExperimentSetup(n_objects=100, updates_per_period=200.0,
                            syncs_per_period=50.0, theta=1.0,
                            update_std_dev=1.0)
    return build_catalog(setup, alignment="shuffled", seed=1)


class TestPerceivedFreshener:
    def test_plan_is_the_exact_optimum(self, experiment_catalog):
        plan = PerceivedFreshener().plan(experiment_catalog, 50.0)
        exact = solve_core_problem(experiment_catalog, 50.0)
        assert np.allclose(plan.frequencies, exact.frequencies)
        assert plan.perceived_freshness == pytest.approx(exact.objective)

    def test_plan_consumes_budget(self, experiment_catalog):
        plan = PerceivedFreshener().plan(experiment_catalog, 50.0)
        assert plan.bandwidth == pytest.approx(50.0, rel=1e-8)

    def test_metadata(self, experiment_catalog):
        plan = PerceivedFreshener().plan(experiment_catalog, 50.0)
        assert plan.metadata["technique"] == "PF"

    def test_schedule_roundtrip(self, experiment_catalog):
        plan = PerceivedFreshener().plan(experiment_catalog, 50.0)
        schedule = plan.schedule(period_length=2.0)
        assert schedule.syncs_per_period() == pytest.approx(
            plan.frequencies.sum())
        assert schedule.period_length == 2.0


class TestGeneralFreshener:
    def test_ignores_profile(self, experiment_catalog):
        gf_plan = GeneralFreshener().plan(experiment_catalog, 50.0)
        uniform = experiment_catalog.with_uniform_profile()
        uniform_plan = PerceivedFreshener().plan(uniform, 50.0)
        assert np.allclose(gf_plan.frequencies, uniform_plan.frequencies)

    def test_gf_maximizes_general_freshness(self, experiment_catalog):
        gf_plan = GeneralFreshener().plan(experiment_catalog, 50.0)
        pf_plan = PerceivedFreshener().plan(experiment_catalog, 50.0)
        assert gf_plan.general_freshness >= pf_plan.general_freshness - 1e-9

    def test_pf_beats_gf_on_perceived_freshness(self, experiment_catalog):
        """The paper's central claim, as an invariant."""
        gf_plan = GeneralFreshener().plan(experiment_catalog, 50.0)
        pf_plan = PerceivedFreshener().plan(experiment_catalog, 50.0)
        assert pf_plan.perceived_freshness >= \
            gf_plan.perceived_freshness - 1e-9

    def test_equal_under_uniform_profile(self, rng):
        catalog = random_catalog(rng, 40).with_uniform_profile()
        gf_plan = GeneralFreshener().plan(catalog, 20.0)
        pf_plan = PerceivedFreshener().plan(catalog, 20.0)
        assert pf_plan.perceived_freshness == pytest.approx(
            gf_plan.perceived_freshness, abs=1e-9)


class TestPartitionedFreshener:
    def test_validates_configuration(self):
        with pytest.raises(ValidationError):
            PartitionedFreshener(0)
        with pytest.raises(ValidationError):
            PartitionedFreshener(5, cluster_iterations=-1)
        with pytest.raises(ValidationError):
            PartitionedFreshener(5, solver="imsl")
        with pytest.raises(ValidationError):
            PartitionedFreshener(5, strategy="nope")

    def test_never_beats_optimum(self, experiment_catalog):
        exact = solve_core_problem(experiment_catalog, 50.0)
        for k in (2, 5, 20, 50):
            plan = PartitionedFreshener(k).plan(experiment_catalog, 50.0)
            assert plan.perceived_freshness <= exact.objective + 1e-8

    def test_quality_improves_with_partitions(self, experiment_catalog):
        coarse = PartitionedFreshener(2).plan(experiment_catalog, 50.0)
        fine = PartitionedFreshener(50).plan(experiment_catalog, 50.0)
        assert fine.perceived_freshness >= coarse.perceived_freshness

    def test_k_equals_n_matches_optimum(self, experiment_catalog):
        plan = PartitionedFreshener(100).plan(experiment_catalog, 50.0)
        exact = solve_core_problem(experiment_catalog, 50.0)
        assert plan.perceived_freshness == pytest.approx(exact.objective,
                                                         abs=1e-6)

    def test_clustering_helps_coarse_partitions(self, experiment_catalog):
        plain = PartitionedFreshener(5).plan(experiment_catalog, 50.0)
        refined = PartitionedFreshener(
            5, cluster_iterations=5).plan(experiment_catalog, 50.0)
        assert refined.perceived_freshness >= \
            plain.perceived_freshness - 1e-6

    def test_nlp_solver_path_agrees(self, experiment_catalog):
        exact_path = PartitionedFreshener(10).plan(experiment_catalog,
                                                   50.0)
        nlp_path = PartitionedFreshener(10, solver="nlp").plan(
            experiment_catalog, 50.0)
        assert nlp_path.perceived_freshness == pytest.approx(
            exact_path.perceived_freshness, abs=1e-5)

    def test_budget_respected(self, experiment_catalog):
        plan = PartitionedFreshener(8).plan(experiment_catalog, 50.0)
        assert plan.bandwidth == pytest.approx(50.0, rel=1e-6)

    def test_metadata_records_configuration(self, experiment_catalog):
        plan = PartitionedFreshener(
            8, strategy="p", cluster_iterations=2,
            allocation="ffa").plan(experiment_catalog, 50.0)
        assert plan.metadata["strategy"] == "p"
        assert plan.metadata["n_partitions"] == 8
        assert plan.metadata["allocation"] == "ffa"

    @given(st.sampled_from(list(PartitioningStrategy)),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_any_strategy_produces_feasible_plan(self, strategy, k, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 30, sized=True)
        plan = PartitionedFreshener(k, strategy=strategy).plan(catalog,
                                                               10.0)
        assert (plan.frequencies >= 0.0).all()
        assert plan.bandwidth == pytest.approx(10.0, rel=1e-6)
        assert 0.0 <= plan.perceived_freshness <= 1.0
