"""Parameter presets and catalog builders for the paper's experiments.

Table 2 ("Ideal Experiments", used by Figures 3, 5, 6, 8):

    NumObjects 500, NumUpdatesPerPeriod 1000, NumSyncsPerPeriod 250,
    Theta 0.0–1.6, UpdateStdDev 1.0

Table 3 ("Partitioning Experiments", used by Figure 7):

    NumObjects 500000, NumUpdatesPerPeriod 1000000,
    NumSyncsPerPeriod 250000, Theta 1.0, UpdateStdDev 2.0

The toy example of §2.2.1 (five elements, λ = 1..5, B = 5, profiles
P1/P2/P3) backing Table 1 is also provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.parallel import seed_rng
from repro.workloads.alignment import Alignment, align_values
from repro.workloads.catalog import Catalog
from repro.workloads.distributions import (
    gamma_change_rates,
    pareto_sizes,
    zipf_probabilities,
)

__all__ = [
    "ExperimentSetup",
    "IDEAL_SETUP",
    "BIG_SETUP",
    "build_catalog",
    "toy_example_catalog",
    "TOY_PROFILES",
    "TOY_BANDWIDTH",
]


@dataclass(frozen=True)
class ExperimentSetup:
    """One row of the paper's setup tables.

    Attributes:
        n_objects: Database size N.
        updates_per_period: Total expected updates per sync period
            (mean change rate is this divided by N).
        syncs_per_period: Bandwidth budget B in syncs per period.
        theta: Zipf skew of the access profile.
        update_std_dev: Standard deviation σ of the gamma change-rate
            distribution.
    """

    n_objects: int
    updates_per_period: float
    syncs_per_period: float
    theta: float
    update_std_dev: float

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValidationError(
                f"n_objects must be >= 1, got {self.n_objects}")
        if self.updates_per_period <= 0.0:
            raise ValidationError("updates_per_period must be > 0")
        if self.syncs_per_period <= 0.0:
            raise ValidationError("syncs_per_period must be > 0")
        if self.theta < 0.0:
            raise ValidationError("theta must be >= 0")
        if self.update_std_dev <= 0.0:
            raise ValidationError("update_std_dev must be > 0")

    @property
    def mean_change_rate(self) -> float:
        """Mean updates per object per period."""
        return self.updates_per_period / self.n_objects

    def with_theta(self, theta: float) -> "ExperimentSetup":
        """The same setup at a different Zipf skew."""
        return ExperimentSetup(
            n_objects=self.n_objects,
            updates_per_period=self.updates_per_period,
            syncs_per_period=self.syncs_per_period,
            theta=theta,
            update_std_dev=self.update_std_dev,
        )


#: Table 2 — the "ideal experiments" setup (θ is swept 0.0–1.6; the
#: preset pins the midpoint used by the partitioning figures).
IDEAL_SETUP = ExperimentSetup(n_objects=500, updates_per_period=1000.0,
                              syncs_per_period=250.0, theta=1.0,
                              update_std_dev=1.0)

#: Table 3 — the "big case" partitioning setup.
BIG_SETUP = ExperimentSetup(n_objects=500_000,
                            updates_per_period=1_000_000.0,
                            syncs_per_period=250_000.0, theta=1.0,
                            update_std_dev=2.0)


def build_catalog(setup: ExperimentSetup, *,
                  alignment: Alignment | str = Alignment.SHUFFLED,
                  seed: int | np.random.Generator = 0,
                  theta: float | None = None,
                  size_shape: float | None = None,
                  size_alignment: Alignment | str | None = None) -> Catalog:
    """Materialize a catalog for an experiment setup.

    Args:
        setup: The parameter preset.
        alignment: Relationship between change rates and popularity.
        seed: Seed or generator for all sampling.
        theta: Optional Zipf-skew override (for θ sweeps).
        size_shape: If given, sample Pareto object sizes with this
            shape (mean 1.0); otherwise all sizes are 1.
        size_alignment: Relationship between sizes and popularity;
            defaults to the change-rate alignment when sizes are used.

    Returns:
        A fully populated :class:`Catalog`.
    """
    rng = (seed if isinstance(seed, np.random.Generator)
           else seed_rng(seed))
    skew = setup.theta if theta is None else theta
    probabilities = zipf_probabilities(setup.n_objects, skew)
    raw_rates = gamma_change_rates(setup.n_objects,
                                   mean=setup.mean_change_rate,
                                   std_dev=setup.update_std_dev, rng=rng)
    rates = align_values(raw_rates, alignment, rng=rng)
    sizes = None
    if size_shape is not None:
        raw_sizes = pareto_sizes(setup.n_objects, shape=size_shape,
                                 mean=1.0, rng=rng)
        chosen = (alignment if size_alignment is None else size_alignment)
        sizes = align_values(raw_sizes, chosen, rng=rng)
    return Catalog(access_probabilities=probabilities, change_rates=rates,
                   sizes=sizes)


#: The three access-probability profiles of the §2.2.1 toy example.
TOY_PROFILES = {
    "P1": np.full(5, 1.0 / 5.0),
    "P2": np.arange(1, 6, dtype=float) / 15.0,
    "P3": np.arange(5, 0, -1, dtype=float) / 15.0,
}

#: The toy example's bandwidth constraint (elements/day).
TOY_BANDWIDTH = 5.0


def toy_example_catalog(profile: str = "P1") -> Catalog:
    """The five-element example behind Table 1.

    Elements change at 1..5 times/day; ``profile`` selects P1
    (uniform), P2 (hottest change the most) or P3 (hottest change the
    least).

    Args:
        profile: One of ``"P1"``, ``"P2"``, ``"P3"``.

    Returns:
        The example catalog.

    Raises:
        ValidationError: For an unknown profile name.
    """
    if profile not in TOY_PROFILES:
        raise ValidationError(
            f"unknown toy profile {profile!r}; expected one of "
            f"{sorted(TOY_PROFILES)}")
    return Catalog(access_probabilities=TOY_PROFILES[profile].copy(),
                   change_rates=np.arange(1, 6, dtype=float))
