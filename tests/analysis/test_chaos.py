"""Tests for the chaos harness: scenarios, report, and the headline
degraded-mode claim.

The expensive end-to-end runs live in one module-scoped fixture so
the acceptance claim (aware > blind under 20% i.i.d. loss) and the
report-shape assertions share a single simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.chaos import (CHAOS_SETUP, ChaosReport,
                                  format_chaos_report, run_chaos)
from repro.errors import ValidationError
from repro.faults.scenarios import CHAOS_SCENARIOS
from repro.obs import registry as obs


@pytest.fixture(scope="module")
def iid20_report() -> ChaosReport:
    return run_chaos("iid20", seed=0)


class TestScenarioRegistry:
    def test_expected_scenarios_are_registered(self):
        assert {"iid20", "burst", "outage", "latency",
                "flaky-shard"} <= set(CHAOS_SCENARIOS)
        for name, scenario in CHAOS_SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description

    def test_plans_are_rebuilt_fresh_per_run(self):
        scenario = CHAOS_SCENARIOS["burst"]
        assert scenario.plan(10, 20.0) is not scenario.plan(10, 20.0)

    def test_grouped_shard_map_shape_and_granularity(self):
        scenario = CHAOS_SCENARIOS["outage"]
        shards = scenario.shard_of(60)
        assert shards.shape == (60,)
        grouped = int((shards == 0).sum())
        assert grouped == 12          # first fifth shares shard 0
        assert scenario.n_shards(60) == 60 - grouped + 1
        # Identity sharding stays None.
        assert CHAOS_SCENARIOS["iid20"].shard_of(60) is None
        assert CHAOS_SCENARIOS["iid20"].n_shards(60) == 60

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValidationError):
            run_chaos("nope", n_periods=4, warmup=1)

    def test_warmup_must_fit_inside_the_run(self):
        with pytest.raises(ValidationError):
            run_chaos("iid20", n_periods=5, warmup=5)


class TestDegradedModeClaim:
    def test_aware_manager_beats_blind_under_iid_loss(self, iid20_report):
        """The tentpole acceptance claim: with 20% i.i.d. loss the
        degraded-mode manager delivers strictly higher steady-state
        PF than the fault-blind one."""
        assert iid20_report.recovery > 0.0
        assert iid20_report.aware_mean > iid20_report.blind_mean

    def test_faults_cost_the_blind_manager_real_freshness(self,
                                                          iid20_report):
        assert iid20_report.degradation > 0.02
        assert iid20_report.baseline_mean > iid20_report.blind_mean

    def test_series_are_aligned_and_plausible(self, iid20_report):
        r = iid20_report
        for series in (r.baseline_pf, r.blind_pf, r.aware_pf):
            assert series.shape == (r.n_periods,)
            assert np.all((series >= 0.0) & (series <= 1.0))
        # The fault-free arm never fails a poll; the faulty arms do.
        assert r.blind_failed.sum() > 0
        assert r.aware_failed.sum() > 0

    def test_report_is_deterministic_given_seed(self):
        a = run_chaos("iid20", n_periods=8, warmup=2, seed=5)
        b = run_chaos("iid20", n_periods=8, warmup=2, seed=5)
        assert np.array_equal(a.aware_pf, b.aware_pf)
        assert np.array_equal(a.blind_pf, b.blind_pf)
        assert np.array_equal(a.blind_failed, b.blind_failed)


class TestReportRendering:
    def test_format_contains_summary_and_acceptance_line(self,
                                                         iid20_report):
        text = format_chaos_report(iid20_report, every=5)
        assert "iid20" in text
        assert "recovery" in text
        assert "degradation" in text
        assert (f"periods {iid20_report.warmup + 1}-"
                f"{iid20_report.n_periods}") in text

    def test_chaos_run_emits_telemetry_gauges(self):
        with obs.telemetry() as registry:
            run_chaos("iid20", n_periods=6, warmup=2, seed=3)
        assert "chaos.recovery" in registry.gauges
        assert "chaos.degradation" in registry.gauges
        assert any(path.startswith("chaos.iid20")
                   for path in registry.span_totals)


class TestChaosSetup:
    def test_workload_is_skewed_and_oversubscribed(self):
        """The default chaos workload must keep the properties the
        scenario calibration relies on: a hot head (so the blind
        manager's late-period dead zone costs PF) and more update
        mass than bandwidth (so lost polls cannot be shrugged off)."""
        assert CHAOS_SETUP.theta > 1.0
        assert CHAOS_SETUP.updates_per_period > \
            CHAOS_SETUP.syncs_per_period
