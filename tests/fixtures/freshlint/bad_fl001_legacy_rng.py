"""Seeded FL001 violations: legacy global-state RNG usage."""

import numpy as np
from numpy.random import default_rng, rand


def sample_change_stream(n):
    np.random.seed(42)            # FL001: global seeding
    burst = np.random.rand(n)     # FL001: legacy draw
    jitter = rand(n)              # FL001: legacy draw via from-import
    rng = default_rng()           # FL001: unseeded generator
    return burst + jitter + rng.random(n)
