"""Tests for the CLI entry point."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_rejects_unknown_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure4"])

    def test_parses_flags(self):
        args = build_parser().parse_args(
            ["figure3", "--seed", "7", "--quick", "--plot"])
        assert args.command == "figure3"
        assert args.seed == 7
        assert args.quick
        assert args.plot

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "figure1", "figure2", "figure3",
                        "figure5", "figure6", "figure7", "figure8",
                        "figure9", "figure10", "figure11",
                        "imperfect-knowledge", "mirror-selection",
                        "policy-ablation", "bandwidth-sensitivity",
                        "dispersion-sensitivity", "scale-sensitivity",
                        "representative-ablation", "adaptive",
                        "baseline-comparison", "freshness-age",
                        "burstiness", "report",
                        "crawler-comparison"):
            args = parser.parse_args([command])
            assert args.command == command


class TestExecution:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "1.15" in output
        assert "1.67" in output

    def test_figure1_output(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "p=0.0333" in output

    def test_figure1_with_plot(self, capsys):
        assert main(["figure1", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "legend:" in output

    def test_figure10_output(self, capsys):
        assert main(["figure10"]) == 0
        output = capsys.readouterr().out
        assert "figure10a" in output
        assert "perceived freshness" in output

    def test_freshness_age_output(self, capsys):
        assert main(["freshness-age"]) == 0
        output = capsys.readouterr().out
        assert "perceived age" in output
        assert "inf" in output

    def test_adaptive_quick_output(self, capsys):
        assert main(["adaptive", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "adaptive manager" in output
        assert "oracle" in output

    def test_adapt_quick_output(self, capsys):
        assert main(["adapt", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "adaptive loop (fault-free)" in output
        assert "replanned" in output

    def test_adapt_all_fans_out_scenarios(self, capsys):
        from repro.faults.scenarios import CHAOS_SCENARIOS

        assert main(["adapt", "--quick", "--scenario", "all",
                     "--periods", "4"]) == 0
        output = capsys.readouterr().out
        assert "adaptive loop (fault-free)" in output
        for name in CHAOS_SCENARIOS:
            assert f"chaos scenario {name!r}" in output

    def test_adapt_parses_jobs_and_all(self):
        args = build_parser().parse_args(
            ["adapt", "--scenario", "all", "--jobs", "2"])
        assert args.scenario == "all"
        assert args.jobs == 2


class TestTelemetry:
    def test_telemetry_flag_parses_with_and_without_directory(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).telemetry is None
        assert parser.parse_args(["table1", "--telemetry"]).telemetry == "."
        args = parser.parse_args(["table1", "--telemetry", "out"])
        assert args.telemetry == "out"

    def test_obs_subcommand_parses(self):
        args = build_parser().parse_args(
            ["obs", "prom", "--tape", "t.jsonl"])
        assert args.command == "obs"
        assert args.action == "prom"
        assert args.tape == "t.jsonl"

    def test_telemetry_run_writes_tape_and_prom(self, capsys, tmp_path):
        assert main(["table1", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "telemetry summary" in output or "counters" in output
        tape = tmp_path / "telemetry.jsonl"
        prom = tmp_path / "telemetry.prom"
        assert tape.exists() and prom.exists()
        lines = [json.loads(line)
                 for line in tape.read_text().splitlines()]
        spans = [line for line in lines if line.get("kind") == "span"]
        assert any(line["path"].endswith("solver.solve_weighted")
                   for line in spans)
        assert "repro_solver_calls_total" in prom.read_text()

    def test_telemetry_sim_run_records_period_series(self, capsys,
                                                     tmp_path):
        assert main(["burstiness", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        lines = [json.loads(line) for line in
                 (tmp_path / "telemetry.jsonl").read_text().splitlines()]
        periods = [line for line in lines
                   if line.get("kind") == "sim.period"]
        assert periods
        assert all("budget_utilization" in line for line in periods)

    def test_obs_missing_tape_fails_cleanly(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["obs", "summary", "--tape", missing]) == 1
        captured = capsys.readouterr()
        assert "no tape at" in captured.err
        assert "--telemetry" in captured.err

    def test_obs_summary_round_trips_a_tape(self, capsys, tmp_path):
        assert main(["table1", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        tape = str(tmp_path / "telemetry.jsonl")
        assert main(["obs", "summary", "--tape", tape]) == 0
        summary = capsys.readouterr().out
        assert "solver.calls" in summary
        assert main(["obs", "prom", "--tape", tape]) == 0
        prom = capsys.readouterr().out
        assert prom == (tmp_path / "telemetry.prom").read_text()
