"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the common failure categories below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ConvergenceError",
    "ContractViolationError",
    "InfeasibleProblemError",
    "SimulationError",
    "ScheduleError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input (workload, profile, parameter) failed validation.

    Also a :class:`ValueError` so that code written against plain
    Python conventions keeps working.
    """


class ConvergenceError(ReproError, ArithmeticError):
    """A numerical routine failed to converge within its budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class InfeasibleProblemError(ReproError, ValueError):
    """The optimization problem has no feasible solution.

    Raised, for example, when the bandwidth budget is negative or when
    a sized problem is given non-positive object sizes.
    """


class ContractViolationError(ReproError, AssertionError):
    """A runtime contract (solver postcondition) failed.

    Raised only while contracts are enabled (``REPRO_CONTRACTS=1`` or
    :func:`repro.contracts.enable_contracts`).  Also an
    :class:`AssertionError`: a violation means library code broke its
    own invariant, not that the caller passed bad input.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class ScheduleError(ReproError, ValueError):
    """A synchronization schedule is malformed or cannot be built."""
