"""The one-command reproduction report, as a benchmark.

Running the benchmark harness leaves a current REPORT.md at the repo
root — the document a reviewer reads next to the paper — and asserts
that every section passes its claim checks.  A second bench drives
the exact solver across problem sizes with telemetry on and writes
``benchmarks/results/BENCH_solver.json``: the machine-readable record
(waterfill iterations, bracket expansions, wall time vs N) that CI
and regression tooling can diff without parsing prose.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.report import write_report
from repro.core.solver import solve_core_problem
from repro.obs import registry as obs
from repro.workloads.presets import ExperimentSetup, build_catalog

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

SOLVER_SIZES = (1_000, 10_000, 100_000)


def test_reproduction_report(benchmark):
    sections = benchmark.pedantic(
        lambda: write_report(REPO_ROOT / "REPORT.md", quick=True),
        rounds=1, iterations=1)
    failures = [section.title for section in sections
                if not section.passed]
    assert not failures, f"report sections failed: {failures}"
    assert (REPO_ROOT / "REPORT.md").exists()


def _solver_telemetry_row(n: int) -> dict:
    setup = ExperimentSetup(n_objects=n, updates_per_period=2.0 * n,
                            syncs_per_period=0.5 * n, theta=1.0,
                            update_std_dev=2.0)
    catalog = build_catalog(setup, seed=0)
    with obs.telemetry() as registry:
        start = time.perf_counter()
        solution = solve_core_problem(catalog, 0.5 * n)
        elapsed = time.perf_counter() - start
    count, total_s = registry.span_totals["solver.solve_weighted"]
    return {
        "n_elements": n,
        "wall_seconds": elapsed,
        "solver_span_seconds": total_s,
        "solver_calls": int(registry.counters["solver.calls"]),
        "waterfill_iterations":
            int(registry.counters["waterfill.iterations"]),
        "bracket_expansions":
            int(registry.counters.get("waterfill.bracket_expansions",
                                      0.0)),
        "multiplier": solution.multiplier,
        "kkt_residual": registry.gauges["solver.kkt_residual"],
    }


def test_solver_telemetry_bench(benchmark):
    """Solver scaling measured through the telemetry layer itself."""
    rows = benchmark.pedantic(
        lambda: [_solver_telemetry_row(n) for n in SOLVER_SIZES],
        rounds=1, iterations=1)
    for row in rows:
        assert row["solver_calls"] == 1
        assert row["waterfill_iterations"] > 0
        assert row["solver_span_seconds"] <= row["wall_seconds"]
    # Iteration counts are size-insensitive (bisection on μ): the
    # whole point of the structured solver's scalability story.
    iteration_spread = {row["waterfill_iterations"] for row in rows}
    assert max(iteration_spread) <= 4 * min(iteration_spread)
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"benchmark": "solver_telemetry", "rows": rows}
    (RESULTS_DIR / "BENCH_solver.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
