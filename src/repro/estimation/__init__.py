"""Change-rate estimation substrates (paper references [4], [6], [7]).

The scheduler assumes update frequencies are known; these modules
provide the machinery the paper cites for obtaining them — censored
Poisson estimation from poll histories, sampling-based change
detection, and TTL metadata conversion — plus the observer needed to
close the estimate-schedule loop in simulation.
"""

from repro.estimation.change_rate import (
    ChangeObserver,
    bias_reduced_rate_estimate,
    mle_rate_estimate,
    naive_rate_estimate,
)
from repro.estimation.sampling import SamplingRefreshPolicy, SamplingRoundResult
from repro.estimation.ttl import (
    expected_fresh_probability,
    rate_from_ttl,
    ttl_for_confidence,
)

__all__ = [
    "bias_reduced_rate_estimate",
    "ChangeObserver",
    "expected_fresh_probability",
    "mle_rate_estimate",
    "naive_rate_estimate",
    "rate_from_ttl",
    "SamplingRefreshPolicy",
    "SamplingRoundResult",
    "ttl_for_confidence",
]
