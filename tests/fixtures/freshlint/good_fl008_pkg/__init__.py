"""FL008-clean package: cycles broken by the approved idioms."""
