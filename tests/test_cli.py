"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_rejects_unknown_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure4"])

    def test_parses_flags(self):
        args = build_parser().parse_args(
            ["figure3", "--seed", "7", "--quick", "--plot"])
        assert args.command == "figure3"
        assert args.seed == 7
        assert args.quick
        assert args.plot

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "figure1", "figure2", "figure3",
                        "figure5", "figure6", "figure7", "figure8",
                        "figure9", "figure10", "figure11",
                        "imperfect-knowledge", "mirror-selection",
                        "policy-ablation", "bandwidth-sensitivity",
                        "dispersion-sensitivity", "scale-sensitivity",
                        "representative-ablation", "adaptive",
                        "baseline-comparison", "freshness-age",
                        "burstiness", "report",
                        "crawler-comparison"):
            args = parser.parse_args([command])
            assert args.command == command


class TestExecution:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "1.15" in output
        assert "1.67" in output

    def test_figure1_output(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "p=0.0333" in output

    def test_figure1_with_plot(self, capsys):
        assert main(["figure1", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "legend:" in output

    def test_figure10_output(self, capsys):
        assert main(["figure10"]) == 0
        output = capsys.readouterr().out
        assert "figure10a" in output
        assert "perceived freshness" in output

    def test_freshness_age_output(self, capsys):
        assert main(["freshness-age"]) == 0
        output = capsys.readouterr().out
        assert "perceived age" in output
        assert "inf" in output

    def test_adaptive_quick_output(self, capsys):
        assert main(["adaptive", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "adaptive manager" in output
        assert "oracle" in output
