"""Tests for repro.core.nlp_solver — the generic-NLP (IMSL) path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nlp_solver import (
    solve_core_problem_nlp,
    solve_weighted_problem_nlp,
)
from repro.core.solver import solve_core_problem
from repro.errors import InfeasibleProblemError, ValidationError
from repro.workloads.presets import TOY_BANDWIDTH, toy_example_catalog

from tests.conftest import random_catalog


class TestNlpAgreement:
    """The NLP path must independently reproduce the exact solver."""

    @pytest.mark.parametrize("profile", ["P1", "P2", "P3"])
    def test_matches_exact_on_toy_example(self, profile):
        catalog = toy_example_catalog(profile)
        exact = solve_core_problem(catalog, TOY_BANDWIDTH)
        nlp = solve_core_problem_nlp(catalog, TOY_BANDWIDTH)
        assert nlp.objective == pytest.approx(exact.objective, abs=1e-6)
        assert np.allclose(nlp.frequencies, exact.frequencies, atol=1e-3)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_exact_on_random_catalogs(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 25)
        exact = solve_core_problem(catalog, 12.0)
        nlp = solve_core_problem_nlp(catalog, 12.0)
        assert nlp.objective == pytest.approx(exact.objective, abs=1e-6)

    def test_matches_exact_with_sizes(self):
        rng = np.random.default_rng(9)
        catalog = random_catalog(rng, 15, sized=True)
        exact = solve_core_problem(catalog, 8.0)
        nlp = solve_core_problem_nlp(catalog, 8.0)
        assert nlp.objective == pytest.approx(exact.objective, abs=1e-6)


class TestNlpContract:
    def test_solution_feasible(self, small_catalog):
        solution = solve_core_problem_nlp(small_catalog, 3.0)
        assert (solution.frequencies >= 0.0).all()
        assert solution.bandwidth == pytest.approx(3.0, rel=1e-6)

    def test_rejects_nonpositive_bandwidth(self, small_catalog):
        with pytest.raises(InfeasibleProblemError):
            solve_core_problem_nlp(small_catalog, 0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            solve_weighted_problem_nlp(np.array([1.0]),
                                       np.array([1.0, 2.0]),
                                       np.ones(2), 1.0)

    def test_iteration_budget_respected(self, small_catalog):
        solution = solve_core_problem_nlp(small_catalog, 3.0,
                                          max_iterations=3)
        assert solution.iterations <= 3
