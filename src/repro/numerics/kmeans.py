"""Seeded Lloyd's-algorithm k-means.

The cluster-refinement heuristic (paper §4.1.3) starts from the
contiguous sort-based partitions and runs a handful of k-means
iterations in the ``(p, λ̂)`` feature plane.  The paper's experiments
sweep the *number of iterations* explicitly (Figures 8 and 9), so this
implementation exposes a per-iteration generator in addition to the
usual run-to-budget entry point.

Everything is deterministic: initialization comes from the caller
(either labels or centroids), never from internal randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.contracts import check_partition_labels, postcondition
from repro.errors import ContractViolationError, ValidationError
from repro.obs import registry as obs

__all__ = ["KMeansResult", "kmeans", "kmeans_iterate"]


@dataclass(frozen=True)
class KMeansResult:
    """State of a k-means clustering after some number of iterations.

    Attributes:
        labels: Cluster index per point, shape ``(n,)``.
        centroids: Cluster centers, shape ``(k, d)``.  Empty clusters
            keep their previous centroid.
        inertia: Sum of squared distances of points to their assigned
            centroid.
        iterations: Number of completed Lloyd iterations.
        converged: True if the last iteration moved no point.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def _validate(points: np.ndarray, labels: np.ndarray, k: int) -> None:
    if points.ndim != 2:
        raise ValidationError(f"points must be 2-D, got shape {points.shape}")
    if labels.shape != (points.shape[0],):
        raise ValidationError(
            f"labels shape {labels.shape} does not match {points.shape[0]} points"
        )
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ValidationError(
            f"labels must lie in [0, {k}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )


def _centroids_from_labels(points: np.ndarray, labels: np.ndarray, k: int,
                           previous: np.ndarray | None) -> np.ndarray:
    """Mean of each cluster; empty clusters inherit their old centroid."""
    d = points.shape[1]
    sums = np.zeros((k, d))
    np.add.at(sums, labels, points)
    counts = np.bincount(labels, minlength=k).astype(float)
    occupied = counts > 0
    centroids = np.empty((k, d))
    centroids[occupied] = sums[occupied] / counts[occupied, None]
    if previous is None:
        # Park empty clusters far away so nothing is assigned to them.
        centroids[~occupied] = np.inf
    else:
        centroids[~occupied] = previous[~occupied]
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, float]:
    """Nearest-centroid labels and the resulting inertia.

    Uses the ``‖x‖² − 2x·c + ‖c‖²`` expansion so the (n, k) distance
    matrix is one GEMM — the difference between seconds and minutes at
    catalog scale (n = 500 000).  Centroids parked at infinity (empty
    clusters with no history) are masked out.
    """
    finite = np.isfinite(centroids).all(axis=1)
    safe = np.where(finite[:, None], centroids, 0.0)
    point_norms = np.einsum("nd,nd->n", points, points)
    centroid_norms = np.einsum("kd,kd->k", safe, safe)
    sq_dists = (point_norms[:, None] - 2.0 * (points @ safe.T)
                + centroid_norms[None, :])
    sq_dists[:, ~finite] = np.inf
    labels = np.argmin(sq_dists, axis=1)
    chosen = sq_dists[np.arange(points.shape[0]), labels]
    # The expansion can go epsilon-negative; clamp before summing.
    inertia = float(np.maximum(chosen, 0.0).sum())
    return labels, inertia


def kmeans_iterate(points: np.ndarray, initial_labels: np.ndarray,
                   k: int) -> Iterator[KMeansResult]:
    """Yield the clustering state after each Lloyd iteration.

    Iteration ``t`` recomputes centroids from the iteration ``t−1``
    labels and reassigns every point to its nearest centroid.  The
    generator yields forever (callers bound it); once converged, the
    yielded states repeat with ``converged=True``.

    Args:
        points: Feature matrix, shape ``(n, d)``.
        initial_labels: Starting assignment, e.g. the contiguous
            sort-based partitions.
        k: Number of clusters.

    Yields:
        A :class:`KMeansResult` per completed iteration.
    """
    points = np.asarray(points, dtype=float)
    initial_labels = np.asarray(initial_labels, dtype=int)
    _validate(points, initial_labels, k)

    labels = initial_labels.copy()
    centroids: np.ndarray | None = None
    iteration = 0
    while True:
        iteration += 1
        centroids = _centroids_from_labels(points, labels, k, centroids)
        new_labels, inertia = _assign(points, centroids)
        converged = bool(np.array_equal(new_labels, labels))
        if obs.telemetry_enabled():
            obs.counter_add("kmeans.iterations")
            obs.counter_add("kmeans.reassignments",
                            int((new_labels != labels).sum()))
            obs.gauge_set("kmeans.inertia", inertia)
        labels = new_labels
        yield KMeansResult(labels=labels.copy(), centroids=centroids.copy(),
                           inertia=inertia, iterations=iteration,
                           converged=converged)


def _check_kmeans_result(result: "KMeansResult",
                         arguments: Mapping[str, object]) -> None:
    """Postcondition: a valid clustering state.

    Labels stay in ``[0, k)`` for every point, and the inertia — a
    sum of squared distances — is finite and nonnegative (a NaN here
    means a centroid escaped to infinity while still owning points).
    """
    where = "kmeans"
    k = int(arguments["k"])  # type: ignore[arg-type]
    points = np.asarray(arguments["points"])
    check_partition_labels(result.labels, k, where=where)
    if result.labels.shape[0] != points.shape[0]:
        raise ContractViolationError(
            f"contract violated in {where}: complete labeling - "
            f"{result.labels.shape[0]} labels for {points.shape[0]} "
            "points")
    if not np.isfinite(result.inertia) or result.inertia < 0.0:
        raise ContractViolationError(
            f"contract violated in {where}: inertia finite and >= 0 - "
            f"got {result.inertia!r}")


@postcondition(_check_kmeans_result)
def kmeans(points: np.ndarray, initial_labels: np.ndarray, k: int, *,
           iterations: int) -> KMeansResult:
    """Run exactly ``iterations`` Lloyd iterations (or stop at convergence).

    Args:
        points: Feature matrix, shape ``(n, d)``.
        initial_labels: Starting assignment.
        k: Number of clusters.
        iterations: Iteration budget.  ``0`` returns the initial
            assignment unchanged (with centroids computed from it).

    Returns:
        The final :class:`KMeansResult`.
    """
    points = np.asarray(points, dtype=float)
    initial_labels = np.asarray(initial_labels, dtype=int)
    _validate(points, initial_labels, k)
    if iterations < 0:
        raise ValidationError(f"iterations must be >= 0, got {iterations}")

    if iterations == 0:
        centroids = _centroids_from_labels(points, initial_labels, k, None)
        finite = np.isfinite(centroids).all(axis=1)
        safe = np.where(finite[:, None], centroids,
                        points.mean(axis=0, keepdims=True))
        assigned = safe[initial_labels]
        inertia = float(((points - assigned) ** 2).sum())
        return KMeansResult(labels=initial_labels.copy(), centroids=safe,
                            inertia=inertia, iterations=0, converged=False)

    result: KMeansResult | None = None
    with obs.span("kmeans.run"):
        for result in kmeans_iterate(points, initial_labels, k):
            if result.iterations >= iterations or result.converged:
                break
    assert result is not None
    obs.counter_add("kmeans.runs")
    return result
