"""Estimating element change rates from poll observations (ref [4]).

The scheduler needs each element's Poisson change rate λ, but a
polling mirror only observes a *censored* signal: at each poll it
learns whether the element changed at all since the previous poll —
not how many times.  Cho & Garcia-Molina ("Estimating frequency of
change") analyze exactly this setting; this module implements their
estimators:

* :func:`naive_rate_estimate` — changes seen / time observed.  Biased
  low: multiple changes between polls are counted once.
* :func:`mle_rate_estimate` — inverts the detection probability
  ``P(change observed) = 1 − e^(−λI)`` for polls at interval I:
  ``λ̂ = −ln(1 − k/n)/I``.  Consistent, but undefined when every poll
  saw a change.
* :func:`bias_reduced_rate_estimate` — Cho & Garcia-Molina's
  bias-reduced variant ``λ̂ = −ln((n − k + 0.5)/(n + 0.5))/I``, which
  stays finite at k = n and has lower small-sample bias.

:class:`ChangeObserver` accumulates the (n, k) statistics per element
during simulation so a scheduler can be driven by *estimated* rates —
the paper's §6 argues PF is robust to such imperfect knowledge, and
the benchmark suite includes an experiment confirming it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "naive_rate_estimate",
    "mle_rate_estimate",
    "bias_reduced_rate_estimate",
    "ChangeObserver",
]


def _validate_counts(polls: np.ndarray, changes: np.ndarray,
                     interval: float) -> tuple[np.ndarray, np.ndarray]:
    polls = np.asarray(polls, dtype=float)
    changes = np.asarray(changes, dtype=float)
    if polls.shape != changes.shape:
        raise ValidationError(
            f"polls {polls.shape} and changes {changes.shape} must match")
    if (polls < 0).any() or (changes < 0).any():
        raise ValidationError("poll and change counts must be nonnegative")
    if (changes > polls).any():
        raise ValidationError("cannot observe more changes than polls")
    if interval <= 0.0:
        raise ValidationError(f"interval must be > 0, got {interval}")
    return polls, changes


def naive_rate_estimate(polls: np.ndarray, changes: np.ndarray,
                        interval: float) -> np.ndarray:
    """Changes observed per unit time (biased low).

    Args:
        polls: Polls performed per element, n.
        changes: Polls that detected a change, k.
        interval: Time between consecutive polls, I.

    Returns:
        ``k/(n·I)`` per element (0 where nothing was polled).
    """
    polls, changes = _validate_counts(polls, changes, interval)
    with np.errstate(invalid="ignore"):
        estimate = np.where(polls > 0, changes / np.maximum(polls, 1.0), 0.0)
    return estimate / interval


def mle_rate_estimate(polls: np.ndarray, changes: np.ndarray,
                      interval: float) -> np.ndarray:
    """Maximum-likelihood estimate ``−ln(1 − k/n)/I``.

    Args:
        polls: Polls performed per element, n (> 0 where estimated).
        changes: Polls that detected a change, k.
        interval: Time between consecutive polls, I.

    Returns:
        Per-element rate estimates; ``inf`` where every poll saw a
        change (the MLE diverges there — use the bias-reduced
        estimator instead) and 0 where nothing was polled.
    """
    polls, changes = _validate_counts(polls, changes, interval)
    ratio = np.where(polls > 0, changes / np.maximum(polls, 1.0), 0.0)
    with np.errstate(divide="ignore"):
        estimate = -np.log1p(-ratio) / interval
    return np.where(polls > 0, estimate, 0.0)


def bias_reduced_rate_estimate(polls: np.ndarray, changes: np.ndarray,
                               interval: float) -> np.ndarray:
    """Cho/Garcia-Molina bias-reduced estimator.

    ``λ̂ = −ln((n − k + 0.5)/(n + 0.5)) / I`` — finite for all
    observable (n, k) and markedly less biased for small n.

    Args:
        polls: Polls performed per element, n.
        changes: Polls that detected a change, k.
        interval: Time between consecutive polls, I.

    Returns:
        Per-element rate estimates (0 where nothing was polled).
    """
    polls, changes = _validate_counts(polls, changes, interval)
    numerator = polls - changes + 0.5
    denominator = polls + 0.5
    estimate = -np.log(numerator / denominator) / interval
    return np.where(polls > 0, estimate, 0.0)


class ChangeObserver:
    """Accumulates per-element (polls, changes-detected) statistics.

    Args:
        n_elements: Number of tracked elements.
    """

    def __init__(self, n_elements: int) -> None:
        if n_elements < 1:
            raise ValidationError(
                f"n_elements must be >= 1, got {n_elements}")
        self._polls = np.zeros(n_elements, dtype=np.int64)
        self._changes = np.zeros(n_elements, dtype=np.int64)

    @property
    def n_elements(self) -> int:
        """Number of tracked elements."""
        return int(self._polls.shape[0])

    def record_poll(self, element: int, changed: bool) -> None:
        """Record one poll and whether it detected a change.

        Args:
            element: Element index.
            changed: True if the poll found a new version (the return
                value of :meth:`repro.sim.mirror.Mirror.sync`).
        """
        if not 0 <= element < self.n_elements:
            raise ValidationError(
                f"element {element} outside [0, {self.n_elements})")
        self._polls[element] += 1
        if changed:
            self._changes[element] += 1

    def estimate_rates(self, interval: float, *,
                       method: str = "bias-reduced",
                       default_rate: float = 0.0) -> np.ndarray:
        """Estimate every element's change rate.

        Args:
            interval: Poll interval used during observation, in
                periods.
            method: ``"naive"``, ``"mle"`` or ``"bias-reduced"``.
            default_rate: Rate assigned to never-polled elements, in
                changes per period.

        Returns:
            Per-element rate estimates, in changes per period.
        """
        estimators = {
            "naive": naive_rate_estimate,
            "mle": mle_rate_estimate,
            "bias-reduced": bias_reduced_rate_estimate,
        }
        if method not in estimators:
            raise ValidationError(
                f"unknown method {method!r}; expected one of "
                f"{sorted(estimators)}")
        estimates = estimators[method](self._polls, self._changes, interval)
        return np.where(self._polls > 0, estimates, default_rate)
