"""Discrete-event simulator reproducing the paper's Figure 4 model.

Components: an :class:`Update Generator <repro.sim.generators.
UpdateGenerator>` drives the :class:`~repro.sim.source.Source`; the
:class:`Synchronization Scheduler <repro.core.scheduler.SyncSchedule>`
and :class:`Request Generator <repro.sim.generators.RequestGenerator>`
drive the :class:`~repro.sim.mirror.Mirror`; the :class:`Freshness
Evaluator <repro.sim.evaluator.FreshnessMonitor>` observes everything.
:class:`~repro.sim.simulation.Simulation` wires them together.
"""

from repro.sim.bursty import BurstyUpdateGenerator
from repro.sim.events import EventKind, EventStream, merge_streams
from repro.sim.evaluator import FreshnessMonitor, SimulationResult
from repro.sim.generators import RequestGenerator, UpdateGenerator
from repro.sim.mirror import Mirror
from repro.sim.queueing import LinkReplayResult, SyncLink
from repro.sim.rounds import (
    RandomPollPolicy,
    RoundPolicy,
    RoundSimulationResult,
    SamplingCrawlerPolicy,
    SchedulePolicy,
    simulate_rounds,
)
from repro.sim.simulation import Simulation
from repro.sim.source import Source

__all__ = [
    "BurstyUpdateGenerator",
    "EventKind",
    "EventStream",
    "FreshnessMonitor",
    "merge_streams",
    "LinkReplayResult",
    "Mirror",
    "SyncLink",
    "RandomPollPolicy",
    "RequestGenerator",
    "RoundPolicy",
    "RoundSimulationResult",
    "SamplingCrawlerPolicy",
    "SchedulePolicy",
    "simulate_rounds",
    "Simulation",
    "SimulationResult",
    "Source",
    "UpdateGenerator",
]
