"""FL009 fixture: wall-clock reads in clock-disciplined code."""

import time
from datetime import date, datetime
from time import time as wall_clock

__all__ = ["stamp_events"]


def stamp_events() -> list[float]:
    """Wall-clock timestamps, four different spellings (seconds)."""
    stamps = [time.time(), wall_clock()]
    stamps.append(datetime.now().timestamp())
    stamps.append(float(date.today().toordinal()))
    return stamps
