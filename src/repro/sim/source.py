"""The master data source (left half of the paper's Figure 4).

The source holds the authoritative value of every element, modeled as
a monotonically increasing version counter: each update event bumps
the element's version.  A mirror copy is fresh exactly when its
stored version equals the source's current version.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["Source"]


class Source:
    """Authoritative versioned store for N elements.

    Args:
        n_elements: Number of elements at the source.
    """

    def __init__(self, n_elements: int) -> None:
        if n_elements < 1:
            raise SimulationError(
                f"n_elements must be >= 1, got {n_elements}")
        self._versions = np.zeros(n_elements, dtype=np.int64)
        self._update_count = 0

    @property
    def n_elements(self) -> int:
        """Number of elements at the source."""
        return int(self._versions.shape[0])

    @property
    def total_updates(self) -> int:
        """Total update events applied so far."""
        return self._update_count

    def apply_update(self, element: int) -> int:
        """Apply one update to an element.

        Args:
            element: Element index in ``[0, N)``.

        Returns:
            The element's new version number.
        """
        self._check(element)
        self._versions[element] += 1
        self._update_count += 1
        return int(self._versions[element])

    def version_of(self, element: int) -> int:
        """Current version of an element."""
        self._check(element)
        return int(self._versions[element])

    def versions(self) -> np.ndarray:
        """A read-only snapshot of all current versions."""
        snapshot = self._versions.copy()
        snapshot.flags.writeable = False
        return snapshot

    def _check(self, element: int) -> None:
        if not 0 <= element < self.n_elements:
            raise SimulationError(
                f"element {element} outside [0, {self.n_elements})")
