"""Tests for repro.sim.queueing — the physical link model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.freshener import PerceivedFreshener
from repro.errors import SimulationError
from repro.sim.queueing import SyncLink
from repro.workloads.presets import ExperimentSetup, build_catalog


class TestSyncLinkBasics:
    def test_idle_link_transfers_on_time(self):
        link = SyncLink(capacity=2.0)
        result = link.replay(np.array([0.0, 10.0]), np.array([0, 1]),
                             np.array([1.0, 4.0]), horizon=20.0)
        assert np.allclose(result.start_times, [0.0, 10.0])
        assert np.allclose(result.completion_times, [0.5, 12.0])
        assert result.max_lateness == pytest.approx(2.0)

    def test_fifo_queueing(self):
        link = SyncLink(capacity=1.0)
        # Two unit transfers requested simultaneously: the second
        # waits for the first.
        result = link.replay(np.array([0.0, 0.0]), np.array([0, 1]),
                             np.ones(2), horizon=5.0)
        assert np.allclose(result.completion_times, [1.0, 2.0])
        assert result.mean_lateness == pytest.approx(1.5)

    def test_utilization(self):
        link = SyncLink(capacity=1.0)
        result = link.replay(np.array([0.0, 5.0]), np.array([0, 0]),
                             np.array([2.0]), horizon=10.0)
        assert result.utilization == pytest.approx(0.4)

    def test_backlog_counted(self):
        link = SyncLink(capacity=0.1)
        result = link.replay(np.array([0.0, 0.1, 0.2]),
                             np.zeros(3, dtype=int),
                             np.array([5.0]), horizon=1.0)
        assert result.backlog_at_end == 3

    def test_empty_replay(self):
        link = SyncLink(capacity=1.0)
        result = link.replay(np.empty(0), np.empty(0, dtype=int),
                             np.ones(1), horizon=1.0)
        assert result.utilization == 0.0
        assert result.mean_lateness == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            SyncLink(capacity=0.0)
        link = SyncLink(capacity=1.0)
        with pytest.raises(SimulationError):
            link.replay(np.array([1.0, 0.0]), np.array([0, 0]),
                        np.ones(1), horizon=1.0)
        with pytest.raises(SimulationError):
            link.replay(np.array([0.0]), np.array([2]), np.ones(1),
                        horizon=1.0)
        with pytest.raises(SimulationError):
            link.replay(np.array([0.0]), np.array([0]), np.zeros(1),
                        horizon=1.0)
        with pytest.raises(SimulationError):
            link.replay(np.array([0.0]), np.array([0]), np.ones(1),
                        horizon=0.0)


class TestRequiredCapacity:
    def test_matches_offered_load(self):
        link = SyncLink(capacity=1.0)
        load = link.required_capacity(np.array([2.0, 1.0]),
                                      np.array([1.0, 3.0]))
        assert load == pytest.approx(5.0)

    def test_period_length_scales(self):
        link = SyncLink(capacity=1.0)
        load = link.required_capacity(np.array([2.0]), np.array([1.0]),
                                      period_length=4.0)
        assert load == pytest.approx(0.5)


class TestScheduleStability:
    """The paper's rate-cap abstraction is valid because planned
    schedules keep the physical link stable."""

    @pytest.fixture(scope="class")
    def workload(self):
        setup = ExperimentSetup(n_objects=100, updates_per_period=200.0,
                                syncs_per_period=50.0, theta=1.0,
                                update_std_dev=1.0)
        catalog = build_catalog(setup, seed=3, size_shape=2.0)
        plan = PerceivedFreshener().plan(catalog, 50.0)
        schedule = plan.schedule(period_length=1.0)
        times, elements = schedule.events_until(20.0)
        return catalog, plan, times, elements

    def test_planned_schedule_is_stable_with_headroom(self, workload):
        catalog, plan, times, elements = workload
        load = SyncLink(capacity=1.0).required_capacity(
            plan.frequencies, catalog.sizes)
        link = SyncLink(capacity=1.3 * load)
        result = link.replay(times, elements, catalog.sizes,
                             horizon=20.0)
        assert result.utilization < 1.0
        # Lateness is bounded by a few transfer times, not growing.
        assert result.max_lateness < 2.0
        assert result.backlog_at_end <= 2

    def test_underprovisioned_link_diverges(self, workload):
        catalog, plan, times, elements = workload
        load = SyncLink(capacity=1.0).required_capacity(
            plan.frequencies, catalog.sizes)
        link = SyncLink(capacity=0.5 * load)
        result = link.replay(times, elements, catalog.sizes,
                             horizon=20.0)
        # Offered load 2x capacity: the queue grows without bound.
        assert result.utilization == pytest.approx(1.0, abs=0.05)
        assert result.max_lateness > 5.0
        assert result.backlog_at_end > 10
