"""Fluent workload construction.

:class:`WorkloadBuilder` composes the generators in
:mod:`repro.workloads.distributions` into a readable pipeline::

    catalog = (WorkloadBuilder(10_000, seed=7)
               .zipf_profile(theta=1.2)
               .gamma_rates(mean=2.0, std_dev=1.0)
               .pareto_sizes(shape=1.1)
               .align_rates("shuffled")
               .align_sizes("reverse")
               .build())

Every stage is optional: omitted profiles default to uniform, omitted
rates to a unit-rate Poisson per element, omitted sizes to 1.0.  The
builder is immutable-by-convention — each call returns ``self`` for
chaining but the terminal :meth:`build` validates everything through
the normal :class:`~repro.workloads.catalog.Catalog` constructor.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.parallel import seed_rng
from repro.workloads.alignment import Alignment, align_values
from repro.workloads.catalog import Catalog
from repro.workloads.distributions import (
    gamma_change_rates,
    pareto_sizes,
    zipf_probabilities,
)

__all__ = ["WorkloadBuilder"]


class WorkloadBuilder:
    """Compose a catalog from named distribution stages.

    Args:
        n_elements: Catalog size, >= 1.
        seed: Seed or generator for all sampling stages.
    """

    def __init__(self, n_elements: int, *,
                 seed: int | np.random.Generator = 0) -> None:
        if n_elements < 1:
            raise ValidationError(
                f"n_elements must be >= 1, got {n_elements}")
        self._n = n_elements
        self._rng = (seed if isinstance(seed, np.random.Generator)
                     else seed_rng(seed))
        self._profile: np.ndarray | None = None
        self._rates: np.ndarray | None = None
        self._sizes: np.ndarray | None = None
        self._rate_alignment: Alignment | None = None
        self._size_alignment: Alignment | None = None

    def zipf_profile(self, theta: float) -> "WorkloadBuilder":
        """Zipf access probabilities with skew ``theta`` (hot first)."""
        self._profile = zipf_probabilities(self._n, theta)
        return self

    def custom_profile(self,
                       probabilities: np.ndarray) -> "WorkloadBuilder":
        """An explicit access-probability vector."""
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (self._n,):
            raise ValidationError(
                f"profile shape {probabilities.shape} does not match "
                f"n_elements={self._n}")
        self._profile = probabilities
        return self

    def gamma_rates(self, *, mean: float,
                    std_dev: float) -> "WorkloadBuilder":
        """Gamma-distributed change rates (the paper's update model)."""
        self._rates = gamma_change_rates(self._n, mean=mean,
                                         std_dev=std_dev,
                                         rng=self._rng)
        return self

    def custom_rates(self, rates: np.ndarray) -> "WorkloadBuilder":
        """Explicit per-element change rates, in changes per period."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self._n,):
            raise ValidationError(
                f"rates shape {rates.shape} does not match "
                f"n_elements={self._n}")
        self._rates = rates
        return self

    def pareto_sizes(self, *, shape: float,
                     mean: float = 1.0) -> "WorkloadBuilder":
        """Heavy-tailed object sizes (the paper's web-size model)."""
        self._sizes = pareto_sizes(self._n, shape=shape, mean=mean,
                                   rng=self._rng)
        return self

    def custom_sizes(self, sizes: np.ndarray) -> "WorkloadBuilder":
        """Explicit per-element sizes."""
        sizes = np.asarray(sizes, dtype=float)
        if sizes.shape != (self._n,):
            raise ValidationError(
                f"sizes shape {sizes.shape} does not match "
                f"n_elements={self._n}")
        self._sizes = sizes
        return self

    def align_rates(self,
                    alignment: Alignment | str) -> "WorkloadBuilder":
        """Relate change rates to popularity (aligned/reverse/shuffled)."""
        self._rate_alignment = Alignment.coerce(alignment)
        return self

    def align_sizes(self,
                    alignment: Alignment | str) -> "WorkloadBuilder":
        """Relate sizes to popularity (aligned/reverse/shuffled)."""
        self._size_alignment = Alignment.coerce(alignment)
        return self

    def build(self) -> Catalog:
        """Materialize and validate the catalog.

        Returns:
            The composed :class:`Catalog`.  Defaults: uniform profile,
            unit change rates, unit sizes; alignments are applied only
            to sampled (or explicitly supplied) attributes.
        """
        profile = (self._profile if self._profile is not None
                   else np.full(self._n, 1.0 / self._n))
        rates = (self._rates if self._rates is not None
                 else np.ones(self._n))
        if self._rate_alignment is not None:
            rates = align_values(rates, self._rate_alignment,
                                 rng=self._rng)
        sizes = self._sizes
        if sizes is not None and self._size_alignment is not None:
            sizes = align_values(sizes, self._size_alignment,
                                 rng=self._rng)
        return Catalog(access_probabilities=profile,
                       change_rates=rates, sizes=sizes)
