"""Time-averaged freshness models for synchronization policies.

An element is updated at the source by a Poisson process with change
rate ``λ`` and is synchronized (polled and refreshed) by the mirror at
frequency ``f``.  A *freshness model* gives the long-run fraction of
time the local copy is up to date, ``F̄(λ, f)``, together with its
partial derivative in ``f`` — the marginal freshness per unit of sync
frequency, which drives the KKT water-filling solver.

Two policies are provided:

* :class:`FixedOrderPolicy` — syncs happen at evenly spaced instants
  (the paper's Fixed-Order policy, shown best in Cho & Garcia-Molina):

      F̄(λ, f) = (f/λ)·(1 − e^(−λ/f))

* :class:`PoissonSyncPolicy` — syncs happen at exponentially
  distributed intervals (memoryless polling), an ablation baseline:

      F̄(λ, f) = f / (f + λ)

Both are strictly concave and increasing in ``f``, so the Core Problem
is a convex program for either.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "FreshnessModel",
    "FixedOrderPolicy",
    "PoissonSyncPolicy",
    "fixed_order_freshness",
    "marginal_gain",
    "invert_marginal_gain",
]

#: Below this staleness ratio ``r = λ/f`` the closed forms are replaced
#: by series expansions to avoid catastrophic cancellation.
_SERIES_CUTOFF = 1e-4


def fixed_order_freshness(change_rates: np.ndarray,
                          frequencies: np.ndarray) -> np.ndarray:
    """Fixed-Order time-averaged freshness ``F̄(λ, f)``, vectorized.

    Conventions at the boundary: ``f = 0`` gives freshness 0 for any
    ``λ > 0`` (never refreshed, eventually always stale) and ``λ = 0``
    gives freshness 1 (never changes, always fresh).

    Args:
        change_rates: Poisson change rates ``λ ≥ 0``, in changes per
            period.
        frequencies: Sync frequencies ``f ≥ 0``, in syncs per period
            (same broadcastable shape).

    Returns:
        Element-wise freshness in ``[0, 1]``.
    """
    lam = np.asarray(change_rates, dtype=float)
    f = np.asarray(frequencies, dtype=float)
    lam, f = np.broadcast_arrays(lam, f)
    out = np.empty(lam.shape, dtype=float)

    never_changes = lam == 0.0
    never_synced = (f == 0.0) & ~never_changes
    regular = ~never_changes & ~never_synced
    out[never_changes] = 1.0
    out[never_synced] = 0.0
    if regular.any():
        r = lam[regular] / f[regular]
        # (1 − e^(−r))/r via expm1 for accuracy at small r.
        out[regular] = -np.expm1(-r) / r
    return out if out.ndim else float(out)


def marginal_gain(staleness_ratio: np.ndarray) -> np.ndarray:
    """The Fixed-Order marginal kernel ``g(r) = 1 − (1 + r)·e^(−r)``.

    ``∂F̄/∂f = g(λ/f)/λ``; ``g`` maps ``(0, ∞)`` onto ``(0, 1)`` and is
    strictly increasing, which is what makes the KKT inversion a
    one-dimensional monotone root-find.

    Args:
        staleness_ratio: ``r = λ/f ≥ 0``.

    Returns:
        ``g(r)`` element-wise, computed with a series at small ``r``.
    """
    r = np.asarray(staleness_ratio, dtype=float)
    out = np.empty(r.shape, dtype=float)
    small = r < _SERIES_CUTOFF
    if small.any():
        rs = r[small]
        # g(r) = r²/2 − r³/3 + r⁴/8 − … ; three terms suffice below
        # the cutoff.
        out[small] = rs * rs * (0.5 - rs / 3.0 + rs * rs / 8.0)
    big = ~small
    if big.any():
        rb = r[big]
        out[big] = 1.0 - (1.0 + rb) * np.exp(-rb)
    return out if out.ndim else float(out)


def invert_marginal_gain(targets: np.ndarray, *, tol: float = 1e-13,
                         max_newton: int = 60) -> np.ndarray:
    """Solve ``g(r) = t`` for ``r``, vectorized.

    Uses safeguarded Newton iterations (``g'(r) = r·e^(−r)``) with a
    maintained bisection bracket, so convergence is guaranteed for any
    ``t ∈ (0, 1)``.

    Args:
        targets: Values ``t`` with ``0 < t < 1`` element-wise.
        tol: Absolute tolerance on ``g(r) − t``.
        max_newton: Iteration cap (bisection progress makes the method
            converge long before a sane cap).

    Returns:
        The staleness ratios ``r`` with ``g(r) = t``.

    Raises:
        ValidationError: If any target lies outside ``(0, 1)``.
    """
    t = np.asarray(targets, dtype=float)
    scalar = t.ndim == 0
    t = np.atleast_1d(t).copy()
    if ((t <= 0.0) | (t >= 1.0)).any():
        raise ValidationError("marginal targets must lie strictly in (0, 1)")

    # Initial guess: small-t series g ≈ r²/2 ⇒ r ≈ √(2t); large-t
    # asymptotic (1+r)e^(−r) = 1−t ⇒ r ≈ −ln(1−t) + ln(1+r), iterated
    # once from r₀ = −ln(1−t).
    guess_small = np.sqrt(2.0 * t)
    with np.errstate(divide="ignore"):
        base = -np.log1p(-t)
    guess_large = base + np.log1p(np.maximum(base, 0.0))
    r = np.where(t < 0.5, guess_small, np.maximum(guess_large, guess_small))

    # Bracket: g is increasing; expand hi until g(hi) >= t everywhere.
    lo = np.zeros_like(t)
    hi = np.maximum(2.0 * r, 1.0)
    for _ in range(200):
        too_low = marginal_gain(hi) < t
        if not too_low.any():
            break
        hi[too_low] *= 2.0

    r = np.clip(r, lo + 1e-300, hi)
    for _ in range(max_newton):
        g_r = marginal_gain(r)
        residual = g_r - t
        if (np.abs(residual) <= tol).all():
            break
        above = residual > 0.0
        hi = np.where(above, r, hi)
        lo = np.where(above, lo, r)
        slope = r * np.exp(-r)
        with np.errstate(divide="ignore", invalid="ignore"):
            step = residual / slope
        newton = r - step
        inside = np.isfinite(newton) & (newton > lo) & (newton < hi)
        r = np.where(inside, newton, 0.5 * (lo + hi))
    return float(r[0]) if scalar else r


class FreshnessModel(ABC):
    """Interface of a synchronization-policy freshness model."""

    @abstractmethod
    def freshness(self, change_rates: np.ndarray,
                  frequencies: np.ndarray) -> np.ndarray:
        """Time-averaged freshness ``F̄(λ, f)``, element-wise.

        ``change_rates`` are in changes per period, ``frequencies``
        in syncs per period; the result is dimensionless in [0, 1].
        """

    @abstractmethod
    def derivative(self, change_rates: np.ndarray,
                   frequencies: np.ndarray) -> np.ndarray:
        """Marginal freshness ``∂F̄/∂f``, element-wise.

        ``change_rates`` are in changes per period, ``frequencies``
        in syncs per period; the marginal is in periods per sync.
        """

    @abstractmethod
    def frequency_for_marginal(self, change_rates: np.ndarray,
                               marginals: np.ndarray) -> np.ndarray:
        """Invert the marginal: the ``f`` with ``∂F̄/∂f = m``.

        ``change_rates`` are in changes per period and the returned
        frequencies in syncs per period.  Only defined for ``0 < m <
        ∂F̄/∂f|_{f→0⁺}``; the water-filling solver guarantees this
        precondition.
        """


class FixedOrderPolicy(FreshnessModel):
    """Evenly spaced synchronization instants (the paper's policy)."""

    name = "fixed-order"

    def freshness(self, change_rates: np.ndarray,
                  frequencies: np.ndarray) -> np.ndarray:
        return fixed_order_freshness(change_rates, frequencies)

    def derivative(self, change_rates: np.ndarray,
                   frequencies: np.ndarray) -> np.ndarray:
        lam = np.asarray(change_rates, dtype=float)
        f = np.asarray(frequencies, dtype=float)
        lam, f = np.broadcast_arrays(lam, f)
        out = np.zeros(lam.shape, dtype=float)
        live = lam > 0.0
        synced = live & (f > 0.0)
        if synced.any():
            r = lam[synced] / f[synced]
            out[synced] = marginal_gain(r) / lam[synced]
        # The f→0⁺ supremum of the marginal is 1/λ.
        unsynced = live & (f == 0.0)
        out[unsynced] = 1.0 / lam[unsynced]
        return out if out.ndim else float(out)

    def frequency_for_marginal(self, change_rates: np.ndarray,
                               marginals: np.ndarray) -> np.ndarray:
        lam = np.asarray(change_rates, dtype=float)
        m = np.asarray(marginals, dtype=float)
        lam, m = np.broadcast_arrays(lam, m)
        # Callers guarantee m < 1/λ mathematically, but the product
        # m·λ can round to exactly 1.0 when m sits a rounding error
        # below the supremum; clamp just inside the open interval (the
        # resulting frequency ≈ λ/40 is in the same degenerate band
        # the solver's threshold handling absorbs).
        targets = np.minimum(m * lam, np.nextafter(1.0, 0.0))
        ratios = invert_marginal_gain(targets)
        return lam / ratios


class PoissonSyncPolicy(FreshnessModel):
    """Memoryless (exponential-interval) polling — ablation baseline.

    With Poisson syncs at rate ``f`` against Poisson updates at rate
    ``λ``, the copy is fresh exactly when the most recent event is a
    sync, so ``F̄ = f/(f + λ)``.
    """

    name = "poisson-sync"

    def freshness(self, change_rates: np.ndarray,
                  frequencies: np.ndarray) -> np.ndarray:
        lam = np.asarray(change_rates, dtype=float)
        f = np.asarray(frequencies, dtype=float)
        lam, f = np.broadcast_arrays(lam, f)
        out = np.ones(lam.shape, dtype=float)
        live = lam > 0.0
        out[live] = f[live] / (f[live] + lam[live])
        return out if out.ndim else float(out)

    def derivative(self, change_rates: np.ndarray,
                   frequencies: np.ndarray) -> np.ndarray:
        lam = np.asarray(change_rates, dtype=float)
        f = np.asarray(frequencies, dtype=float)
        lam, f = np.broadcast_arrays(lam, f)
        out = np.zeros(lam.shape, dtype=float)
        live = lam > 0.0
        out[live] = lam[live] / (f[live] + lam[live]) ** 2
        return out if out.ndim else float(out)

    def frequency_for_marginal(self, change_rates: np.ndarray,
                               marginals: np.ndarray) -> np.ndarray:
        lam = np.asarray(change_rates, dtype=float)
        m = np.asarray(marginals, dtype=float)
        lam, m = np.broadcast_arrays(lam, m)
        # λ/(f+λ)² = m  ⇒  f = √(λ/m) − λ; clamp the rounding band
        # where m ≥ 1/λ would yield an epsilon-negative frequency.
        return np.maximum(np.sqrt(lam / m) - lam, 0.0)
