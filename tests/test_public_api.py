"""The documented public API must exist and compose end to end."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_error_hierarchy(self):
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.ValidationError, ValueError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.ConvergenceError, repro.ReproError)


class TestQuickstartPath:
    """The README quickstart, as a test."""

    def test_plan_and_simulate(self):
        catalog = repro.Catalog(
            access_probabilities=np.array([0.6, 0.3, 0.1]),
            change_rates=np.array([5.0, 1.0, 0.2]),
        )
        plan = repro.PerceivedFreshener().plan(catalog, bandwidth=3.0)
        assert plan.frequencies.shape == (3,)
        assert plan.bandwidth == pytest.approx(3.0, rel=1e-8)
        assert 0.0 < plan.perceived_freshness < 1.0

        sim = repro.Simulation(catalog, plan.frequencies,
                               request_rate=200.0,
                               rng=np.random.default_rng(0))
        result = sim.run(n_periods=20)
        analytic_pf, _ = result.analytic()
        assert result.monitored_time_perceived == pytest.approx(
            analytic_pf, abs=0.05)

    def test_scalable_path(self):
        catalog = repro.build_catalog(repro.IDEAL_SETUP, seed=0)
        heuristic = repro.PartitionedFreshener(
            50, cluster_iterations=3).plan(catalog, 250.0)
        optimal = repro.PerceivedFreshener().plan(catalog, 250.0)
        assert heuristic.perceived_freshness <= \
            optimal.perceived_freshness + 1e-8
        assert heuristic.perceived_freshness > \
            0.9 * optimal.perceived_freshness

    def test_profile_aggregation_path(self):
        day_trader = repro.UserProfile.from_weights(
            np.array([10.0, 1.0, 1.0]), importance=2.0)
        casual = repro.UserProfile.from_weights(np.array([1.0, 1.0, 1.0]))
        master = repro.aggregate_profiles([day_trader, casual])
        catalog = repro.Catalog(
            access_probabilities=master.probabilities,
            change_rates=np.array([4.0, 1.0, 0.5]))
        plan = repro.PerceivedFreshener().plan(catalog, 2.0)
        # The day-trader-dominated element gets the most bandwidth.
        assert plan.frequencies[0] == plan.frequencies.max()
