"""High-level freshening API: plan a refresh schedule for a catalog.

This is the facade most users need:

* :class:`PerceivedFreshener` — the paper's PF technique: optimal
  profile-aware scheduling.
* :class:`GeneralFreshener` — the Cho/Garcia-Molina GF baseline:
  optimal profile-*blind* scheduling (maximizes average freshness).
* :class:`PartitionedFreshener` — the scalable heuristic: sort-based
  partitioning, optional k-means refinement, transformed-problem
  solve, and FFA/FBA expansion.

Each produces a :class:`FresheningPlan` carrying the per-element sync
frequencies together with the analytic scores and a helper to turn
the plan into a concrete timed :class:`~repro.core.scheduler.
SyncSchedule`.

Example:
    >>> from repro import PerceivedFreshener, build_catalog, IDEAL_SETUP
    >>> catalog = build_catalog(IDEAL_SETUP, seed=7)
    >>> plan = PerceivedFreshener().plan(catalog, bandwidth=250.0)
    >>> plan.perceived_freshness > 0.5
    True
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.allocation import AllocationPolicy, expand_partition_frequencies
from repro.core.clustering import refine_partitions
from repro.core.freshness import FixedOrderPolicy, FreshnessModel
from repro.core.metrics import general_freshness, perceived_freshness
from repro.core.nlp_solver import solve_weighted_problem_nlp
from repro.core.partitioning import PartitioningStrategy, partition_catalog
from repro.core.representatives import (
    build_representatives,
    solve_transformed_problem,
)
from repro.core.scheduler import PhasePolicy, SyncSchedule
from repro.core.solver import solve_core_problem, solve_weighted_problem
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

__all__ = ["FresheningPlan", "Freshener", "PerceivedFreshener",
           "GeneralFreshener", "PartitionedFreshener"]


@dataclass(frozen=True)
class FresheningPlan:
    """A complete refresh plan for a catalog.

    Attributes:
        catalog: The workload the plan was computed for.
        frequencies: Sync frequency per element (per period).
        perceived_freshness: Analytic PF the plan achieves under the
            catalog's master profile.
        general_freshness: Analytic average freshness of the plan.
        bandwidth: Bandwidth the plan consumes, ``Σ sᵢ·fᵢ``.
        metadata: Technique-specific details (partition count,
            refinement iterations, solver used, ...).
    """

    catalog: Catalog
    frequencies: np.ndarray
    perceived_freshness: float
    general_freshness: float
    bandwidth: float
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def schedule(self, *, period_length: float = 1.0,
                 phase_policy: PhasePolicy | str = PhasePolicy.STAGGERED,
                 rng: np.random.Generator | None = None) -> SyncSchedule:
        """Materialize the plan as a timed Fixed-Order schedule.

        Args:
            period_length: Clock length of one sync period.
            phase_policy: First-sync offset policy.
            rng: Generator for random phases.

        Returns:
            A :class:`SyncSchedule` ready for the simulator.
        """
        return SyncSchedule.from_frequencies(self.frequencies,
                                             period_length=period_length,
                                             phase_policy=phase_policy,
                                             rng=rng)


class Freshener(ABC):
    """Strategy interface: turn (catalog, bandwidth) into a plan."""

    def __init__(self, *, model: FreshnessModel | None = None) -> None:
        self._model = model if model is not None else FixedOrderPolicy()

    @property
    def model(self) -> FreshnessModel:
        """The freshness model this freshener plans against."""
        return self._model

    @abstractmethod
    def plan(self, catalog: Catalog, bandwidth: float) -> FresheningPlan:
        """Compute a refresh plan within the bandwidth budget.

        ``bandwidth`` is in size units per period; the plan's
        frequencies are in syncs per period.
        """

    def _finish(self, catalog: Catalog, frequencies: np.ndarray,
                metadata: Mapping[str, Any]) -> FresheningPlan:
        return FresheningPlan(
            catalog=catalog,
            frequencies=frequencies,
            perceived_freshness=perceived_freshness(catalog, frequencies,
                                                    model=self._model),
            general_freshness=general_freshness(catalog, frequencies,
                                                model=self._model),
            bandwidth=float(catalog.sizes @ frequencies),
            metadata=dict(metadata),
        )


class PerceivedFreshener(Freshener):
    """Optimal Perceived Freshening (the paper's PF technique).

    Solves the Core Problem exactly for the catalog's master profile.
    """

    def plan(self, catalog: Catalog, bandwidth: float, *,
             bracket: tuple[float, float] | None = None
             ) -> FresheningPlan:
        """Compute the optimal PF plan.

        Args:
            catalog: Workload description.
            bandwidth: Budget in size units per period.
            bracket: Optional warm-start multiplier bracket from a
                neighbouring plan (its ``metadata["multiplier"]``);
                raises :class:`~repro.errors.ValidationError` when it
                does not straddle the budget, so sweep loops can fall
                back to a cold solve.
        """
        solution = solve_core_problem(catalog, bandwidth,
                                      model=self._model, bracket=bracket)
        return self._finish(catalog, solution.frequencies,
                            {"technique": "PF", "solver": "water-filling",
                             "multiplier": solution.multiplier})


class GeneralFreshener(Freshener):
    """Optimal General Freshening (the profile-blind GF baseline).

    Maximizes the *average* freshness — equivalent to Perceived
    Freshening under a uniform profile — then is typically scored
    under the real profile to expose what ignoring user interest
    costs.
    """

    def plan(self, catalog: Catalog, bandwidth: float, *,
             bracket: tuple[float, float] | None = None
             ) -> FresheningPlan:
        """Compute the optimal GF plan.

        Args:
            catalog: Workload description.
            bandwidth: Budget in size units per period.
            bracket: Optional warm-start multiplier bracket (see
                :meth:`PerceivedFreshener.plan`).
        """
        n = catalog.n_elements
        uniform = np.full(n, 1.0 / n)
        solution = solve_weighted_problem(uniform, catalog.change_rates,
                                          catalog.sizes, bandwidth,
                                          model=self._model,
                                          bracket=bracket)
        return self._finish(catalog, solution.frequencies,
                            {"technique": "GF", "solver": "water-filling",
                             "multiplier": solution.multiplier})


class PartitionedFreshener(Freshener):
    """The scalable heuristic: partition, (optionally) refine, solve.

    Args:
        n_partitions: Number of partitions k.
        strategy: Sort criterion (PF-partitioning by default — the
            paper's winner).
        cluster_iterations: k-means refinement iterations (0 skips
            refinement).
        allocation: FFA or FBA intra-partition expansion (FBA by
            default; identical to FFA for uniform sizes).
        solver: ``"exact"`` (water-filling) or ``"nlp"`` (the generic
            projected-gradient path, for faithful timing studies).
        model: Freshness model.
    """

    def __init__(self, n_partitions: int, *,
                 strategy: PartitioningStrategy | str =
                 PartitioningStrategy.PF,
                 cluster_iterations: int = 0,
                 allocation: AllocationPolicy | str =
                 AllocationPolicy.FIXED_BANDWIDTH,
                 solver: str = "exact",
                 model: FreshnessModel | None = None) -> None:
        super().__init__(model=model)
        if n_partitions < 1:
            raise ValidationError(
                f"n_partitions must be >= 1, got {n_partitions}")
        if cluster_iterations < 0:
            raise ValidationError(
                f"cluster_iterations must be >= 0, got {cluster_iterations}")
        if solver not in ("exact", "nlp"):
            raise ValidationError(
                f"solver must be 'exact' or 'nlp', got {solver!r}")
        self._n_partitions = n_partitions
        self._strategy = PartitioningStrategy.coerce(strategy)
        self._cluster_iterations = cluster_iterations
        self._allocation = AllocationPolicy.coerce(allocation)
        self._solver = solver

    def plan(self, catalog: Catalog, bandwidth: float) -> FresheningPlan:
        assignment = partition_catalog(catalog, self._n_partitions,
                                       self._strategy, model=self._model)
        iterations_run = 0
        if self._cluster_iterations > 0:
            steps = refine_partitions(catalog, bandwidth, assignment,
                                      iterations=self._cluster_iterations,
                                      model=self._model,
                                      allocation=self._allocation)
            final = steps[-1]
            assignment = final.assignment
            iterations_run = final.iterations
        problem = build_representatives(catalog, assignment)
        if self._solver == "exact":
            solution = solve_transformed_problem(problem, bandwidth,
                                                 model=self._model)
        else:
            solution = solve_weighted_problem_nlp(
                problem.weights, problem.mean_change_rates,
                np.maximum(problem.costs, 1e-300), bandwidth,
                model=self._model)
        frequencies = expand_partition_frequencies(
            catalog, problem, solution.frequencies, self._allocation)
        return self._finish(catalog, frequencies, {
            "technique": "heuristic",
            "strategy": self._strategy.value,
            "n_partitions": assignment.n_partitions,
            "cluster_iterations": iterations_run,
            "allocation": self._allocation.value,
            "solver": self._solver,
        })
