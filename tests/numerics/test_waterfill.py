"""Tests for repro.numerics.waterfill."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleProblemError
from repro.numerics.waterfill import waterfill


def quadratic_allocator(slopes: np.ndarray, costs: np.ndarray):
    """Allocator for u_i(x) = slopes_i * x - x^2 / 2 with costs.

    KKT: slopes_i - x_i = mu * costs_i  =>  x_i = max(slopes_i -
    mu*costs_i, 0).  The exact solution is analytic, so water-filling
    can be checked against ground truth.
    """

    def allocate_at(mu: float):
        x = np.maximum(slopes - mu * costs, 0.0)
        return x, float(costs @ x)

    return allocate_at


class TestWaterfillQuadratic:
    def test_matches_analytic_two_items(self):
        slopes = np.array([3.0, 1.0])
        costs = np.ones(2)
        allocate = quadratic_allocator(slopes, costs)
        result = waterfill(allocate, budget=2.0, mu_max=3.0)
        # mu solves (3-mu) + (1-mu) = 2 while both active: mu = 1.
        assert result.allocations == pytest.approx([2.0, 0.0], abs=1e-8)

    def test_inactive_item_gets_zero(self):
        slopes = np.array([5.0, 0.1])
        costs = np.ones(2)
        allocate = quadratic_allocator(slopes, costs)
        result = waterfill(allocate, budget=1.0, mu_max=5.0)
        # Budget 1 < 4.9 gap, so only the strong item is active.
        assert result.allocations[1] == 0.0
        assert result.allocations[0] == pytest.approx(1.0, abs=1e-8)

    def test_budget_exactly_consumed(self):
        slopes = np.array([2.0, 3.0, 4.0])
        costs = np.array([1.0, 2.0, 0.5])
        allocate = quadratic_allocator(slopes, costs)
        result = waterfill(allocate, budget=1.7, mu_max=8.0)
        assert float(costs @ result.allocations) == pytest.approx(1.7,
                                                                  rel=1e-9)
        assert result.cost == pytest.approx(1.7)

    def test_rejects_nonpositive_budget(self):
        allocate = quadratic_allocator(np.array([1.0]), np.ones(1))
        with pytest.raises(InfeasibleProblemError):
            waterfill(allocate, budget=0.0, mu_max=1.0)
        with pytest.raises(InfeasibleProblemError):
            waterfill(allocate, budget=-1.0, mu_max=1.0)

    def test_rejects_nonpositive_mu_max(self):
        allocate = quadratic_allocator(np.array([1.0]), np.ones(1))
        with pytest.raises(InfeasibleProblemError):
            waterfill(allocate, budget=1.0, mu_max=0.0)

    @given(st.integers(min_value=1, max_value=20),
           st.floats(min_value=0.1, max_value=50.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_kkt_holds_for_random_problems(self, n, budget, seed):
        rng = np.random.default_rng(seed)
        slopes = rng.uniform(0.5, 10.0, size=n)
        costs = rng.uniform(0.2, 3.0, size=n)
        allocate = quadratic_allocator(slopes, costs)
        result = waterfill(allocate, budget=budget,
                           mu_max=float((slopes / costs).max()))
        x = result.allocations
        assert (x >= 0.0).all()
        saturation_cost = float(costs @ slopes)
        if budget <= saturation_cost:
            assert float(costs @ x) == pytest.approx(budget, rel=1e-6)
        else:
            # Budget exceeds the unconstrained optimum: the saturated
            # allocation (x = slopes) must come back, under budget.
            assert result.multiplier == 0.0
            assert np.allclose(x, slopes, rtol=1e-6)
            assert float(costs @ x) <= budget
        # KKT: marginal per unit cost equal on active items, lower on
        # inactive ones.  (Allocations were snapped onto the budget,
        # so allow a modest tolerance.)
        marginals = (slopes - x) / costs
        active = x > 1e-9
        if active.any():
            mu = marginals[active].mean()
            assert np.allclose(marginals[active], mu, atol=1e-4)
            if (~active).any():
                assert (marginals[~active] <= mu + 1e-4).all()

    @given(st.floats(min_value=0.2, max_value=5.0),
           st.floats(min_value=1.05, max_value=4.0))
    @settings(max_examples=40, deadline=None)
    def test_multiplier_decreases_as_budget_grows(self, budget, factor):
        slopes = np.array([4.0, 2.0, 1.0])
        costs = np.ones(3)
        allocate = quadratic_allocator(slopes, costs)
        small = waterfill(allocate, budget=budget, mu_max=4.0)
        large = waterfill(allocate, budget=budget * factor, mu_max=4.0)
        assert large.multiplier < small.multiplier + 1e-9
