"""Experiment runners and result rendering.

:mod:`repro.analysis.experiments` holds one runner per paper table or
figure (plus the extension experiments); :mod:`repro.analysis.tables`
and :mod:`repro.analysis.plots` render the results as aligned text
tables and ASCII charts for the benchmark harness and CLI.
"""

from repro.analysis.experiments import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    imperfect_knowledge,
    mirror_selection,
    policy_ablation,
    table1,
)
from repro.analysis.calibration import (
    GammaFit,
    calibrate_setup,
    fit_gamma_rates,
    fit_zipf_theta,
)
from repro.analysis.plots import ascii_plot
from repro.analysis.replication import (
    ReplicatedEstimate,
    replicate,
    simulated_pf_interval,
)
from repro.analysis.report import ReportSection, generate_report, write_report
from repro.analysis.sensitivity import (
    adaptive_convergence,
    bandwidth_sensitivity,
    dispersion_sensitivity,
    representative_ablation,
    scale_sensitivity,
)
from repro.analysis.series import Series, SweepResult
from repro.analysis.svg import sweep_to_svg, write_svg
from repro.analysis.tables import format_sweep, format_table

__all__ = [
    "adaptive_convergence",
    "calibrate_setup",
    "fit_gamma_rates",
    "fit_zipf_theta",
    "GammaFit",
    "ascii_plot",
    "bandwidth_sensitivity",
    "generate_report",
    "ReplicatedEstimate",
    "replicate",
    "simulated_pf_interval",
    "sweep_to_svg",
    "write_svg",
    "ReportSection",
    "write_report",
    "dispersion_sensitivity",
    "representative_ablation",
    "scale_sensitivity",
    "figure1",
    "figure2",
    "figure3",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "format_sweep",
    "format_table",
    "imperfect_knowledge",
    "mirror_selection",
    "policy_ablation",
    "Series",
    "SweepResult",
    "table1",
]
