"""Streaming-sink discipline: never raise, never block, degrade.

These tests drive the :class:`Sink` machinery with an injected fake
clock and seeded jitter RNG (no sleeping, no wall-clock coupling) and
the transports against real local endpoints — an in-process UDP
listener for statsd, a connection-refused port for OTLP.
"""

from __future__ import annotations

import json
import random
import socket
from typing import Any, List

import pytest

from repro.obs import registry as obs
from repro.obs.sink import (
    OtlpHttpSink,
    Sink,
    StatsdSink,
    parse_sink_url,
)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class RecordingSink(Sink):
    """Sink whose transport is a list (or a scripted failure)."""

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.batches: List[List[str]] = []
        self.fail_sends = 0

    def _render_event(self, record: Any) -> str:
        return f"event:{record.get('kind')}"

    def _render_counter(self, name: str, delta: float) -> str:
        return f"counter:{name}:{delta:g}"

    def _render_gauge(self, name: str, value: float) -> str:
        return f"gauge:{name}:{value:g}"

    def _send(self, batch: List[str]) -> None:
        if self.fail_sends > 0:
            self.fail_sends -= 1
            raise OSError("scripted transport failure")
        self.batches.append(list(batch))


# ---------------------------------------------------------------------------
# Base machinery: buffering, overflow, flush scheduling, retry


def test_overflow_drops_and_counts() -> None:
    with obs.telemetry() as registry:
        clock = FakeClock()
        sink = RecordingSink(buffer_limit=3, flush_interval_s=100.0,
                             clock=clock)
        for index in range(5):
            sink.offer_event({"kind": f"e{index}"})
        assert len(sink._buffer) == 3
        assert sink.dropped == 2
    assert registry.counters["obs.sink.dropped"] == 2


def test_flush_waits_for_interval_then_ships() -> None:
    clock = FakeClock()
    sink = RecordingSink(flush_interval_s=1.0, clock=clock)
    sink.offer_event({"kind": "early"})
    assert sink.batches == []  # interval not elapsed
    clock.now = 1.5
    sink.offer_event({"kind": "late"})
    assert sink.batches == [["event:early", "event:late"]]
    assert sink.sent == 2
    assert sink._buffer == []


def test_transport_failure_keeps_batch_and_arms_backoff() -> None:
    with obs.telemetry() as registry:
        clock = FakeClock()
        sink = RecordingSink(flush_interval_s=0.0, clock=clock,
                             backoff_base_s=0.25, backoff_cap_s=30.0,
                             jitter_rng=random.Random(7))
        sink.fail_sends = 1
        sink.offer_event({"kind": "a"})  # flush due -> fails
        assert sink.send_errors == 1
        assert sink._buffer == ["event:a"]  # batch retained
        assert sink._retry_at > clock.now
        deadline = sink._retry_at

        # Flushes before the deadline are cheap no-ops — no send call.
        assert sink.flush() == 0
        assert sink.batches == []

        # Past the deadline the retained batch ships.
        clock.now = deadline + 0.01
        assert sink.flush() == 1
        assert sink.batches == [["event:a"]]
        assert sink._retry_at == 0.0
    assert registry.counters["obs.sink.errors"] == 1
    assert registry.counters["obs.sink.sent"] == 1


def test_backoff_delays_are_decorrelated_jitter() -> None:
    clock = FakeClock()
    sink = RecordingSink(flush_interval_s=0.0, clock=clock,
                         backoff_base_s=0.5, backoff_cap_s=4.0,
                         jitter_rng=random.Random(0))
    sink.fail_sends = 11  # the initial offer-driven flush + 10 retries
    sink.offer_event({"kind": "x"})
    delays = []
    for _ in range(10):
        clock.now = sink._retry_at + 0.01
        sink.flush()
        delays.append(sink._delay)
    assert all(0.5 <= delay <= 4.0 for delay in delays)
    assert len(set(delays)) > 1  # jittered, not a fixed ladder
    # Deterministic replay from the seeded RNG.
    expected = []
    rng = random.Random(0)
    delay = 0.0
    for _ in range(11):  # first failure + 10 retries
        delay = min(rng.uniform(0.5, max(3.0 * delay, 0.5)), 4.0)
        expected.append(delay)
    assert delays == pytest.approx(expected[1:])


def test_close_flushes_even_while_backing_off() -> None:
    clock = FakeClock()
    sink = RecordingSink(flush_interval_s=0.0, clock=clock)
    sink.fail_sends = 1
    sink.offer_event({"kind": "a"})
    assert sink._retry_at > 0.0
    sink.close()  # ignore_deadline final attempt
    assert sink.batches == [["event:a"]]
    assert sink.closed
    sink.offer_event({"kind": "late"})  # post-close offers are no-ops
    assert sink._buffer == []


def test_emit_registry_ships_counter_deltas() -> None:
    clock = FakeClock()
    sink = RecordingSink(flush_interval_s=0.0, clock=clock)
    registry = obs.MetricsRegistry()
    registry.counter_add("sim.syncs", 5.0)
    registry.gauge_set("sim.freshness", 0.75)
    sink.emit_registry(registry)
    registry.counter_add("sim.syncs", 2.0)
    sink.emit_registry(registry)
    counters = [item for batch in sink.batches for item in batch
                if item.startswith("counter:")]
    assert counters == ["counter:sim.syncs:5", "counter:sim.syncs:2"]


# ---------------------------------------------------------------------------
# statsd transport


def test_statsd_lines_reach_a_live_udp_listener() -> None:
    listener = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    listener.bind(("127.0.0.1", 0))
    listener.settimeout(2.0)
    port = listener.getsockname()[1]
    try:
        sink = StatsdSink("127.0.0.1", port, flush_interval_s=0.0)
        sink.offer_event({"kind": "sim.period"})
        registry = obs.MetricsRegistry()
        registry.counter_add("sim.syncs", 3.0)
        registry.gauge_set("monitor.mean_time_freshness", 0.9)
        sink.emit_registry(registry)
        sink.close()
        lines: List[str] = []
        while len(lines) < 3:
            data, _ = listener.recvfrom(65536)
            lines.extend(data.decode("utf-8").splitlines())
        assert "repro.events.sim_period:1|c" in lines
        assert "repro.sim.syncs:3|c" in lines
        assert "repro.monitor.mean_time_freshness:0.9|g" in lines
    finally:
        listener.close()


def test_statsd_chunks_large_batches_under_datagram_limit() -> None:
    sent: List[bytes] = []
    sink = StatsdSink("127.0.0.1", 8125, flush_interval_s=0.0,
                      buffer_limit=10_000)

    class FakeSocket:
        def sendto(self, data: bytes, address: Any) -> None:
            sent.append(data)

        def close(self) -> None:
            pass

        def setblocking(self, flag: bool) -> None:
            pass

    sink._socket = FakeSocket()  # type: ignore[assignment]
    registry = obs.MetricsRegistry()
    for index in range(200):
        registry.counter_add(f"long.metric.name.number.{index:04d}")
    sink.emit_registry(registry)
    sink.flush(ignore_deadline=True)
    assert len(sent) > 1
    assert all(len(datagram) <= 1400 for datagram in sent)
    total_lines = sum(datagram.count(b"\n") + 1 for datagram in sent)
    assert total_lines == 200


# ---------------------------------------------------------------------------
# OTLP transport


def test_otlp_dead_endpoint_never_raises() -> None:
    """Acceptance criterion: dead collector, zero exceptions."""
    sink = OtlpHttpSink("http://127.0.0.1:1/v1/metrics",
                        timeout_s=0.2, flush_interval_s=0.0)
    for index in range(5):
        sink.offer_event({"kind": "sim.period"})
    sink.close()
    assert sink.send_errors >= 1
    assert sink.sent == 0


def test_otlp_payload_accumulates_counters_cumulatively() -> None:
    sink = OtlpHttpSink("http://localhost:4318/v1/metrics")
    batch = [("counter", "repro.sim.syncs", 3.0),
             ("counter", "repro.sim.syncs", 2.0),
             ("gauge", "repro.freshness", 0.5)]
    first = json.loads(sink._payload(batch))
    metrics = first["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
    by_name = {metric["name"]: metric for metric in metrics}
    assert by_name["repro.sim.syncs"]["sum"]["dataPoints"][0][
        "asDouble"] == 5.0
    assert by_name["repro.sim.syncs"]["sum"]["isMonotonic"] is True
    assert by_name["repro.freshness"]["gauge"]["dataPoints"][0][
        "asDouble"] == 0.5
    # A second flush continues the cumulative monotonic sum.
    second = json.loads(sink._payload(
        [("counter", "repro.sim.syncs", 4.0)]))
    metric = second["resourceMetrics"][0]["scopeMetrics"][0][
        "metrics"][0]
    assert metric["sum"]["dataPoints"][0]["asDouble"] == 9.0


# ---------------------------------------------------------------------------
# URL parsing and registry integration


def test_parse_sink_url_dispatch() -> None:
    statsd = parse_sink_url("statsd://127.0.0.1:8125")
    assert isinstance(statsd, StatsdSink)
    assert statsd._address == ("127.0.0.1", 8125)
    otlp = parse_sink_url("otlp://collector")
    assert isinstance(otlp, OtlpHttpSink)
    assert otlp._endpoint == "http://collector:4318/v1/metrics"
    otlps = parse_sink_url("otlps://collector:9999/custom")
    assert otlps._endpoint == "https://collector:9999/custom"


@pytest.mark.parametrize("url", [
    "statsd://127.0.0.1",        # missing port
    "statsd://:8125",            # missing host
    "otlp://",                   # missing host
    "http://127.0.0.1:8125",     # unsupported scheme
    "garbage",
])
def test_parse_sink_url_rejects_malformed(url: str) -> None:
    with pytest.raises(ValueError):
        parse_sink_url(url)


def test_registry_feeds_attached_sink_per_event() -> None:
    clock = FakeClock()
    sink = RecordingSink(flush_interval_s=100.0, clock=clock)
    with obs.telemetry() as registry:
        registry.sinks.append(sink)
        obs.event("sim.period", period=1)
        obs.event("sim.period", period=2)
    assert sink._buffer == ["event:sim.period", "event:sim.period"]


def test_registry_pickling_drops_sinks() -> None:
    import pickle

    registry = obs.MetricsRegistry()
    registry.sinks.append(StatsdSink("127.0.0.1", 8125))
    registry.counter_add("c", 2.0)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.sinks == []
    assert clone.counters["c"] == 2.0
