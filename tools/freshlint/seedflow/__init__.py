"""seedflow — project-wide RNG-provenance and determinism analysis.

The per-file rules (FL001-FL010) see one module at a time; every
guarantee the vectorized kernels and the CRN-preserving executor make
is a *cross-module* property: a ``Generator`` must derive from a
``SeedSequence`` spawn, no RNG may cross a process boundary, and the
paired engine implementations must consume identical draw streams.
seedflow parses the whole file set once, builds a binding/call index,
tracks RNG provenance through assignments, parameters, returns and
attribute stores, and enforces four project-wide rules:

* **FL011** - RNG created from a seed that does not flow from a
  ``SeedSequence``/``spawn``/``seed_rng`` source (non-CRN creation);
* **FL012** - an RNG object reaching a ``parallel_map`` /
  process-pool submission or a pickled ``functools.partial`` closure
  (shared-stream hazard across workers);
* **FL013** - draw-order divergence hazards between annotated paired
  engine paths (``# seedflow: pair=...``): conditional draws in the
  kernel member, and draw methods the reference side never uses;
* **FL014** - dtype discipline in kernel modules: untyped
  ``np.array`` literals, object-dtype upcasts, and bit-identity
  comparisons that skip the uint64 view.

Run it through the CLI (``freshlint --seedflow src/repro``) or
programmatically::

    from freshlint.seedflow import run_seedflow
    violations = run_seedflow(["src/repro"])

Findings respect the same ``# freshlint: disable=`` pragmas as the
per-file rules.
"""

from __future__ import annotations

from freshlint.seedflow.project import (
    FunctionInfo,
    PairedFunctions,
    Project,
    build_project,
)
from freshlint.seedflow.provenance import (
    DRAW_METHODS,
    FunctionSummary,
    Provenance,
    analyze_function,
)
from freshlint.seedflow.rules import (
    SEEDFLOW_CODES,
    SEEDFLOW_RULES,
    SeedflowRuleInfo,
    run_seedflow,
    seedflow_violations,
)

__all__ = [
    "DRAW_METHODS",
    "FunctionInfo",
    "FunctionSummary",
    "PairedFunctions",
    "Project",
    "Provenance",
    "SEEDFLOW_CODES",
    "SEEDFLOW_RULES",
    "SeedflowRuleInfo",
    "analyze_function",
    "build_project",
    "run_seedflow",
    "seedflow_violations",
]
